"""A tour of the three FlowKV store APIs (Listing 1 of the paper).

Uses the stores directly — no stream engine — to show how each pattern's
API and data layout work:

* AAR: ``append(k, v, w)`` + ``get_window(w)`` with per-window log files
  and gradual loading,
* AUR: ``append(k, v, w, t)`` + ``get(k, w)`` with the ETT Stat table and
  predictive batch read,
* RMW: ``get(k, w)`` / ``put(k, w, a)`` hash-buffered aggregates,
* and the batch surface every store shares: ``multi_get`` /
  ``multi_append`` amortize per-call overhead, ``write_batch()`` stages
  ops and commits them atomically in one store call.

Run:  python examples/store_api_tour.py
"""

from __future__ import annotations

import warnings

from repro.core.aar import AarStore
from repro.core.aur import AurStore
from repro.core.ett import SessionGapPredictor
from repro.core.rmw import RmwStore
from repro.kvstores.api import CAP_BATCH, PerTupleShim
from repro.kvstores.lsm import LsmConfig, LsmStore
from repro.model import Window
from repro.simenv import SimEnv
from repro.storage import SimFileSystem


def tour_aar() -> None:
    print("=== AAR store: append & aligned read ===")
    env = SimEnv()
    fs = SimFileSystem(env)
    store = AarStore(env, fs, "aar", write_buffer_bytes=1 << 10)
    window = Window(0.0, 60.0)
    for i in range(100):
        store.append(f"user{i % 5}".encode(), f"event-{i}".encode(), window)
    print(f"  on-disk files (one per window): {fs.list_files('aar/')}")
    partitions = 0
    tuples = 0
    for key, values in store.get_window(window):  # gradual loading
        partitions += 1
        tuples += len(values)
    print(f"  GetWindow returned {tuples} tuples in {partitions} partitions")
    print(f"  files after read (delete-after-read): {fs.list_files('aar/')}")
    print(f"  simulated cost: {env.now * 1e6:.1f} us\n")


def tour_aur() -> None:
    print("=== AUR store: append & unaligned read ===")
    env = SimEnv()
    fs = SimFileSystem(env)
    store = AurStore(
        env, fs, SessionGapPredictor(gap=10.0), "aur",
        write_buffer_bytes=1 << 10, read_batch_ratio=0.5,
    )
    # Ten users, each with one session starting at a different time.
    for user in range(10):
        window = Window(user * 5.0, user * 5.0 + 10.0)
        for j in range(20):
            ts = user * 5.0 + j * 0.1
            store.append(f"user{user}".encode(), f"e{j}".encode(), window, ts)
    store.flush()
    print(f"  on-disk: {fs.list_files('aur/')}")
    first = store.get(b"user0", Window(0.0, 10.0))
    print(f"  Get(user0) -> {len(first)} values "
          f"(miss: triggered an index scan + predictive batch read)")
    second = store.get(b"user1", Window(5.0, 15.0))
    print(f"  Get(user1) -> {len(second)} values "
          f"(prefetch {'HIT' if store.prefetch_stats.hits else 'miss'})")
    stats = store.prefetch_stats
    print(f"  prefetch: {stats.loads} loaded, {stats.hits} hit, "
          f"{stats.index_scans} index scans\n")


def tour_rmw() -> None:
    print("=== RMW store: read-modify-write ===")
    env = SimEnv()
    fs = SimFileSystem(env)
    store = RmwStore(env, fs, "rmw", write_buffer_bytes=1 << 10)
    window = Window(0.0, 3600.0)
    for i in range(1000):
        key = f"counter{i % 50}".encode()
        current = store.get(key, window)
        count = int.from_bytes(current, "little") if current else 0
        store.put(key, window, (count + 1).to_bytes(8, "little"))
    total = 0
    for i in range(50):
        value = store.remove(f"counter{i}".encode(), window)
        total += int.from_bytes(value, "little")
    print(f"  1000 increments across 50 counters -> sum {total}")
    print(f"  spilled log files: {fs.list_files('rmw/')}")
    print(f"  simulated cost: {env.now * 1e6:.1f} us "
          f"(no synchronization charges: single-threaded by design)")


def tour_batch() -> None:
    print("\n=== Batch API: multi_get / multi_append / write_batch ===")
    env = SimEnv()
    fs = SimFileSystem(env)
    store = LsmStore(env, fs, "lsm", LsmConfig(write_buffer_bytes=4 << 10))
    print(f"  advertises CAP_BATCH: {CAP_BATCH in store.capabilities}")

    # multi_append: one call, per-entry simulated charges unchanged —
    # batching amortizes real Python overhead, never simulated cost.
    store.multi_append([(f"user{i % 3}".encode(), f"e{i}".encode())
                        for i in range(30)])
    values = store.multi_get([b"user0", b"user1", b"nobody"])
    print(f"  multi_get -> {[len(v) if v else None for v in values]} bytes")

    # write_batch: accumulate-then-commit.  Nothing reaches the store
    # until commit(); an exception inside the block discards everything.
    with store.write_batch() as batch:
        batch.put(b"config", b"v2")
        batch.append(b"user0", b"late-event")
        batch.delete(b"user2")
    print(f"  after commit: config={store.get(b'config')}, "
          f"user2={store.get(b'user2')}")

    # Stragglers that still mutate per-tuple can be wrapped in the shim:
    # same behavior, but each direct call surfaces a DeprecationWarning.
    shimmed = PerTupleShim(store)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shimmed.put(b"legacy", b"call-site")
    print(f"  PerTupleShim warned: {caught[0].category.__name__}: "
          f"{str(caught[0].message)[:60]}...")


if __name__ == "__main__":
    tour_aar()
    tour_aur()
    tour_rmw()
    tour_batch()
