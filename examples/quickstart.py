"""Quickstart: a windowed word-count on FlowKV in ~30 lines.

Builds a small event-time streaming job, runs it on the FlowKV state
backend, and prints the results plus the simulated cost breakdown.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.backends import flowkv_backend
from repro.engine import StreamEnvironment, TumblingWindowAssigner
from repro.engine.functions import CountAggregate

WORDS = ["flink", "flowkv", "stream", "window", "state"]


def word_stream(n: int = 5_000, seed: int = 7):
    """(word, event-timestamp) pairs at ~10 events/second of event time."""
    rng = random.Random(seed)
    timestamp = 0.0
    for _ in range(n):
        timestamp += rng.expovariate(10.0)
        yield rng.choice(WORDS), timestamp


def main() -> None:
    # max_batch_records pushes columnar 64-record batches through the
    # hot path: identical results and simulated costs, less real time.
    env = StreamEnvironment(
        parallelism=2, backend_factory=flowkv_backend(), max_batch_records=64
    )
    (
        env.from_source(word_stream())
        .key_by(lambda word: word.encode())
        .window(TumblingWindowAssigner(60.0))  # 1-minute fixed windows
        .aggregate(CountAggregate(), with_window=True)
        .sink("counts")
    )
    result = env.execute()

    print("first five window counts:")
    for key, window, count in result.sink_outputs["counts"][:5]:
        print(f"  {key.decode():8s} [{window.start:6.0f}, {window.end:6.0f})  {count}")

    print(f"\nprocessed {result.input_records} records "
          f"in {result.job_seconds * 1e3:.2f} simulated ms "
          f"({result.throughput:,.0f} records/sim-second)")
    print("CPU by category (seconds):")
    for category, seconds in sorted(result.metrics.cpu_seconds.items()):
        if seconds > 0:
            print(f"  {category:12s} {seconds:.6f}")


if __name__ == "__main__":
    main()
