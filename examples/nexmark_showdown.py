"""Backend showdown: one NEXMark query on all four state backends.

Reproduces a single cell family of the paper's Figure 8: pick a query,
run it on the in-memory store, FlowKV, the RocksDB-style LSM store and
the Faster-style hash store, and compare simulated throughput and store
CPU time.

Run:  python examples/nexmark_showdown.py [query] [window_seconds]
      e.g. python examples/nexmark_showdown.py q11-median 100
"""

from __future__ import annotations

import sys

from repro.bench.harness import run_query
from repro.bench.profiles import QUICK_PROFILE, BACKEND_NAMES
from repro.bench.report import format_table


def main() -> None:
    query = sys.argv[1] if len(sys.argv) > 1 else "q11"
    window = float(sys.argv[2]) if len(sys.argv) > 2 else QUICK_PROFILE.window_sizes[-1]
    profile = QUICK_PROFILE

    print(f"NEXMark {query}, window {window:g}s, profile '{profile.name}'")
    print(f"({profile.generator().expected_events:,} events, "
          f"{profile.parallelism} parallel operator instances)\n")

    reference = run_query(profile, query, "flowkv", window)
    timeout = max(profile.timeout_floor,
                  profile.timeout_multiplier * reference.job_seconds)

    rows = []
    for backend in BACKEND_NAMES:
        if backend == "flowkv":
            record = reference
        else:
            record = run_query(profile, query, backend, window, sim_timeout=timeout)
        if not record.ok:
            rows.append([backend, f"FAILED ({record.failure})", "-", "-"])
            continue
        rows.append([
            backend,
            f"{record.throughput:,.0f}/s",
            f"{record.job_seconds * 1e3:.1f} ms",
            f"{record.metrics.store_cpu_seconds * 1e3:.2f} ms",
        ])
    print(format_table(["backend", "throughput", "job (sim)", "store CPU"], rows))

    if reference.ok:
        print(f"\nFlowKV stats: {int(reference.stat_sum('compaction_count'))} compactions", end="")
        loads = reference.stat_sum("prefetch_loads")
        if loads:
            ratio = reference.stat_sum("prefetch_hits") / loads
            print(f", prefetch hit ratio {ratio:.2f}", end="")
        print()


if __name__ == "__main__":
    main()
