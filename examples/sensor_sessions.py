"""Session analytics over IoT sensor activity bursts (AUR pattern).

The workload the paper's session-window machinery targets: thousands of
devices emit readings in bursts; a burst ends after a quiet gap, at which
point we want per-burst statistics (here: median reading).  Because each
device's sessions close at different times, this exercises FlowKV's
Append-and-Unaligned-Read store — the estimated-trigger-time table,
predictive batch read and integrated compaction.

Run:  python examples/sensor_sessions.py
"""

from __future__ import annotations

import random

from repro.backends import flowkv_backend
from repro.core import FlowKVConfig
from repro.engine import StreamEnvironment, SessionWindowAssigner
from repro.engine.functions import MedianProcessFunction

N_DEVICES = 150
SESSION_GAP = 30.0  # seconds of quiet that closes a burst
MEAN_BURST_READINGS = 12


def sensor_stream(duration: float = 3_600.0, seed: int = 13):
    """(reading, timestamp) pairs: per-device bursts with quiet gaps."""
    rng = random.Random(seed)
    next_burst = [rng.uniform(0, 120.0) for _ in range(N_DEVICES)]
    events = []
    for device in range(N_DEVICES):
        timestamp = next_burst[device]
        while timestamp < duration:
            for _ in range(max(1, int(rng.expovariate(1.0 / MEAN_BURST_READINGS)))):
                reading = {"device": device, "celsius": rng.gauss(40.0, 8.0)}
                events.append((reading, timestamp))
                timestamp += rng.uniform(0.5, 4.0)
            timestamp += SESSION_GAP + rng.expovariate(1.0 / 120.0)
    events.sort(key=lambda pair: pair[1])
    return events


def main() -> None:
    config = FlowKVConfig(
        write_buffer_bytes=32 << 10,  # small buffer: bursts spill to disk
        read_batch_ratio=0.2,
        max_space_amplification=1.5,
    )
    env = StreamEnvironment(parallelism=2, backend_factory=flowkv_backend(config))
    (
        env.from_source(sensor_stream())
        .key_by(lambda reading: reading["device"].to_bytes(4, "little"))
        .window(SessionWindowAssigner(SESSION_GAP))
        .process(MedianProcessFunction(extract=lambda r: r["celsius"]))
        .sink("burst_medians")
    )
    result = env.execute()

    medians = result.sink_outputs["burst_medians"]
    print(f"{result.input_records:,} readings -> {len(medians):,} closed bursts")
    print(f"median-of-medians: {sorted(medians)[len(medians) // 2]:.1f} C")
    print(f"simulated job time: {result.job_seconds * 1e3:.1f} ms "
          f"({result.throughput:,.0f} readings/sim-second)")

    stats = result.operator_stats["process"]
    loads = stats.get("prefetch_loads", 0)
    if loads:
        print(f"AUR store: {loads} windows prefetched, "
              f"hit ratio {stats['prefetch_hits'] / loads:.2f}, "
              f"{stats.get('compaction_count', 0)} integrated compactions")


if __name__ == "__main__":
    main()
