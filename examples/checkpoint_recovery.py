"""Checkpointing and crash recovery (§8, Fault Tolerance).

SPEs snapshot their state stores periodically and, after a failure,
restore the latest snapshot and replay the source from that point.  This
example drives a FlowKV RMW store directly through that cycle:

1. process the first half of a stream,
2. take a checkpoint (flush-first, then copy on-disk files — the
   asynchronous-upload strategy the paper prescribes),
3. "crash" (throw the store away),
4. restore into a fresh store on a fresh simulated disk and replay the
   second half,
5. verify the final counts equal an uninterrupted run.

Run:  python examples/checkpoint_recovery.py
"""

from __future__ import annotations

import random

from repro.core import FlowKVComposite, FlowKVConfig, StorePattern
from repro.model import GLOBAL_WINDOW
from repro.simenv import SimEnv
from repro.storage import SimFileSystem

N_EVENTS = 10_000
N_USERS = 64


def stream(seed: int = 21):
    rng = random.Random(seed)
    return [f"user{rng.randrange(N_USERS)}".encode() for _ in range(N_EVENTS)]


def apply(store: FlowKVComposite, keys) -> None:
    for key in keys:
        count = store.rmw_get(key, GLOBAL_WINDOW) or 0
        store.rmw_put(key, GLOBAL_WINDOW, count + 1)


def counts(store: FlowKVComposite) -> dict[bytes, int]:
    return {
        f"user{i}".encode(): store.rmw_get(f"user{i}".encode(), GLOBAL_WINDOW) or 0
        for i in range(N_USERS)
    }


def main() -> None:
    config = FlowKVConfig(write_buffer_bytes=4 << 10, num_instances=2)
    events = stream()
    half = len(events) // 2

    # --- run with a mid-stream checkpoint + crash --------------------
    env = SimEnv()
    store = FlowKVComposite(env, SimFileSystem(env), StorePattern.RMW, config, name="s")
    apply(store, events[:half])
    before = env.now
    checkpoint = store.snapshot()
    print(f"checkpoint after {half:,} events: {checkpoint.total_bytes:,} bytes, "
          f"took {(env.now - before) * 1e3:.2f} simulated ms")

    store.close()  # crash: all in-memory and local-disk state gone

    env2 = SimEnv()
    recovered = FlowKVComposite(
        env2, SimFileSystem(env2), StorePattern.RMW, config, name="s"
    )
    before = env2.now
    recovered.restore(checkpoint)
    print(f"recovery took {(env2.now - before) * 1e3:.2f} simulated ms")
    apply(recovered, events[half:])  # replay the rest of the source

    # --- reference: uninterrupted run ---------------------------------
    env3 = SimEnv()
    reference = FlowKVComposite(
        env3, SimFileSystem(env3), StorePattern.RMW, config, name="s"
    )
    apply(reference, events)

    assert counts(recovered) == counts(reference)
    total = sum(counts(recovered).values())
    print(f"recovered counts match the uninterrupted run "
          f"({total:,} events across {N_USERS} users)")


if __name__ == "__main__":
    main()
