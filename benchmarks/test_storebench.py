"""Direct store-drive benchmarks (Gadget-style, no engine in the loop).

Checks the §2.2 per-pattern competitiveness claims at the store level:

* append patterns: the LSM store beats the hash store (lazy merging vs
  read-copy-update), and FlowKV beats both;
* RMW: the hash store beats the LSM store (O(1) vs sorted search), and
  FlowKV beats both.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.report import format_table
from repro.bench.storebench import StoreWorkload, run_store_comparison
from repro.core.patterns import StorePattern


def _factories(profile):
    return {
        name: profile.backend_factory(name)
        for name in ("flowkv", "rocksdb", "faster")
    }


def _render(title, results):
    rows = [
        [label, f"{r.ops_per_second:,.0f}", f"{r.sim_seconds * 1e3:.2f} ms",
         f"{r.metrics.store_cpu_seconds * 1e3:.2f} ms"]
        for label, r in results.items()
    ]
    return title + "\n" + format_table(
        ["backend", "ops/sim-s", "sim time", "store CPU"], rows
    )


def test_storebench_aar(benchmark, profile, save_report):
    workload = StoreWorkload(StorePattern.AAR, n_rounds=120)
    results = run_once(benchmark, lambda: run_store_comparison(_factories(profile), workload))
    save_report("storebench_aar", _render("Direct drive: AAR pattern", results))
    assert results["flowkv"].sim_seconds < results["rocksdb"].sim_seconds
    assert results["rocksdb"].sim_seconds < results["faster"].sim_seconds


def test_storebench_aur(benchmark, profile, save_report):
    workload = StoreWorkload(StorePattern.AUR, n_rounds=400, read_lag=60)
    results = run_once(benchmark, lambda: run_store_comparison(_factories(profile), workload))
    save_report("storebench_aur", _render("Direct drive: AUR pattern", results))
    assert results["flowkv"].sim_seconds < results["rocksdb"].sim_seconds
    assert results["flowkv"].sim_seconds < results["faster"].sim_seconds


def test_storebench_rmw(benchmark, profile, save_report):
    workload = StoreWorkload(StorePattern.RMW, n_rounds=120)
    results = run_once(benchmark, lambda: run_store_comparison(_factories(profile), workload))
    save_report("storebench_rmw", _render("Direct drive: RMW pattern", results))
    assert results["faster"].sim_seconds < results["rocksdb"].sim_seconds
    assert results["flowkv"].sim_seconds < results["faster"].sim_seconds
