"""Figure 11: predictive-batch-read ratio sweep (throughput + hit ratio).

Paper shape asserted:
* disabling predictive batch read (ratio 0) collapses throughput (paper:
  to 38-40% of the best; we assert < 60%),
* the paper's scale-free anchor holds: hit ratio ~0.93 at ratio 0.02,
* hit ratio declines as the ratio grows past the useful point (fetching
  windows with low read probability).

Scale note (documented in fig11 and EXPERIMENTS.md): the throughput
plateau location depends on the absolute batch size N = ratio x windows;
with ~4 orders of magnitude fewer live windows than the paper, the
plateau shifts toward higher ratios.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig11


def test_fig11_batch_ratio(benchmark, profile, save_report):
    records = run_once(
        benchmark, lambda: fig11.run(profile, queries=("q11-median",))
    )
    save_report("fig11_batch_ratio", fig11.render(records))
    by_ratio = {
        r.operator_stats["_sweep"]["ratio"]: r for r in records
    }
    best = max(r.throughput for r in records)

    # Prefetch disabled -> collapse.
    assert by_ratio[0.0].throughput < 0.6 * best

    # Hit-ratio anchor at the paper's operating point.
    anchor = by_ratio[0.02]
    loads = anchor.stat_sum("prefetch_loads")
    hits = anchor.stat_sum("prefetch_hits")
    assert loads > 0
    hit_ratio = hits / loads
    assert 0.80 <= hit_ratio <= 1.0

    # Hit ratio declines at aggressive ratios.
    aggressive = by_ratio[max(by_ratio)]
    aggressive_hit = aggressive.stat_sum("prefetch_hits") / max(
        1, aggressive.stat_sum("prefetch_loads")
    )
    assert aggressive_hit < hit_ratio

    # Throughput is monotone-ish from 0 to the paper's point.
    assert by_ratio[0.02].throughput > by_ratio[0.0].throughput
