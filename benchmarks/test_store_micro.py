"""Wall-clock micro-benchmarks of the store implementations themselves.

These measure the *Python implementation* speed (pytest-benchmark wall
time), not simulated time — useful for tracking regressions in the
reproduction's own code.
"""

from __future__ import annotations

import pytest

from repro.core.aar import AarStore
from repro.core.ett import SessionGapPredictor
from repro.core.aur import AurStore
from repro.core.rmw import RmwStore
from repro.kvstores.hashkv import FasterConfig, FasterStore
from repro.kvstores.lsm import LsmConfig, LsmStore
from repro.model import Window
from repro.simenv import SimEnv
from repro.storage import SimFileSystem

N_OPS = 2000
W = Window(0.0, 1000.0)


@pytest.fixture()
def env():
    return SimEnv()


@pytest.fixture()
def fs(env):
    return SimFileSystem(env)


def test_micro_lsm_put(benchmark, env, fs):
    store = LsmStore(env, fs, "lsm", LsmConfig(write_buffer_bytes=64 << 10))

    def run():
        for i in range(N_OPS):
            store.put(f"key{i % 500:04d}".encode(), b"v" * 40)

    benchmark(run)


def test_micro_lsm_get(benchmark, env, fs):
    store = LsmStore(env, fs, "lsm", LsmConfig(write_buffer_bytes=64 << 10))
    for i in range(500):
        store.put(f"key{i:04d}".encode(), b"v" * 40)
    store.flush()

    def run():
        for i in range(N_OPS):
            store.get(f"key{i % 500:04d}".encode())

    benchmark(run)


def test_micro_faster_put_get(benchmark, env, fs):
    store = FasterStore(env, fs, "f", FasterConfig(memory_log_bytes=1 << 20))

    def run():
        for i in range(N_OPS):
            key = f"key{i % 500:04d}".encode()
            store.put(key, b"v" * 8)
            store.get(key)

    benchmark(run)


def test_micro_flowkv_rmw(benchmark, env, fs):
    store = RmwStore(env, fs, "rmw", write_buffer_bytes=64 << 10)

    def run():
        for i in range(N_OPS):
            key = f"key{i % 500:04d}".encode()
            current = store.get(key, W) or b"\x00" * 8
            store.put(key, W, current)

    benchmark(run)


def test_micro_flowkv_aar_append(benchmark, env, fs):
    store = AarStore(env, fs, "aar", write_buffer_bytes=64 << 10)

    def run():
        for i in range(N_OPS):
            store.append(f"key{i % 500:04d}".encode(), b"v" * 40, W)

    benchmark(run)


def test_micro_flowkv_aur_append(benchmark, env, fs):
    store = AurStore(env, fs, SessionGapPredictor(10.0), "aur",
                     write_buffer_bytes=64 << 10)

    def run():
        for i in range(N_OPS):
            store.append(f"key{i % 500:04d}".encode(), b"v" * 40, W, float(i))

    benchmark(run)
