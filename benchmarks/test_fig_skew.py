"""Skew figure: hot-key-group splitting vs naive placement on Q7.

Shape asserted: every backend cell is correct (balanced output identical
to the naive run), exactly one skew-split fired, it names the hot
groups and moved real state at unchanged parallelism, and the split
strictly improves both P95 latency and the max per-node keyed
utilization.  The scenario is pinned inside the figure, so the
assertions hold under every profile.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig_skew


def test_fig_skew(benchmark, profile, save_report):
    records = run_once(benchmark, lambda: fig_skew.run(profile))
    save_report("fig_skew", fig_skew.render(records))

    assert {r.backend for r in records} == set(fig_skew.BACKENDS)
    for record in records:
        cell = record.backend
        sweep = record.operator_stats["_sweep"]
        assert record.ok and sweep["naive_ok"], cell
        # Correctness: re-placing groups must not change the answer.
        assert record.output_hash == sweep["naive_hash"], cell
        # Exactly one split, at unchanged parallelism, with real state
        # moved and the hot groups named on the event.
        splits = [e for e in record.rescales if e.reason == "skew-split"]
        assert len(splits) == 1, cell
        event = splits[0]
        assert event.old_parallelism == event.new_parallelism, cell
        assert event.moved_groups > 0, cell
        assert event.bytes_moved > 0, cell
        assert event.hot_groups, cell
        # The point of the figure: the split strictly improves the tail
        # and the worst node's keyed load.
        assert record.p95_latency < sweep["naive_p95"], cell
        assert (sweep["balanced_max_node_util"]
                < sweep["naive_max_node_util"]), cell
