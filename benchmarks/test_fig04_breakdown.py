"""Figure 4: execution-time breakdown of Flink on RocksDB and Faster.

Paper shape asserted:
* Faster does not finish (or is drastically slower) on the append
  patterns (Q7, Q11-Median) — I/O amplification,
* on the RMW pattern (Q11) Faster beats RocksDB,
* store-side time is a substantial share of both baselines' runtime,
* FlowKV (shown for reference) finishes fastest on every query.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig4


def _by_cell(records):
    return {(r.query, r.backend): r for r in records}


def test_fig04_breakdown(benchmark, profile, save_report):
    records = run_once(benchmark, lambda: fig4.run(profile))
    save_report("fig04_breakdown", fig4.render(records))
    cells = _by_cell(records)

    # Append patterns: Faster DNF or far behind RocksDB.
    for query in ("q7", "q11-median"):
        faster = cells[(query, "faster")]
        rocksdb = cells[(query, "rocksdb")]
        assert rocksdb.ok
        if faster.ok:
            assert faster.job_seconds > 1.5 * rocksdb.job_seconds

    # RMW: Faster beats RocksDB.
    assert cells[("q11", "faster")].ok
    assert cells[("q11", "faster")].job_seconds < cells[("q11", "rocksdb")].job_seconds

    # FlowKV finishes fastest everywhere.
    for query in ("q7", "q11-median", "q11"):
        flow = cells[(query, "flowkv")]
        assert flow.ok
        for backend in ("rocksdb", "faster"):
            rival = cells[(query, backend)]
            if rival.ok:
                assert flow.job_seconds < rival.job_seconds

    # Store CPU is a real share of the baselines' time (the paper's core
    # §2.2 observation: store time comparable to query computation).
    rocksdb_q7 = cells[("q7", "rocksdb")]
    store_cpu = rocksdb_q7.metrics.store_cpu_seconds
    query_cpu = rocksdb_q7.metrics.cpu_seconds["query"]
    assert store_cpu > 0.5 * query_cpu
