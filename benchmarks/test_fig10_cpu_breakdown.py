"""Figure 10: store CPU time by operation (write / read+delete / compaction).

Paper shape asserted: FlowKV spends substantially less store CPU than the
rival backends (paper: 1.75x-10.56x less), with the savings coming from
the mechanisms §6.3 names — no compaction for AAR, fewer merge-heavy
reads for AUR, no synchronization for RMW.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig10


def _store_cpu(record):
    cpu = record.metrics.cpu_seconds
    return (
        cpu.get("store_write", 0.0)
        + cpu.get("store_read", 0.0)
        + cpu.get("compaction", 0.0)
        + cpu.get("sync", 0.0)
    )


def test_fig10_store_cpu(benchmark, profile, save_report):
    records = run_once(benchmark, lambda: fig10.run(profile))
    save_report("fig10_cpu_breakdown", fig10.render(records))
    by_cell = {(r.query, r.backend): r for r in records}

    for query in fig10.QUERIES:
        flow = by_cell[(query, "flowkv")]
        assert flow.ok
        rival_cpus = [
            _store_cpu(by_cell[(query, backend)])
            for backend in ("rocksdb", "faster")
            if by_cell[(query, backend)].ok
        ]
        assert rival_cpus, query
        saving = max(rival_cpus) / max(1e-12, _store_cpu(flow))
        assert saving > 1.5, (query, saving)

    # Mechanism checks:
    # AAR (q7): FlowKV pays no compaction CPU at all — per-window files
    # are deleted after reads.
    flow_q7 = by_cell[("q7", "flowkv")]
    assert flow_q7.metrics.cpu_seconds.get("compaction", 0.0) < 1e-6

    # RocksDB pays real compaction CPU on the same query (lazy merging).
    rocksdb_q7 = by_cell[("q7", "rocksdb")]
    assert rocksdb_q7.metrics.cpu_seconds.get("compaction", 0.0) > 0

    # RMW (q11): Faster pays synchronization, FlowKV none.
    faster_q11 = by_cell[("q11", "faster")]
    flow_q11 = by_cell[("q11", "flowkv")]
    assert faster_q11.metrics.cpu_seconds.get("sync", 0.0) > 0
    assert flow_q11.metrics.cpu_seconds.get("sync", 0.0) == 0.0
