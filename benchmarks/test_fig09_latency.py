"""Figure 9: P95 latency vs tuple rate for Q7, Q11-Median and Q11.

Paper shape asserted:
* FlowKV sustains every swept rate on all three queries,
* latency is non-explosive at sustainable rates and grows with rate,
* the in-memory store fails (OOM) on the append-pattern queries,
* Faster fails or falls behind at high rates on append patterns.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig9


def _by_cell(records):
    return {(r.query, r.backend, r.arrival_rate): r for r in records}


def test_fig09_latency(benchmark, profile, save_report):
    records = run_once(benchmark, lambda: fig9.run(profile))
    save_report("fig09_latency", fig9.render(records))
    cells = _by_cell(records)
    rates = profile.latency_rates

    # FlowKV sustains all rates on all queries.
    for query in fig9.QUERIES:
        for rate in rates:
            record = cells[(query, "flowkv", rate)]
            assert record.ok, (query, rate, record.failure)
            assert record.p95_latency is not None

    # In-memory fails on append patterns (memory pressure at 2000s-scale
    # windows), as in the paper's Q7/Q11-Median plots.
    memory_failures = [
        cells[(query, "memory", rate)]
        for query in ("q7", "q11-median")
        for rate in rates
    ]
    assert any(not record.ok for record in memory_failures)

    # Faster fails or is far slower at the top rate on an append query.
    flow_top = cells[("q7", "flowkv", rates[-1])]
    faster_top = cells[("q7", "faster", rates[-1])]
    assert (not faster_top.ok) or (
        faster_top.p95_latency > 2 * max(1e-9, flow_top.p95_latency)
    )

    # Latency grows (weakly) with rate for FlowKV on Q11.
    flow_latencies = [cells[("q11", "flowkv", rate)].p95_latency for rate in rates]
    assert flow_latencies[-1] >= flow_latencies[0] * 0.5  # sanity: no cliff
