"""Rescale figure: elastic N->M key-group migration cost on Q11-Median.

Shape asserted: every rescaled run is correct (output identical to the
fixed-parallelism baseline), moves a nonzero number of key-groups and
bytes, records nonzero downtime, and charges the ``migration`` ledger
category.  FlowKV's migration should not be slower than the LSM's at
the largest window (its state is already batched per window).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig_rescale


def test_fig_rescale(benchmark, profile, save_report):
    records = run_once(benchmark, lambda: fig_rescale.run(profile))
    save_report("fig_rescale", fig_rescale.render(records))

    by_cell = {}
    for record in records:
        sweep = record.operator_stats["_sweep"]
        by_cell[(record.backend, record.window_size,
                 sweep["n_from"], sweep["n_to"])] = record

    for (backend, window, n_from, n_to), record in by_cell.items():
        cell = (backend, window, n_from, n_to)
        assert record.ok, cell
        # Correctness: rescaling mid-stream must not change the answer.
        assert record.output_hash == \
            record.operator_stats["_sweep"]["baseline_hash"], cell
        # Exactly one scheduled rescale fired, and it moved real state.
        assert len(record.rescales) == 1, cell
        event = record.rescales[0]
        assert event.old_parallelism == n_from, cell
        assert event.new_parallelism == n_to, cell
        assert event.moved_groups > 0, cell
        assert event.bytes_moved > 0, cell
        assert event.downtime_seconds > 0, cell
        assert record.migration_seconds > 0, cell

    largest = max(w for (_, w, _, _) in by_cell)
    for n_from, n_to in ((2, 4), (4, 2)):
        flowkv = by_cell[("flowkv", largest, n_from, n_to)]
        lsm = by_cell[("rocksdb", largest, n_from, n_to)]
        assert (flowkv.rescales[0].downtime_seconds
                <= lsm.rescales[0].downtime_seconds), (n_from, n_to)
