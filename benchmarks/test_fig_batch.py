"""Batch sweep figure: wall-clock and charged ops vs batch size.

Shape asserted: every cell finishes, every batch size is digest-equal
with the batch-1 run of its cell, and the simulated columns (per-run
CPU total, charged device ops) are bit-identical across batch sizes —
batching may only move real wall-clock time.  At batch 64, at least
one cell per query shows a measurable real-time reduction.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig_batch


def test_fig_batch(benchmark, profile, save_report):
    records = run_once(benchmark, lambda: fig_batch.run(profile))
    save_report("fig_batch", fig_batch.render(records))

    cells: dict[tuple[str, str], dict[int, object]] = {}
    for record in records:
        sweep = record.operator_stats["_sweep"]
        cells.setdefault((record.query, record.backend), {})[sweep["batch"]] = record

    for (query, backend), by_batch in cells.items():
        assert set(by_batch) == set(fig_batch.BATCH_SIZES), (query, backend)
        base = by_batch[1]
        assert base.ok, (query, backend)
        for batch, record in by_batch.items():
            cell = (query, backend, batch)
            assert record.ok, cell
            sweep = record.operator_stats["_sweep"]
            # Correctness: outputs and the simulated ledger are
            # batch-size-invariant.
            assert record.output_hash == base.output_hash, cell
            assert sweep["digest_ok"], cell
            assert sweep["sim_cpu_ok"], cell
            assert sweep["charged_ops"] == \
                base.operator_stats["_sweep"]["charged_ops"], cell
            assert record.results == base.results, cell

    # The point of the batch path: real time drops somewhere at batch 64.
    for query in fig_batch.QUERIES:
        speedups = [
            by_batch[64].operator_stats["_sweep"]["speedup"]
            for (q, _), by_batch in cells.items() if q == query
        ]
        assert max(speedups) > 1.1, (query, speedups)
