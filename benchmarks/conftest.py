"""Shared benchmark fixtures and report plumbing.

Each figure benchmark runs the corresponding harness once (timed by
pytest-benchmark), prints the paper-style table, and saves it under
``benchmarks/reports/`` so EXPERIMENTS.md can reference the output.

Profile selection: set ``REPRO_BENCH_PROFILE`` to ``tiny`` / ``quick`` /
``default`` (default: quick).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.profiles import active_profile

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def profile():
    return active_profile()


@pytest.fixture()
def save_report():
    def _save(name: str, text: str) -> None:
        REPORTS_DIR.mkdir(exist_ok=True)
        (REPORTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
