"""Figure 8: throughput of the eight NEXMark queries x 3 windows x 4 backends.

Paper shape asserted:
* FlowKV beats both persistent rivals on every query/window cell,
* the in-memory store OOMs on the large append-pattern states,
* Faster times out (or collapses) on append patterns at large windows,
* FlowKV's gain over RocksDB falls in a plausible band around the
  paper's 1.55x-4.12x range.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig8


def _by_cell(records):
    return {(r.query, r.backend, r.window_size): r for r in records}


def test_fig08_throughput(benchmark, profile, save_report):
    records = run_once(benchmark, lambda: fig8.run(profile))
    save_report("fig08_throughput", fig8.render(records, profile))
    cells = _by_cell(records)
    sizes = profile.window_sizes

    # FlowKV always finishes and beats every finishing persistent rival.
    for query in fig8.QUERIES:
        for size in sizes:
            flow = cells[(query, "flowkv", size)]
            assert flow.ok, (query, size)
            for rival in ("rocksdb", "faster"):
                record = cells[(query, rival, size)]
                if record.ok:
                    assert flow.throughput > record.throughput, (query, rival, size)

    # The in-memory store OOMs on the big append-pattern states (Q7 at
    # every size, and the session list states at the largest size).
    assert not cells[("q7", "memory", sizes[-1])].ok
    assert cells[("q7", "memory", sizes[-1])].failure == "oom"
    assert not cells[("q11-median", "memory", sizes[-1])].ok

    # ... but survives the RMW queries (aggregates are small).
    for query in ("q11", "q12"):
        assert cells[(query, "memory", sizes[0])].ok

    # Faster collapses on the append pattern at the largest window.
    faster_q7 = cells[("q7", "faster", sizes[-1])]
    flow_q7 = cells[("q7", "flowkv", sizes[-1])]
    assert (not faster_q7.ok) or faster_q7.throughput < flow_q7.throughput / 4

    # Gain over RocksDB lands in a sane band around the paper's 1.5-4.1x.
    for query in fig8.QUERIES:
        flow = cells[(query, "flowkv", sizes[-1])]
        rocksdb = cells[(query, "rocksdb", sizes[-1])]
        if flow.ok and rocksdb.ok:
            gain = flow.throughput / rocksdb.throughput
            assert 1.1 < gain < 12.0, (query, gain)
