"""Ablation benches for the design choices DESIGN.md calls out.

* integrated vs separate compaction index scans (AUR, §4.2),
* coarse-grained (per-window) vs fine-grained (per-key) AAR flushes (§4.1),
* the number of store instances m per physical operator (§3),
* gradual state loading partition size (AAR, §4.1).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.harness import run_query
from repro.core.aar import AarStore
from repro.core.aur import AurStore
from repro.core.ett import SessionGapPredictor
from repro.model import Window
from repro.simenv import SimEnv
from repro.storage import SimFileSystem


def _drive_aur(integrated: bool) -> float:
    """Session-like churn on a bare AUR store; returns simulated seconds."""
    env = SimEnv()
    fs = SimFileSystem(env)
    store = AurStore(
        env, fs, SessionGapPredictor(10.0), "aur",
        write_buffer_bytes=4 << 10, read_batch_ratio=0.3,
        max_space_amplification=1.2, data_segment_bytes=16 << 10,
        integrated_compaction=integrated,
    )
    def cell(round_idx: int) -> tuple[bytes, Window]:
        window = Window(float(round_idx * 20), float(round_idx * 20) + 10.0)
        return f"k{round_idx % 40:02d}".encode(), window

    lag = 30  # windows are read long after their data spilled to disk
    for round_idx in range(150):
        key, window = cell(round_idx)
        for _j in range(15):
            store.append(key, b"v" * 40, window, window.start)
        if round_idx >= lag:
            old_key, old_window = cell(round_idx - lag)
            store.get(old_key, old_window)
    assert store.compaction_count > 0
    return env.now


def test_ablation_integrated_compaction(benchmark, save_report):
    integrated = _drive_aur(integrated=True)
    separate = run_once(benchmark, lambda: _drive_aur(integrated=False))
    text = (
        "Ablation: integrated vs separate compaction index scans (AUR)\n"
        f"integrated: {integrated:.4f} sim-s   separate: {separate:.4f} sim-s   "
        f"saving: {separate / integrated:.2f}x"
    )
    save_report("ablation_integrated_compaction", text)
    assert integrated < separate


def _drive_aar(coarse: bool) -> float:
    env = SimEnv()
    fs = SimFileSystem(env)
    store = AarStore(
        env, fs, "aar", write_buffer_bytes=8 << 10, read_chunk_bytes=8 << 10,
        coarse_grained=coarse,
    )
    for window_idx in range(20):
        window = Window(float(window_idx * 10), float(window_idx * 10) + 10.0)
        for i in range(400):
            store.append(f"k{i % 50:02d}".encode(), b"v" * 40, window)
        for _key, _values in store.get_window(window):
            pass
    return env.now


def test_ablation_coarse_grained_layout(benchmark, save_report):
    coarse = _drive_aar(coarse=True)
    fine = run_once(benchmark, lambda: _drive_aar(coarse=False))
    text = (
        "Ablation: coarse-grained (per-window) vs fine-grained (per-key) AAR\n"
        f"coarse: {coarse:.4f} sim-s   fine: {fine:.4f} sim-s   "
        f"saving: {fine / coarse:.2f}x"
    )
    save_report("ablation_coarse_grained", text)
    assert coarse < fine


def test_ablation_store_instances(benchmark, profile, save_report):
    """m store instances per operator: compaction is per state partition,
    so more instances mean smaller, more frequent, individually cheaper
    compactions — the latency-spike argument of §3 (the paper sets m=2).
    Uses the AUR-heavy q11-median at the largest window so compaction
    actually runs."""
    size = profile.window_sizes[-1]

    def sweep():
        return {
            m: run_query(
                profile, "q11-median", "flowkv", size,
                flowkv_overrides={
                    "num_instances": m,
                    "max_space_amplification": 1.2,
                },
            )
            for m in (1, 2, 4)
        }

    records = run_once(benchmark, sweep)
    lines = ["Ablation: FlowKV store instances m per physical operator (q11-median)"]
    for m, record in records.items():
        lines.append(
            f"m={m}: throughput {record.throughput:,.0f}/s, "
            f"compactions {int(record.stat_sum('compaction_count'))}"
        )
    save_report("ablation_partitions", "\n".join(lines))
    assert all(record.ok for record in records.values())
    # Compactions run, and partitioning them by m keeps each one smaller:
    # with more instances each compaction moves less data, so the count
    # is at least as high while total work stays comparable.
    assert records[2].stat_sum("compaction_count") > 0


def _aar_peak_partition(chunk_bytes: int) -> int:
    env = SimEnv()
    fs = SimFileSystem(env)
    store = AarStore(
        env, fs, "aar", write_buffer_bytes=2 << 10, read_chunk_bytes=chunk_bytes
    )
    window = Window(0.0, 10.0)
    for i in range(2000):
        store.append(f"k{i % 20:02d}".encode(), b"v" * 40, window)
    peak = 0
    for _key, values in store.get_window(window):
        peak = max(peak, sum(len(v) for v in values))
    return peak


def test_ablation_gradual_loading(benchmark, save_report):
    """Gradual state loading bounds trigger-time memory (§4.1)."""
    small = _aar_peak_partition(chunk_bytes=2 << 10)
    large = run_once(benchmark, lambda: _aar_peak_partition(chunk_bytes=1 << 20))
    text = (
        "Ablation: gradual state loading partition size (AAR)\n"
        f"2 KiB chunks: peak in-memory group {small} B\n"
        f"1 MiB chunks: peak in-memory group {large} B"
    )
    save_report("ablation_gradual_loading", text)
    assert small < large
