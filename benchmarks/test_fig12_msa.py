"""Figure 12: MSA (maximum space amplification) sweep.

Paper shape asserted:
* compaction count decreases as MSA grows (fewer, later compactions),
* throughput at MSA 1.5 is within a whisker of the best (the paper's
  "no significant difference after 1.5"),
* small MSA saves disk at the cost of compaction work.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig12


def test_fig12_msa(benchmark, profile, save_report):
    records = run_once(
        benchmark, lambda: fig12.run(profile, queries=("q11-median",))
    )
    save_report("fig12_msa", fig12.render(records))
    by_msa = {r.operator_stats["_sweep"]["msa"]: r for r in records}

    # Compactions monotonically (weakly) decrease with MSA.
    msas = sorted(by_msa)
    compactions = [by_msa[m].stat_sum("compaction_count") for m in msas]
    assert compactions[0] >= compactions[-1]
    assert compactions[0] > 0  # the tight setting does compact

    # Throughput at 1.5 close to the best across the sweep.
    best = max(r.throughput for r in records)
    assert by_msa[1.5].throughput > 0.75 * best

    # Tightest MSA must not beat the loosest by much (compaction costs).
    assert by_msa[msas[0]].throughput <= by_msa[msas[-1]].throughput * 1.1
