"""Figure 13: multi-worker scalability of Q11-Median on FlowKV.

Paper shape asserted: near-linear scaling to 8 workers (store instances
are per-physical-operator; nothing is shared).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.figures import fig13


def test_fig13_scaling(benchmark, profile, save_report):
    records = run_once(benchmark, lambda: fig13.run(profile))
    save_report("fig13_scaling", fig13.render(records))
    by_workers = {r.operator_stats["_sweep"]["workers"]: r for r in records}

    base = by_workers[1]
    assert base.ok
    for workers in (2, 4, 8):
        record = by_workers[workers]
        assert record.ok
        speedup = record.throughput / base.throughput
        # Near-linear: at least 60% parallel efficiency at every width.
        assert speedup > 0.6 * workers, (workers, speedup)
