"""Run driver: executes one (query, backend, window) cell and records it.

Failure handling mirrors the paper: heap OOM and simulated-time timeouts
become crossed bars (Figure 8), latency overload becomes a missing point
(Figure 9) — never an unhandled exception.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any

from repro.bench.profiles import ScaleProfile
from repro.errors import StoreOOMError, UnsupportedOperationError
from repro.nexmark.queries import build_query
from repro.rescale import RescaleEvent, ScheduledRescale
from repro.simenv import MetricsSnapshot


@dataclass
class RunRecord:
    """Outcome of one benchmark cell."""

    query: str
    backend: str
    window_size: float
    input_records: int = 0
    job_seconds: float = 0.0
    throughput: float = 0.0  # records / simulated second
    failure: str | None = None
    p95_latency: float | None = None
    arrival_rate: float | None = None
    results: int = 0
    n_instances: int = 1
    metrics: MetricsSnapshot | None = None
    operator_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    rescales: list[RescaleEvent] = field(default_factory=list)
    output_hash: str | None = None  # order-independent digest of sink outputs
    recoveries: list[Any] = field(default_factory=list)  # RecoveryEvent
    checkpoints: int = 0
    checkpoint_stats: list[Any] = field(default_factory=list)  # CheckpointStat
    node_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    group_load: dict[str, Any] = field(default_factory=dict)

    @property
    def checkpoint_bytes(self) -> int:
        """Total bytes written across all checkpoint epochs."""
        return sum(stat.bytes_written for stat in self.checkpoint_stats)

    def checkpoint_bytes_per_epoch(self, *, full: bool | None = None) -> float:
        """Mean bytes written per epoch, optionally full/delta-only."""
        stats = [
            s for s in self.checkpoint_stats
            if full is None or s.full == full
        ]
        if not stats:
            return 0.0
        return sum(s.bytes_written for s in stats) / len(stats)

    @property
    def ok(self) -> bool:
        return self.failure is None

    def stat_sum(self, key: str) -> float:
        return sum(stats.get(key, 0) for stats in self.operator_stats.values())

    @property
    def migration_seconds(self) -> float:
        """Simulated CPU charged to the ``migration`` ledger category."""
        if self.metrics is None:
            return 0.0
        return self.metrics.cpu_seconds.get("migration", 0.0)

    @property
    def recovery_seconds(self) -> float:
        """Simulated CPU charged to the ``recovery`` ledger category."""
        if self.metrics is None:
            return 0.0
        return self.metrics.cpu_seconds.get("recovery", 0.0)

    @property
    def network_seconds(self) -> float:
        """Simulated time charged to the ``network`` ledger category."""
        if self.metrics is None:
            return 0.0
        return self.metrics.cpu_seconds.get("network", 0.0)

    @property
    def network_bytes(self) -> int:
        """Bytes moved over simulated cluster links (0 single-node)."""
        if self.metrics is None:
            return 0
        return self.metrics.counters.get("net_bytes", 0)

    @property
    def restore_seconds(self) -> float:
        """Simulated time spent restoring checkpoints after crashes."""
        return sum(
            event.sim_seconds for event in self.recoveries
            if getattr(event, "kind", "") == "restore"
        )

    @property
    def recovery_downtime(self) -> float:
        """Simulated time from failure to serving again, whichever lane
        recovered the job (checkpoint restore or standby promotion);
        failed attempts that degraded are part of the downtime too."""
        return sum(
            event.sim_seconds for event in self.recoveries
            if getattr(event, "kind", "") in ("restore", "promote", "degraded")
        )


def run_query(
    profile: ScaleProfile,
    query: str,
    backend: str,
    window_size: float,
    sim_timeout: float | None = None,
    arrival_rate: float | None = None,
    duration: float | None = None,
    events_per_second: float | None = None,
    seed: int | None = None,
    flowkv_overrides: dict[str, Any] | None = None,
    workers: int | None = None,
    session_gap: float | None = None,
    parallelism: int | None = None,
    rescale_schedule: dict[int, int] | None = None,
    rescale_policy: Any = None,
    fault_plan: Any = None,
    checkpoint_interval: int | None = None,
    rescale_mode: str = "live",
    transfer_chunk_bytes: int | None = None,
    transfer_queue_limit: int | None = None,
    incremental_checkpoints: bool | str = True,
    full_snapshot_interval: int | None = None,
    retained_epochs: int | None = None,
    seed_rescale_from_checkpoint: bool = True,
    generator_overrides: dict[str, Any] | None = None,
    cluster: Any = None,
    recovery_mode: str = "restore",
    batch_records: int = 1,
    batch_bytes: int | None = None,
    prefetch_depth: int = 0,
) -> RunRecord:
    """Execute one cell of the evaluation matrix.

    ``rescale_schedule`` maps record counts to target parallelisms; each
    entry triggers a mid-stream rescale (see :mod:`repro.rescale`) —
    asynchronous per-key-group by default (``rescale_mode="live"``), or
    stop-the-world with ``rescale_mode="stw"``.  ``rescale_policy``
    passes an arbitrary policy object (e.g. a
    :class:`~repro.rescale.skew.SkewController`) instead and takes
    precedence over ``rescale_schedule``.  ``parallelism`` overrides the
    profile's starting parallelism (the rescale sweep needs both ends);
    ``transfer_chunk_bytes`` and ``transfer_queue_limit`` tune the live
    transfer.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects scheduled
    faults; ``checkpoint_interval`` (records) enables checkpointing and
    runs the job under the :class:`repro.recovery.RecoveryManager`, which
    restores and replays through injected crashes.

    ``incremental_checkpoints`` selects per-key-group sharded epochs
    (True, the default; ``"require"`` fails fast on backends without the
    capability; False forces full per-epoch snapshots),
    ``full_snapshot_interval`` bounds the shard-chain length,
    ``retained_epochs`` enables chain-aware checkpoint GC, and
    ``seed_rescale_from_checkpoint`` lets live rescales seed clean moved
    key-groups from the latest checkpoint instead of streaming them.

    ``cluster`` (a :class:`repro.cluster.ClusterTopology`) places the
    physical instances on simulated machines: cross-node shuffle hops,
    migration chunks, and checkpoint shard replication/fetch all pay the
    network, and job time respects per-node core budgets.
    """
    factory = profile.backend_factory(backend, **(flowkv_overrides or {}))
    generator = profile.generator(
        seed=seed, duration=duration, events_per_second=events_per_second
    )
    if generator_overrides:
        # Workload-shape tweaks for a single cell (e.g. popularity skew
        # for the incremental-checkpoint comparison).
        generator = replace(generator, **generator_overrides)
    effective_workers = workers or profile.workers
    start_parallelism = parallelism or profile.parallelism
    if session_gap is None:
        session_gap = window_size * profile.session_gap_fraction
    env = build_query(
        query,
        factory,
        generator,
        window_size,
        parallelism=start_parallelism,
        workers=effective_workers,
        session_gap=session_gap,
        cost_scale=profile.latency_cost_scale if arrival_rate else 1.0,
        faults=fault_plan.build() if fault_plan is not None else None,
        cluster=cluster,
        batch_records=batch_records,
        batch_bytes=batch_bytes,
        prefetch_depth=prefetch_depth,
    )
    record = RunRecord(query=query, backend=backend, window_size=window_size,
                       arrival_rate=arrival_rate,
                       n_instances=start_parallelism * effective_workers)
    run_kwargs = dict(
        arrival_rate=arrival_rate,
        watermark_interval=(
            profile.latency_watermark_interval
            if arrival_rate
            else profile.watermark_interval
        ),
        sim_timeout=sim_timeout,
        overload_backlog=profile.overload_backlog,
        rescale_policy=(
            rescale_policy
            if rescale_policy is not None
            else ScheduledRescale(dict(rescale_schedule)) if rescale_schedule else None
        ),
        rescale_mode=rescale_mode,
        transfer_chunk_bytes=transfer_chunk_bytes,
        transfer_queue_limit=transfer_queue_limit,
        seed_rescale_from_checkpoint=seed_rescale_from_checkpoint,
    )
    try:
        if checkpoint_interval is not None:
            from repro.recovery import RecoveryManager

            env.validate()
            manager_kwargs: dict[str, Any] = {"incremental": incremental_checkpoints}
            if full_snapshot_interval is not None:
                manager_kwargs["full_snapshot_interval"] = full_snapshot_interval
            if retained_epochs is not None:
                manager_kwargs["retained_epochs"] = retained_epochs
            if recovery_mode != "restore":
                manager_kwargs["mode"] = recovery_mode
            manager = RecoveryManager(env, checkpoint_interval, **manager_kwargs)
            result = manager.run(**run_kwargs)
        else:
            result = env.execute(**run_kwargs)
    except StoreOOMError:
        record.failure = "oom"
        return record
    except UnsupportedOperationError as exc:
        # A cell asked for an optional capability (snapshotting,
        # rescaling) its backend does not advertise: a reportable
        # failure, not a crash of the whole sweep.
        record.failure = f"unsupported:{exc.operation}"
        return record
    record.input_records = result.input_records
    record.job_seconds = result.job_seconds
    record.throughput = result.throughput
    record.failure = result.failure
    record.results = sum(len(v) for v in result.sink_outputs.values())
    record.metrics = result.metrics
    record.operator_stats = result.operator_stats
    record.rescales = result.rescales
    record.recoveries = result.recoveries
    record.checkpoints = result.checkpoints
    record.checkpoint_stats = result.checkpoint_stats
    record.node_stats = result.node_stats
    record.group_load = result.group_load
    record.output_hash = output_digest(result.sink_outputs)
    if arrival_rate:
        record.p95_latency = result.p95_latency()
    return record


def output_digest(sink_outputs: dict[str, list[Any]]) -> str:
    """Order-independent digest of all sink outputs.

    Output order varies with parallelism (instances trigger in instance
    order), but the per-(key, window) results do not — sorting the reprs
    per sink makes runs at different parallelisms comparable.
    """
    digest = hashlib.sha256()
    for sink in sorted(sink_outputs):
        digest.update(sink.encode())
        for item in sorted(repr(value) for value in sink_outputs[sink]):
            digest.update(item.encode())
            digest.update(b"\x00")
    return digest.hexdigest()


def run_matrix(
    profile: ScaleProfile,
    queries: list[str],
    backends: list[str],
    window_sizes: list[float] | None = None,
) -> list[RunRecord]:
    """The Figure-8 matrix.

    FlowKV runs first per (query, window) to establish the reference time;
    other backends are then killed at ``timeout_multiplier`` times the
    reference (the paper's 7200 s kill, scaled).
    """
    sizes = list(window_sizes or profile.window_sizes)
    records: list[RunRecord] = []
    for query in queries:
        for size in sizes:
            reference = run_query(profile, query, "flowkv", size)
            timeout = max(
                profile.timeout_floor,
                profile.timeout_multiplier * max(reference.job_seconds, 1e-9),
            )
            for backend in backends:
                if backend == "flowkv":
                    records.append(reference)
                    continue
                records.append(
                    run_query(profile, query, backend, size, sim_timeout=timeout)
                )
    return records


def run_latency(
    profile: ScaleProfile,
    query: str,
    backends: list[str],
    rates: list[float] | None = None,
) -> list[RunRecord]:
    """The Figure-9 sweep: fixed window, open-loop rates, P95 latency.

    For latency runs the generator's event rate equals the arrival rate,
    so event time and wall time advance together (the Kafka feed of §6.2).
    """
    rates = list(rates or profile.latency_rates)
    records: list[RunRecord] = []
    for backend in backends:
        for rate in rates:
            records.append(
                run_query(
                    profile,
                    query,
                    backend,
                    profile.latency_window,
                    arrival_rate=rate,
                    events_per_second=rate,
                    duration=profile.latency_duration,
                    sim_timeout=None,
                )
            )
    return records
