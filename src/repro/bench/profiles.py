"""Scale profiles: the paper's AWS setup shrunk to laptop size.

The paper processes ~400 GB with per-node budgets of 2048 MB write
buffers, 16 GB RocksDB/Faster memory, 50 GB JVM heap, and kills jobs at
7200 s.  What determines the results is not the absolute sizes but the
*ratios* — state vs. write buffer, state vs. heap, timeout vs. competitive
runtime.  A profile keeps those ratios while shrinking absolute volume by
roughly 4000x so a full figure reproduces in minutes of wall time.

Paper-to-profile window mapping: the paper's 500 / 1000 / 2000 s windows
become the profile's ``window_sizes``; throughput is reported per input
tuple, so ratios are directly comparable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.backends import faster_backend, flowkv_backend, memory_backend, rocksdb_backend
from repro.core import FlowKVConfig
from repro.engine.state import BackendFactory
from repro.kvstores.hashkv import FasterConfig
from repro.kvstores.lsm import LsmConfig
from repro.kvstores.memory import GcModel
from repro.nexmark.generator import GeneratorConfig
from repro.nexmark.serde import NexmarkSerde

BACKEND_NAMES = ("memory", "flowkv", "rocksdb", "faster")


@dataclass(frozen=True)
class ScaleProfile:
    """All knobs of one scaled-down evaluation setup."""

    name: str = "default"
    # workload
    events_per_second: float = 60.0
    duration: float = 1500.0
    active_people: int = 200
    active_auctions: int = 50
    seed: int = 20230509
    # windows: maps the paper's (500, 1000, 2000) seconds
    window_sizes: tuple[float, ...] = (125.0, 250.0, 500.0)
    paper_window_labels: tuple[str, ...] = ("500s", "1000s", "2000s")
    # session gap = fraction x window size, tuned per profile so the gap
    # spans ~1-5x the per-bidder inter-arrival time (sessions grow with
    # the configured window size, as in Figure 8's state-size axis)
    session_gap_fraction: float = 0.02
    # engine
    parallelism: int = 2
    workers: int = 1
    watermark_interval: int = 50
    # failure thresholds (the paper's 7200 s kill, scaled as a multiple of
    # the competitive backend's runtime)
    timeout_multiplier: float = 8.0
    timeout_floor: float = 0.5
    # memory budgets
    heap_total_bytes: int = 1 << 20  # JVM heap for the in-memory backend
    flowkv_write_buffer: int = 128 << 10
    # The paper's ratio 0.02 over millions of live windows selects tens of
    # thousands of windows per batch read.  At laptop scale the live-window
    # population is ~50 per store instance, so the equal-N mapping of the
    # paper's operating point is ~0.2 (N ~ 10).  Figure 11 sweeps this knob.
    flowkv_read_batch_ratio: float = 0.2
    flowkv_msa: float = 1.5
    flowkv_instances: int = 2
    flowkv_segment_bytes: int = 1 << 20
    flowkv_prefetch_bytes: int = 2 << 20
    lsm_write_buffer: int = 128 << 10
    lsm_block_cache: int = 1 << 20
    lsm_level1_bytes: int = 2 << 20
    lsm_max_file_bytes: int = 512 << 10
    faster_memory_log: int = 512 << 10
    # latency runs
    latency_window: float = 250.0
    latency_duration: float = 750.0
    latency_rates: tuple[float, ...] = (15.0, 30.0, 60.0, 90.0, 120.0)
    overload_backlog: float = 300.0
    # Latency runs slow the cost models by this factor so that the swept
    # arrival rates actually approach simulated capacity (equivalent to a
    # proportionally slower machine; relative shapes preserved).
    latency_cost_scale: float = 4000.0
    latency_watermark_interval: int = 5

    # ------------------------------------------------------------------
    def generator(
        self,
        seed: int | None = None,
        duration: float | None = None,
        events_per_second: float | None = None,
    ) -> GeneratorConfig:
        return GeneratorConfig(
            events_per_second=events_per_second or self.events_per_second,
            duration=duration or self.duration,
            active_people=self.active_people,
            active_auctions=self.active_auctions,
            seed=self.seed if seed is None else seed,
        )

    def flowkv_config(self, **overrides) -> FlowKVConfig:
        base = dict(
            read_batch_ratio=self.flowkv_read_batch_ratio,
            write_buffer_bytes=self.flowkv_write_buffer,
            max_space_amplification=self.flowkv_msa,
            num_instances=self.flowkv_instances,
            data_segment_bytes=self.flowkv_segment_bytes,
            prefetch_buffer_bytes=self.flowkv_prefetch_bytes,
        )
        base.update(overrides)
        return FlowKVConfig(**base)

    def lsm_config(self) -> LsmConfig:
        return LsmConfig(
            write_buffer_bytes=self.lsm_write_buffer,
            block_cache_bytes=self.lsm_block_cache,
            level1_bytes=self.lsm_level1_bytes,
            max_file_bytes=self.lsm_max_file_bytes,
        )

    def faster_config(self) -> FasterConfig:
        return FasterConfig(memory_log_bytes=self.faster_memory_log)

    def backend_factory(self, backend: str, **flowkv_overrides) -> BackendFactory:
        """Build the named backend's factory under this profile."""
        serde = NexmarkSerde()
        if backend == "flowkv":
            return flowkv_backend(self.flowkv_config(**flowkv_overrides), serde=serde)
        if backend == "rocksdb":
            return rocksdb_backend(self.lsm_config(), serde=serde)
        if backend == "faster":
            return faster_backend(self.faster_config(), serde=serde)
        if backend == "memory":
            per_instance = self.heap_total_bytes // (self.parallelism * self.workers)
            return memory_backend(per_instance, GcModel())
        raise ValueError(f"unknown backend: {backend}")

    def with_workers(self, workers: int) -> "ScaleProfile":
        return replace(self, workers=workers)


DEFAULT_PROFILE = ScaleProfile()

# A faster profile for CI-style runs; ratios preserved, volume ~4x lower.
QUICK_PROFILE = ScaleProfile(
    name="quick",
    events_per_second=40.0,
    duration=600.0,
    window_sizes=(50.0, 100.0, 200.0),
    session_gap_fraction=0.1,
    timeout_floor=0.05,
    heap_total_bytes=160 << 10,
    flowkv_write_buffer=32 << 10,
    lsm_write_buffer=32 << 10,
    lsm_block_cache=256 << 10,
    lsm_level1_bytes=512 << 10,
    lsm_max_file_bytes=128 << 10,
    faster_memory_log=128 << 10,
    flowkv_segment_bytes=256 << 10,
    flowkv_prefetch_bytes=512 << 10,
    latency_window=100.0,
    latency_duration=300.0,
    latency_rates=(10.0, 20.0, 40.0, 60.0),
    latency_cost_scale=4000.0,
)

# Minimal profile for unit/integration tests.
TINY_PROFILE = ScaleProfile(
    name="tiny",
    events_per_second=30.0,
    duration=200.0,
    window_sizes=(20.0, 40.0, 80.0),
    session_gap_fraction=0.3,
    timeout_floor=0.02,
    heap_total_bytes=64 << 10,
    flowkv_write_buffer=8 << 10,
    lsm_write_buffer=8 << 10,
    lsm_block_cache=64 << 10,
    lsm_level1_bytes=128 << 10,
    lsm_max_file_bytes=32 << 10,
    faster_memory_log=32 << 10,
    flowkv_segment_bytes=64 << 10,
    flowkv_prefetch_bytes=128 << 10,
    latency_window=40.0,
    latency_duration=120.0,
    latency_rates=(10.0, 30.0),
    latency_cost_scale=2000.0,
)


def active_profile() -> ScaleProfile:
    """Profile selected by the ``REPRO_BENCH_PROFILE`` env var."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
    return {
        "default": DEFAULT_PROFILE,
        "quick": QUICK_PROFILE,
        "tiny": TINY_PROFILE,
    }.get(name, QUICK_PROFILE)
