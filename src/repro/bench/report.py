"""Plain-text reporting: the same rows/series the paper's figures show."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.bench.harness import RunRecord

FAILURE_MARK = {"oom": "x (OOM)", "timeout": "x (DNF)", "overload": "x (overload)"}


def format_cell(record: RunRecord, normalize_to: float | None = None) -> str:
    if not record.ok:
        return FAILURE_MARK.get(record.failure or "", "x")
    if normalize_to:
        return f"{record.throughput / normalize_to:.2f}x"
    return f"{record.throughput:,.0f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for idx, cell in enumerate(row):
            columns[idx].append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def throughput_rows(
    records: list[RunRecord],
    queries: list[str],
    backends: list[str],
    window_sizes: list[float],
    labels: list[str] | None = None,
) -> list[list[str]]:
    """One row per (query, window): throughput per backend + FlowKV gain."""
    by_cell = {(r.query, r.backend, r.window_size): r for r in records}
    rows = []
    for query in queries:
        for idx, size in enumerate(window_sizes):
            label = labels[idx] if labels else f"{size:g}s"
            row: list[str] = [query, label]
            flow = by_cell.get((query, "flowkv", size))
            for backend in backends:
                record = by_cell.get((query, backend, size))
                row.append(format_cell(record) if record else "-")
            best_rival = min(
                (by_cell[(query, b, size)].job_seconds
                 for b in backends
                 if b not in ("flowkv", "memory")
                 and (query, b, size) in by_cell
                 and by_cell[(query, b, size)].ok),
                default=None,
            )
            if flow and flow.ok and best_rival:
                row.append(f"{best_rival / flow.job_seconds:.2f}x")
            else:
                row.append("-")
            rows.append(row)
    return rows


def breakdown_rows(records: list[RunRecord]) -> list[list[str]]:
    """Execution-time breakdown rows (Figures 4 and 10)."""
    rows = []
    for record in records:
        if not record.ok or record.metrics is None:
            rows.append(
                [record.query, record.backend,
                 FAILURE_MARK.get(record.failure or "", "x"), "-", "-", "-", "-", "-"]
            )
            continue
        # Ledger totals aggregate all parallel instances; divide by the
        # instance count so the stacked components sum to roughly the job
        # time (max busy instance), as in the paper's per-job bars.
        n = max(1, record.n_instances)
        cpu = record.metrics.cpu_seconds
        computation = (
            cpu.get("query", 0.0) + cpu.get("engine", 0.0) + cpu.get("serde", 0.0)
        ) / n
        store_write = (cpu.get("store_write", 0.0) + cpu.get("sync", 0.0) / 2) / n
        store_read = (cpu.get("store_read", 0.0) + cpu.get("sync", 0.0) / 2) / n
        compaction = (cpu.get("compaction", 0.0) + cpu.get("gc", 0.0)) / n
        rows.append(
            [
                record.query,
                record.backend,
                f"{record.job_seconds:.3f}",
                f"{computation:.3f}",
                f"{store_write:.3f}",
                f"{store_read:.3f}",
                f"{compaction:.3f}",
                f"{record.metrics.io_wait_seconds / n:.3f}",
            ]
        )
    return rows


def latency_rows(records: list[RunRecord]) -> list[list[str]]:
    rows = []
    for record in records:
        latency = (
            FAILURE_MARK.get(record.failure or "", "x")
            if not record.ok
            else f"{(record.p95_latency or 0.0) * 1000:.1f} ms"
        )
        rows.append([record.query, record.backend, f"{record.arrival_rate:g}/s", latency])
    return rows
