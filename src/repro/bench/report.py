"""Plain-text reporting: the same rows/series the paper's figures show."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.bench.harness import RunRecord

FAILURE_MARK = {"oom": "x (OOM)", "timeout": "x (DNF)", "overload": "x (overload)"}


def format_cell(record: RunRecord, normalize_to: float | None = None) -> str:
    if not record.ok:
        return FAILURE_MARK.get(record.failure or "", "x")
    if normalize_to:
        return f"{record.throughput / normalize_to:.2f}x"
    return f"{record.throughput:,.0f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for idx, cell in enumerate(row):
            columns[idx].append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def throughput_rows(
    records: list[RunRecord],
    queries: list[str],
    backends: list[str],
    window_sizes: list[float],
    labels: list[str] | None = None,
) -> list[list[str]]:
    """One row per (query, window): throughput per backend + FlowKV gain."""
    by_cell = {(r.query, r.backend, r.window_size): r for r in records}
    rows = []
    for query in queries:
        for idx, size in enumerate(window_sizes):
            label = labels[idx] if labels else f"{size:g}s"
            row: list[str] = [query, label]
            flow = by_cell.get((query, "flowkv", size))
            for backend in backends:
                record = by_cell.get((query, backend, size))
                row.append(format_cell(record) if record else "-")
            best_rival = min(
                (by_cell[(query, b, size)].job_seconds
                 for b in backends
                 if b not in ("flowkv", "memory")
                 and (query, b, size) in by_cell
                 and by_cell[(query, b, size)].ok),
                default=None,
            )
            if flow and flow.ok and best_rival:
                row.append(f"{best_rival / flow.job_seconds:.2f}x")
            else:
                row.append("-")
            rows.append(row)
    return rows


def breakdown_rows(records: list[RunRecord]) -> list[list[str]]:
    """Execution-time breakdown rows (Figures 4 and 10)."""
    rows = []
    for record in records:
        if not record.ok or record.metrics is None:
            rows.append(
                [record.query, record.backend,
                 FAILURE_MARK.get(record.failure or "", "x"), "-", "-", "-", "-", "-"]
            )
            continue
        # Ledger totals aggregate all parallel instances; divide by the
        # instance count so the stacked components sum to roughly the job
        # time (max busy instance), as in the paper's per-job bars.
        n = max(1, record.n_instances)
        cpu = record.metrics.cpu_seconds
        computation = (
            cpu.get("query", 0.0) + cpu.get("engine", 0.0) + cpu.get("serde", 0.0)
        ) / n
        store_write = (cpu.get("store_write", 0.0) + cpu.get("sync", 0.0) / 2) / n
        store_read = (cpu.get("store_read", 0.0) + cpu.get("sync", 0.0) / 2) / n
        compaction = (cpu.get("compaction", 0.0) + cpu.get("gc", 0.0)) / n
        rows.append(
            [
                record.query,
                record.backend,
                f"{record.job_seconds:.3f}",
                f"{computation:.3f}",
                f"{store_write:.3f}",
                f"{store_read:.3f}",
                f"{compaction:.3f}",
                f"{record.metrics.io_wait_seconds / n:.3f}",
            ]
        )
    return rows


def latency_rows(records: list[RunRecord]) -> list[list[str]]:
    rows = []
    for record in records:
        latency = (
            FAILURE_MARK.get(record.failure or "", "x")
            if not record.ok
            else f"{(record.p95_latency or 0.0) * 1000:.1f} ms"
        )
        rows.append([record.query, record.backend, f"{record.arrival_rate:g}/s", latency])
    return rows


def record_summary(record: Any) -> dict[str, Any]:
    """One benchmark record as a JSON-stable flat dict.

    Works on any :class:`RunRecord`-shaped object; fields that are not
    present (figures stash extras under ``operator_stats["_sweep"]``)
    are simply omitted, so the schema is append-only across figures.
    """
    row: dict[str, Any] = {
        "query": getattr(record, "query", None),
        "backend": getattr(record, "backend", None),
        "window_size": getattr(record, "window_size", None),
        "ok": getattr(record, "ok", None),
        "failure": getattr(record, "failure", None),
        "input_records": getattr(record, "input_records", None),
        "job_seconds": getattr(record, "job_seconds", None),
        "throughput": getattr(record, "throughput", None),
        "results": getattr(record, "results", None),
        "output_hash": getattr(record, "output_hash", None),
    }
    if getattr(record, "arrival_rate", None):
        row["arrival_rate"] = record.arrival_rate
        row["p95_latency"] = getattr(record, "p95_latency", None)
    checkpoints = getattr(record, "checkpoints", 0)
    if checkpoints:
        row["checkpoints"] = checkpoints
        row["checkpoint_bytes"] = getattr(record, "checkpoint_bytes", 0)
        stats = getattr(record, "checkpoint_stats", [])
        row["checkpoint_epochs"] = [
            {
                "epoch": s.epoch,
                "full": s.full,
                "bytes_written": s.bytes_written,
                "shards_written": s.shards_written,
                "shards_reused": s.shards_reused,
            }
            for s in stats
        ]
    rescales = getattr(record, "rescales", [])
    if rescales:
        row["rescales"] = [
            {
                "at_record": e.at_record,
                "mode": e.mode,
                "reason": getattr(e, "reason", "scale"),
                "old_parallelism": e.old_parallelism,
                "new_parallelism": e.new_parallelism,
                "moved_groups": e.moved_groups,
                "bytes_moved": e.bytes_moved,
                "seeded_groups": e.seeded_groups,
                "seeded_bytes": e.seeded_bytes,
                "aborted": e.aborted,
                **(
                    {"hot_groups": list(e.hot_groups)}
                    if getattr(e, "hot_groups", None)
                    else {}
                ),
            }
            for e in rescales
        ]
    recoveries = getattr(record, "recoveries", [])
    if recoveries:
        row["recoveries"] = [
            {"kind": ev.kind, "epoch": ev.epoch, "at_record": ev.at_record}
            for ev in recoveries
        ]
    # Cluster runs: network totals and the per-machine utilization map.
    # Zero network bytes on a single node — omitted entirely there.
    network_bytes = getattr(record, "network_bytes", 0)
    if network_bytes:
        row["network_bytes"] = network_bytes
        row["network_seconds"] = getattr(record, "network_seconds", 0.0)
    node_stats = getattr(record, "node_stats", {})
    if node_stats:
        row["nodes"] = node_stats
    # Semantic prefetching: counters plus the io_wait split.  Only
    # present when the run issued any prefetches — the schema stays
    # append-only and depth-0 rows are byte-identical to older builds.
    metrics = getattr(record, "metrics", None)
    if metrics is not None:
        counters = metrics.counters
        issued = sum(
            counters.get(k, 0)
            for k in ("prefetch_hits", "prefetch_late", "prefetch_wasted",
                      "prefetch_dropped")
        )
        if issued:
            residual = metrics.prefetch_wait_seconds
            row["prefetch"] = {
                "hits": counters.get("prefetch_hits", 0),
                "late": counters.get("prefetch_late", 0),
                "wasted": counters.get("prefetch_wasted", 0),
                "dropped": counters.get("prefetch_dropped", 0),
                "throttled": counters.get("prefetch_throttled", 0),
                "io_seconds": metrics.cpu_seconds.get("prefetch", 0.0),
                "residual_wait_seconds": residual,
                "demand_wait_seconds": metrics.io_wait_seconds - residual,
            }
    sweep = getattr(record, "operator_stats", {}).get("_sweep")
    if sweep:
        row["sweep"] = {
            k: v for k, v in sweep.items() if isinstance(v, (int, float, str, bool))
        }
    return row


def prefetch_counter_columns(record: Any) -> tuple[str, str, str]:
    """Prefetch effectiveness: ``(hits, late, wasted)`` counter columns.

    Runs that never issued a prefetch (depth 0, or a backend without the
    subsystem) render as ``-``.
    """
    metrics = getattr(record, "metrics", None)
    if metrics is None:
        return ("-", "-", "-")
    counters = metrics.counters
    hits = counters.get("prefetch_hits", 0)
    late = counters.get("prefetch_late", 0)
    wasted = counters.get("prefetch_wasted", 0)
    if not (hits or late or wasted or counters.get("prefetch_dropped", 0)):
        return ("-", "-", "-")
    return (str(hits), str(late), str(wasted))


def summary_payload(
    profile_name: str, figures: dict[str, tuple[Any, ...]]
) -> dict[str, Any]:
    """The ``BENCH_summary.json`` document (schema_version 1).

    ``figures`` maps figure name to ``(description, records)`` or
    ``(description, records, elapsed_seconds)`` — the third element is
    the real wall-clock time the figure took to run, so the perf
    trajectory is tracked per PR.  The schema is stable: new figures
    and new per-record fields may be added, existing keys keep their
    meaning.
    """
    out: dict[str, Any] = {}
    for name, entry in figures.items():
        description, records = entry[0], entry[1]
        figure: dict[str, Any] = {
            "description": description,
            "rows": [record_summary(r) for r in records],
        }
        if len(entry) > 2 and entry[2] is not None:
            figure["elapsed_seconds"] = round(float(entry[2]), 3)
        out[name] = figure
    return {
        "schema_version": 1,
        "profile": profile_name,
        "figures": out,
    }


def lsm_counter_columns(record: Any) -> tuple[str, str]:
    """LSM cache/bloom effectiveness: ``(hit ratio, negative rate)``.

    Backends that never touched an LSM store (FlowKV, Faster, heap) have
    no such counters and render as ``-``.
    """
    metrics = getattr(record, "metrics", None)
    if metrics is None:
        return ("-", "-")
    counters = metrics.counters
    hits = counters.get("lsm_cache_hits", 0)
    misses = counters.get("lsm_cache_misses", 0)
    checks = counters.get("lsm_bloom_checks", 0)
    negatives = counters.get("lsm_bloom_negatives", 0)
    hit_ratio = f"{hits / (hits + misses):.2f}" if hits + misses else "-"
    negative_rate = f"{negatives / checks:.2f}" if checks else "-"
    return hit_ratio, negative_rate
