"""Command-line entry point: regenerate the paper's figures.

Usage:

    python -m repro.bench fig8              # one figure
    python -m repro.bench fig4 fig10        # several
    python -m repro.bench all               # everything (writes BENCH_summary.json)
    python -m repro.bench --list            # enumerate registered figures
    python -m repro.bench fig8 --json out.json
    REPRO_BENCH_PROFILE=tiny python -m repro.bench fig8

Tables print to stdout; profile selection follows the
``REPRO_BENCH_PROFILE`` environment variable (tiny | quick | default).
Figures come from the declarative registry (:mod:`repro.bench.registry`)
— importing :mod:`repro.bench.figures` registers every module, so adding
a figure is one ``register_figure`` call, not new CLI wiring.

``--json PATH`` additionally writes the run's records as a stable JSON
document (see :func:`repro.bench.report.summary_payload`); running
``all`` always writes that document to ``BENCH_summary.json`` in the
current directory so CI can archive one machine-readable artifact per
bench run.
"""

from __future__ import annotations

import json
import sys
import time

import repro.bench.figures  # noqa: F401 - populates the figure registry
from repro.bench.profiles import active_profile
from repro.bench.registry import FIGURES
from repro.bench.report import summary_payload

SUMMARY_FILE = "BENCH_summary.json"


def main(argv: list[str]) -> int:
    argv = list(argv)
    json_path: str | None = None
    if "--json" in argv:
        at = argv.index("--json")
        if at + 1 >= len(argv):
            print("--json requires a path")
            return 2
        json_path = argv[at + 1]
        del argv[at:at + 2]
    if "--list" in argv:
        width = max(len(name) for name in FIGURES)
        for spec in FIGURES.values():
            print(f"{spec.name:<{width}}  {spec.description}")
        return 0
    names = argv or ["all"]
    run_all = names == ["all"]
    if run_all:
        names = list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}")
        print(f"available: {', '.join(FIGURES)} | all")
        return 2
    profile = active_profile()
    print(f"profile: {profile.name} "
          f"({profile.generator().expected_events:,} events per run)\n")
    collected: dict[str, tuple[str, list, float]] = {}
    for name in names:
        spec = FIGURES[name]
        started = time.time()
        print(f"=== {name}: {spec.description} ===")
        records = spec.run(profile)
        elapsed = time.time() - started
        collected[name] = (spec.description, records, elapsed)
        print(spec.render(records, profile))
        print(f"[{name} took {elapsed:.1f}s wall]\n")
    targets = [json_path] if json_path else []
    if run_all:
        targets.append(SUMMARY_FILE)
    if targets:
        payload = summary_payload(profile.name, collected)
        for target in targets:
            with open(target, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
