"""Command-line entry point: regenerate the paper's figures.

Usage:

    python -m repro.bench fig8              # one figure
    python -m repro.bench fig4 fig10        # several
    python -m repro.bench all               # everything
    python -m repro.bench --list            # enumerate registered figures
    REPRO_BENCH_PROFILE=tiny python -m repro.bench fig8

Tables print to stdout; profile selection follows the
``REPRO_BENCH_PROFILE`` environment variable (tiny | quick | default).
Figures come from the declarative registry (:mod:`repro.bench.registry`)
— importing :mod:`repro.bench.figures` registers every module, so adding
a figure is one ``register_figure`` call, not new CLI wiring.
"""

from __future__ import annotations

import sys
import time

import repro.bench.figures  # noqa: F401 - populates the figure registry
from repro.bench.profiles import active_profile
from repro.bench.registry import FIGURES


def main(argv: list[str]) -> int:
    if "--list" in argv:
        width = max(len(name) for name in FIGURES)
        for spec in FIGURES.values():
            print(f"{spec.name:<{width}}  {spec.description}")
        return 0
    names = argv or ["all"]
    if names == ["all"]:
        names = list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}")
        print(f"available: {', '.join(FIGURES)} | all")
        return 2
    profile = active_profile()
    print(f"profile: {profile.name} "
          f"({profile.generator().expected_events:,} events per run)\n")
    for name in names:
        spec = FIGURES[name]
        started = time.time()
        print(f"=== {name}: {spec.description} ===")
        records = spec.run(profile)
        print(spec.render(records, profile))
        print(f"[{name} took {time.time() - started:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
