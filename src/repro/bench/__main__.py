"""Command-line entry point: regenerate the paper's figures.

Usage:

    python -m repro.bench fig8              # one figure
    python -m repro.bench fig4 fig10        # several
    python -m repro.bench all               # everything
    REPRO_BENCH_PROFILE=tiny python -m repro.bench fig8

Tables print to stdout; profile selection follows the
``REPRO_BENCH_PROFILE`` environment variable (tiny | quick | default).
"""

from __future__ import annotations

import sys
import time

from repro.bench.figures import (
    fig4,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig_recovery,
    fig_rescale,
)
from repro.bench.profiles import active_profile

FIGURES = {
    "fig4": fig4,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig_rescale": fig_rescale,
    "fig_recovery": fig_recovery,
}


def main(argv: list[str]) -> int:
    names = argv or ["all"]
    if names == ["all"]:
        names = list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}")
        print(f"available: {', '.join(FIGURES)} | all")
        return 2
    profile = active_profile()
    print(f"profile: {profile.name} "
          f"({profile.generator().expected_events:,} events per run)\n")
    for name in names:
        module = FIGURES[name]
        started = time.time()
        print(f"=== {name}: {module.__doc__.strip().splitlines()[0]} ===")
        records = module.run(profile)
        if name == "fig8":
            print(module.render(records, profile))
        else:
            print(module.render(records))
        print(f"[{name} took {time.time() - started:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
