"""Batch sweep: real wall-clock and charged work vs batch size, all backends.

Not a paper figure — it validates the batched hot path's contract.
``max_batch_records`` pushes columnar record batches through the engine
and the backends' native ``multi_*`` implementations; the sweep runs one
AAR query (Q7) and one RMW query (Q11) per backend at batch sizes 1, 8,
64, and 256 and reports, per cell:

* **real wall-clock seconds** — the thing batching is allowed to change
  (expected to *drop* as batch size grows),
* **simulated CPU seconds and charged store ops** — the things batching
  must *not* change (flat, bit-exact columns),
* a digest check against the batch-1 run of the same cell.

A ``DIVERGED`` digest or a moving simulated column is a correctness bug
in the batch path, not a perf regression.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table

BACKENDS = ("flowkv", "rocksdb", "faster", "memory")
QUERIES = ("q7", "q11")
BATCH_SIZES = (1, 8, 64, 256)


def _charged_ops(record: RunRecord) -> int:
    """Charged device I/O requests plus counter events (batch-invariant).

    Batching must not change what reaches the simulated device: flush
    thresholds, SSTable boundaries, spills and prefetches all stay
    per-record decisions, so this count is flat across batch sizes.
    """
    if record.metrics is None:
        return 0
    metrics = record.metrics
    return (
        metrics.read_requests
        + metrics.write_requests
        + sum(metrics.counters.values())
    )


def run(
    profile: ScaleProfile,
    backends: tuple[str, ...] = BACKENDS,
    queries: tuple[str, ...] = QUERIES,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
) -> list[RunRecord]:
    size = profile.window_sizes[0]
    records: list[RunRecord] = []
    for query in queries:
        for backend in backends:
            cell_profile = profile
            if backend == "memory":
                # The small profiles' heap deliberately OOMs the naive
                # in-heap backend (fig4's point); the subject here is
                # the batch path, so give it room to finish.
                cell_profile = replace(profile, heap_total_bytes=16 << 20)
            baseline_hash = None
            baseline_wall = 0.0
            baseline_cpu = 0.0
            for batch in batch_sizes:
                started = time.perf_counter()
                record = run_query(
                    cell_profile, query, backend, size, batch_records=batch
                )
                wall = time.perf_counter() - started
                cpu = (
                    sum(record.metrics.cpu_seconds.values())
                    if record.metrics else 0.0
                )
                if batch == batch_sizes[0]:
                    baseline_hash = record.output_hash
                    baseline_wall = wall
                    baseline_cpu = cpu
                sweep = record.operator_stats.setdefault("_sweep", {})
                sweep["batch"] = batch
                sweep["wall_seconds"] = wall
                sweep["speedup"] = baseline_wall / wall if wall > 0 else 0.0
                sweep["sim_cpu_seconds"] = cpu
                sweep["charged_ops"] = _charged_ops(record)
                sweep["digest_ok"] = bool(
                    record.ok and record.output_hash == baseline_hash
                )
                sweep["sim_cpu_ok"] = bool(record.ok and cpu == baseline_cpu)
                records.append(record)
    return records


def render(records: list[RunRecord]) -> str:
    rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        ok = sweep.get("digest_ok") and sweep.get("sim_cpu_ok")
        rows.append([
            record.query,
            record.backend,
            f"{sweep.get('batch', 0)}",
            f"{sweep.get('wall_seconds', 0.0):.3f}",
            f"{sweep.get('speedup', 0.0):.2f}x",
            f"{sweep.get('sim_cpu_seconds', 0.0):.6f}",
            f"{sweep.get('charged_ops', 0):,}",
            ("=" if ok else "DIVERGED") if record.ok else record.failure,
        ])
    return format_table(
        ["query", "backend", "batch", "wall s", "speedup",
         "sim cpu s", "charged ops", "digest"],
        rows,
    )


def main() -> None:
    profile = active_profile()
    print(f"Batch sweep (profile={profile.name}): "
          f"wall-clock vs batch size; simulated columns must stay flat")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig_batch", __doc__.strip().splitlines()[0], run, render)
