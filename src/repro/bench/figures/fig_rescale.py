"""Rescale: live vs stop-the-world key-group migration on Q11-Median + Q8-Interval.

Not a paper figure — an extension of the evaluation to elastic
rescaling, now comparing the two migration modes head-to-head on all
four backends.  Per (query, backend, window, transition) cell, three
runs: a fixed-parallelism baseline, a **stop-the-world** rescale (drain,
export, redeploy, import, resume — the whole job pauses) and a **live**
rescale (chunked per-key-group transfer: un-moved groups keep serving,
records for in-transit groups wait in a bounded buffer and replay at
cutover).  The headline columns are the two downtimes as state grows:
the stop-the-world gap versus the live path's *max record delay* (the
worst stall any single record observed — no global pause exists), plus
per-group cutover counts and throughput recovery against the baseline.
Both migrated runs must be digest-equal with the baseline.  Beyond the
window-state matrix, a Q8-Interval row per transition migrates
interval-join side buffers through the identical machinery.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table

BACKENDS = ("flowkv", "rocksdb", "faster", "memory")
TRANSITIONS = ((2, 4), (4, 2))
QUERY = "q11-median"
# The join row: interval-join side buffers migrated through the same
# key-group machinery (engine-managed state, so backend-independent).
JOIN_QUERY = "q8-interval"
JOIN_BACKEND = "flowkv"


def _cell(
    profile: ScaleProfile, query: str, backend: str, size: float,
    n_from: int, n_to: int,
) -> RunRecord:
    """One (query, backend, window, transition) cell: baseline/stw/live."""
    # Fixed-parallelism baseline at the starting parallelism: the
    # recovery denominator, and it tells us the input length so the
    # rescales can fire at the halfway mark.
    baseline = run_query(profile, query, backend, size, parallelism=n_from)
    schedule = {max(1, baseline.input_records // 2): n_to}
    stw = run_query(
        profile, query, backend, size, parallelism=n_from,
        rescale_schedule=dict(schedule), rescale_mode="stw",
    )
    live = run_query(
        profile, query, backend, size, parallelism=n_from,
        rescale_schedule=dict(schedule), rescale_mode="live",
    )
    sweep = live.operator_stats.setdefault("_sweep", {})
    sweep["n_from"] = n_from
    sweep["n_to"] = n_to
    sweep["baseline_throughput"] = baseline.throughput
    sweep["baseline_hash"] = baseline.output_hash
    sweep["stw_downtime"] = (
        stw.rescales[0].downtime_seconds if stw.rescales else 0.0
    )
    sweep["stw_hash"] = stw.output_hash
    sweep["stw_ok"] = stw.ok
    return live


def run(
    profile: ScaleProfile,
    backends: tuple[str, ...] = BACKENDS,
    transitions: tuple[tuple[int, int], ...] = TRANSITIONS,
    window_sizes: tuple[float, ...] | None = None,
) -> list[RunRecord]:
    sizes = tuple(window_sizes or profile.window_sizes)
    records = []
    for backend in backends:
        cell_profile = profile
        if backend == "memory":
            # The small profiles' heap deliberately OOMs the naive
            # in-heap backend (that is fig4's point); here the subject
            # is migration, so give it room to survive the run.
            cell_profile = replace(profile, heap_total_bytes=8 << 20)
        for size in sizes:
            for n_from, n_to in transitions:
                records.append(
                    _cell(cell_profile, QUERY, backend, size, n_from, n_to)
                )
    for n_from, n_to in transitions:
        records.append(
            _cell(profile, JOIN_QUERY, JOIN_BACKEND, max(sizes), n_from, n_to)
        )
    return records


def render(records: list[RunRecord]) -> str:
    rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        n_from = sweep.get("n_from", 0)
        n_to = sweep.get("n_to", 0)
        base = sweep.get("baseline_throughput", 0.0)
        recovery = record.throughput / base if base and record.ok else 0.0
        stw_down = sweep.get("stw_downtime", 0.0)
        event = record.rescales[0] if record.rescales else None
        live_down = event.downtime_seconds if event else 0.0
        digests_ok = (
            record.ok
            and record.output_hash == sweep.get("baseline_hash")
            and sweep.get("stw_hash") == sweep.get("baseline_hash")
        )
        rows.append([
            record.query,
            record.backend,
            f"{record.window_size:g}",
            f"{n_from}->{n_to}",
            f"{event.moved_groups}" if event else "-",
            f"{event.bytes_moved:,}" if event else "-",
            f"{stw_down * 1e3:.3f}",
            f"{live_down * 1e3:.3f}",
            f"{stw_down / live_down:.1f}x" if live_down > 0 else "-",
            f"{len(event.cutovers)}" if event else "-",
            f"{sum(c.buffered_records for c in event.cutovers)}" if event else "-",
            f"{record.migration_seconds * 1e3:.3f}",
            f"{recovery:.2f}x" if record.ok else record.failure,
            "=" if digests_ok else "DIVERGED",
        ])
    return format_table(
        ["query", "backend", "window", "rescale", "groups", "bytes moved",
         "stw down ms", "live down ms", "speedup", "cutovers",
         "buffered", "migration ms", "recovery", "digest"],
        rows,
    )


def main() -> None:
    profile = active_profile()
    print(f"Rescale figure (profile={profile.name}): "
          f"{QUERY} + {JOIN_QUERY} live vs stop-the-world rescaling")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig_rescale", __doc__.strip().splitlines()[0], run, render)
