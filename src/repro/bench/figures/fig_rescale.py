"""Rescale: elastic N->M key-group migration cost on Q11-Median.

Not a paper figure — an extension of the evaluation to elastic
rescaling: a mid-stream stop-the-world rescale (drain, export the moved
key-groups, redeploy, import, resume) at half the input, swept over
state size (window) and both scale directions, for FlowKV versus a
RocksDB-style LSM.  Reported per cell: key-groups and bytes moved, the
stop-the-world downtime, total simulated CPU charged to the
``migration`` ledger category, and throughput recovery relative to a
fixed-parallelism baseline at the *starting* parallelism.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table

BACKENDS = ("flowkv", "rocksdb")
TRANSITIONS = ((2, 4), (4, 2))
QUERY = "q11-median"


def run(
    profile: ScaleProfile,
    backends: tuple[str, ...] = BACKENDS,
    transitions: tuple[tuple[int, int], ...] = TRANSITIONS,
    window_sizes: tuple[float, ...] | None = None,
) -> list[RunRecord]:
    sizes = tuple(window_sizes or profile.window_sizes)
    records = []
    for backend in backends:
        for size in sizes:
            for n_from, n_to in transitions:
                # Fixed-parallelism baseline at the starting parallelism:
                # the recovery denominator, and it tells us the input
                # length so the rescale can fire at the halfway mark.
                baseline = run_query(profile, QUERY, backend, size,
                                     parallelism=n_from)
                rescaled = run_query(
                    profile, QUERY, backend, size,
                    parallelism=n_from,
                    rescale_schedule={max(1, baseline.input_records // 2): n_to},
                )
                sweep = rescaled.operator_stats.setdefault("_sweep", {})
                sweep["n_from"] = n_from
                sweep["n_to"] = n_to
                sweep["baseline_throughput"] = baseline.throughput
                sweep["baseline_hash"] = baseline.output_hash
                records.append(rescaled)
    return records


def render(records: list[RunRecord]) -> str:
    rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        n_from = sweep.get("n_from", 0)
        n_to = sweep.get("n_to", 0)
        base = sweep.get("baseline_throughput", 0.0)
        recovery = record.throughput / base if base and record.ok else 0.0
        event = record.rescales[0] if record.rescales else None
        rows.append([
            record.backend,
            f"{record.window_size:g}",
            f"{n_from}->{n_to}",
            f"{event.moved_groups}" if event else "-",
            f"{event.bytes_moved:,}" if event else "-",
            f"{event.downtime_seconds * 1e3:.3f}" if event else "-",
            f"{record.migration_seconds * 1e3:.3f}",
            f"{record.throughput:,.0f}" if record.ok else record.failure,
            f"{recovery:.2f}x",
        ])
    return format_table(
        ["backend", "window", "rescale", "groups", "bytes moved",
         "downtime ms", "migration ms", "throughput", "recovery"],
        rows,
    )


def main() -> None:
    profile = active_profile()
    print(f"Rescale figure (profile={profile.name}): "
          f"{QUERY} elastic rescaling cost")
    print(render(run(profile)))


if __name__ == "__main__":
    main()
