"""Figure 13: multi-worker scalability of Q11-Median on FlowKV.

Paper shape: maximum throughput scales linearly from one to eight worker
machines — store instances are per physical operator with no shared
state, so nothing serializes.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table

WORKER_COUNTS = (1, 2, 4, 8)


def run(
    profile: ScaleProfile,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    window_size: float | None = None,
) -> list[RunRecord]:
    from dataclasses import replace

    size = window_size or profile.window_sizes[-1]
    records = []
    for workers in worker_counts:
        # Weak scaling: workers x input rate and workers x key population,
        # so each instance sees the same per-key stream (a max-throughput
        # measurement at constant per-worker load).
        scaled = replace(
            profile,
            workers=workers,
            active_people=profile.active_people * workers,
            active_auctions=profile.active_auctions * workers,
        )
        record = run_query(
            scaled, "q11-median", "flowkv", size,
            events_per_second=profile.events_per_second * workers,
        )
        record.operator_stats.setdefault("_sweep", {})["workers"] = workers
        records.append(record)
    return records


def render(records: list[RunRecord]) -> str:
    base = records[0].throughput if records and records[0].ok else 0.0
    rows = []
    for record in records:
        workers = record.operator_stats.get("_sweep", {}).get("workers", 0)
        speedup = record.throughput / base if base else 0.0
        rows.append(
            [f"{workers}", f"{record.throughput:,.0f}", f"{speedup:.2f}x", f"{workers}.00x"]
        )
    return format_table(["workers", "throughput", "speedup", "ideal"], rows)


def main() -> None:
    profile = active_profile()
    print(f"Figure 13 (profile={profile.name}): Q11-Median scalability")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig13", __doc__.strip().splitlines()[0], run, render)
