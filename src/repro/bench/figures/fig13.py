"""Figure 13: multi-node scalability of Q11-Median on FlowKV.

Paper shape: maximum throughput scales linearly from one to eight worker
machines — store instances are per physical operator with no shared
state, so nothing serializes.

Unlike the original single-machine sweep, each cell now runs on a real
:class:`~repro.cluster.ClusterTopology` of ``workers`` simulated nodes:
cross-node shuffle hops pay the network, job time respects per-node core
budgets (not a bare max over instances), and the table reports mean
per-node utilization plus total network traffic alongside the speedup.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table
from repro.cluster import ClusterTopology

WORKER_COUNTS = (1, 2, 4, 8)


def run(
    profile: ScaleProfile,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    window_size: float | None = None,
) -> list[RunRecord]:
    from dataclasses import replace

    size = window_size or profile.window_sizes[-1]
    records = []
    for workers in worker_counts:
        # Weak scaling: workers x input rate and workers x key population,
        # so each instance sees the same per-key stream (a max-throughput
        # measurement at constant per-worker load).  One simulated node
        # per worker machine; instances are spread round-robin, so each
        # node hosts exactly the instances of "its" worker.
        scaled = replace(
            profile,
            workers=workers,
            active_people=profile.active_people * workers,
            active_auctions=profile.active_auctions * workers,
        )
        record = run_query(
            scaled, "q11-median", "flowkv", size,
            events_per_second=profile.events_per_second * workers,
            cluster=ClusterTopology.uniform(workers),
        )
        record.operator_stats.setdefault("_sweep", {})["workers"] = workers
        records.append(record)
    return records


def render(records: list[RunRecord]) -> str:
    base = records[0].throughput if records and records[0].ok else 0.0
    rows = []
    for record in records:
        workers = record.operator_stats.get("_sweep", {}).get("workers", 0)
        speedup = record.throughput / base if base else 0.0
        utils = [
            stats.get("utilization", 0.0) for stats in record.node_stats.values()
        ]
        mean_util = sum(utils) / len(utils) if utils else 0.0
        rows.append(
            [
                f"{workers}",
                f"{record.throughput:,.0f}",
                f"{speedup:.2f}x",
                f"{workers}.00x",
                f"{mean_util:.0%}",
                f"{record.network_bytes / 1024:.0f} KiB",
            ]
        )
    return format_table(
        ["nodes", "throughput", "speedup", "ideal", "node util", "network"], rows
    )


def main() -> None:
    profile = active_profile()
    print(f"Figure 13 (profile={profile.name}): Q11-Median scalability")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig13", __doc__.strip().splitlines()[0], run, render)
