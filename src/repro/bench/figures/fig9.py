"""Figure 9: P95 latency vs tuple rate for Q7, Q11-Median and Q11.

Paper shape: FlowKV sustains the highest rates with low tail latency;
Faster fails on append patterns at every rate and on RMW beyond a rate
knee; the in-memory store fails early from memory pressure; RocksDB's
latency grows with rate.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_latency
from repro.bench.profiles import BACKEND_NAMES, ScaleProfile, active_profile
from repro.bench.report import format_table, latency_rows

QUERIES = ("q7", "q11-median", "q11")


def run(
    profile: ScaleProfile,
    queries: tuple[str, ...] = QUERIES,
    backends: tuple[str, ...] = BACKEND_NAMES,
) -> list[RunRecord]:
    records: list[RunRecord] = []
    for query in queries:
        records.extend(run_latency(profile, query, list(backends)))
    return records


def render(records: list[RunRecord]) -> str:
    return format_table(["query", "backend", "rate", "p95_latency"], latency_rows(records))


def main() -> None:
    profile = active_profile()
    print(
        f"Figure 9 (profile={profile.name}): P95 latency, window="
        f"{profile.latency_window:g}s"
    )
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig9", __doc__.strip().splitlines()[0], run, render)
