"""Figure 4: execution-time breakdown of Flink on RocksDB and Faster.

Paper shape: Q7/Q11-Median (append patterns) — Faster does not finish;
RocksDB spends store CPU comparable to query computation, much of it in
compaction.  Q11 (RMW) — Faster beats RocksDB but still pays heavy store
CPU (synchronization), RocksDB pays sorted-search overhead.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import (
    breakdown_rows,
    format_table,
    lsm_counter_columns,
    prefetch_counter_columns,
)

QUERIES = ("q7", "q11-median", "q11")
BACKENDS = ("rocksdb", "faster")


def run(profile: ScaleProfile, window_size: float | None = None) -> list[RunRecord]:
    size = window_size or profile.window_sizes[-1]
    records: list[RunRecord] = []
    for query in QUERIES:
        reference = run_query(profile, query, "flowkv", size)
        timeout = max(
            profile.timeout_floor,
            profile.timeout_multiplier * max(reference.job_seconds, 1e-9),
        )
        for backend in BACKENDS:
            records.append(run_query(profile, query, backend, size, sim_timeout=timeout))
        records.append(reference)  # shown for reference alongside the baselines
    return records


def render(records: list[RunRecord]) -> str:
    headers = ["query", "backend", "total_s", "computation", "store_write",
               "store_read", "compaction", "io_wait", "cache_hit", "bloom_neg",
               "pf_hit", "pf_late", "pf_waste"]
    rows = breakdown_rows(records)
    for row, record in zip(rows, records):
        row.extend(lsm_counter_columns(record))
        # Fig4 runs prefetch-off (depth 0): these render "-" here and
        # light up in figures that sweep the depth (fig_prefetch).
        row.extend(prefetch_counter_columns(record))
    return format_table(headers, rows)


def main() -> None:
    profile = active_profile()
    print(f"Figure 4 (profile={profile.name}): execution-time breakdown")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig4", __doc__.strip().splitlines()[0], run, render)
