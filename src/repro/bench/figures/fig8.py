"""Figure 8: throughput of the eight NEXMark queries.

Eight queries x three window sizes x four backends.  Paper shape:

* FlowKV beats RocksDB up to ~4.1x and Faster up to ~3.5x,
* Faster DNFs on append patterns (Q7, Q7-Session, Q8, Q11-Median,
  Q5-Append second stage),
* the in-memory store OOMs on large append state (crossed bars),
* the gain grows with state size and with pattern complexity (Q5*).
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_matrix
from repro.bench.profiles import BACKEND_NAMES, ScaleProfile, active_profile
from repro.bench.report import format_table, throughput_rows

QUERIES = ("q5", "q5-append", "q7", "q7-session", "q8", "q11", "q11-median", "q12")


def run(
    profile: ScaleProfile,
    queries: tuple[str, ...] = QUERIES,
    backends: tuple[str, ...] = BACKEND_NAMES,
) -> list[RunRecord]:
    return run_matrix(profile, list(queries), list(backends))


def render(records: list[RunRecord], profile: ScaleProfile,
           queries: tuple[str, ...] = QUERIES,
           backends: tuple[str, ...] = BACKEND_NAMES) -> str:
    headers = ["query", "window"] + list(backends) + ["flowkv_gain"]
    rows = throughput_rows(
        records, list(queries), list(backends),
        list(profile.window_sizes), list(profile.paper_window_labels),
    )
    return format_table(headers, rows)


def main() -> None:
    profile = active_profile()
    print(f"Figure 8 (profile={profile.name}): throughput (records/sim-second)")
    records = run(profile)
    print(render(records, profile))
    print("\nflowkv_gain = best rival persistent store time / FlowKV time")


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure(
    "fig8", __doc__.strip().splitlines()[0], run, render, render_needs_profile=True
)
