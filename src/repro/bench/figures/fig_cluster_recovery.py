"""Cluster recovery: peer-seeded node restore cost versus state size.

Not a paper figure — the cluster extension of the recovery evaluation
(§8): each run spreads Q11-Median over a four-node cluster, checkpoints
every quarter of the input into replica-placed node-local storage, and
then loses an entire node (all its instances plus its local checkpoint
replicas) at ~70% of the input.  Recovery restores the dead node's
key-groups from shards fetched over the network from surviving peers
and replays.  Swept over state size (window) for FlowKV versus a
RocksDB-style LSM.  Reported per cell: checkpoints taken, checkpoint
files lost with the node, the restored epoch, the simulated downtime
(restore + replayed work), total bytes moved over the network, and
whether the recovered output digest matches an uninterrupted cluster
run (the exactly-once check — always ``yes``).
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table
from repro.cluster import ClusterTopology
from repro.faults import FaultPlan

BACKENDS = ("flowkv", "rocksdb")
QUERY = "q11-median"
FAULT_SEED = 7
N_NODES = 4
DEAD_NODE = 2


def run(
    profile: ScaleProfile,
    backends: tuple[str, ...] = BACKENDS,
    window_sizes: tuple[float, ...] | None = None,
) -> list[RunRecord]:
    from dataclasses import replace

    sizes = tuple(window_sizes or profile.window_sizes)
    # One instance per node: parallelism = cluster size, a single worker.
    clustered = replace(profile, workers=1, parallelism=N_NODES)
    records = []
    for backend in backends:
        for size in sizes:
            # Uninterrupted cluster baseline: the digest reference, and
            # it tells us the input length so kill and cut points scale.
            baseline = run_query(
                clustered, QUERY, backend, size,
                cluster=ClusterTopology.uniform(N_NODES),
            )
            interval = max(1, baseline.input_records // 4)
            kill_at = max(2, (7 * baseline.input_records) // 10)
            plan = FaultPlan(seed=FAULT_SEED).kill_node(DEAD_NODE, on_hit=kill_at)
            recovered = run_query(
                clustered, QUERY, backend, size,
                cluster=ClusterTopology.uniform(N_NODES),
                fault_plan=plan, checkpoint_interval=interval,
            )
            sweep = recovered.operator_stats.setdefault("_sweep", {})
            sweep["baseline_hash"] = baseline.output_hash
            sweep["baseline_net_bytes"] = baseline.network_bytes
            sweep["kill_at"] = kill_at
            sweep["dead_node"] = DEAD_NODE
            records.append(recovered)
    return records


def render(records: list[RunRecord]) -> str:
    rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        exact = record.output_hash == sweep.get("baseline_hash")
        restored = [e for e in record.recoveries if e.kind == "restore"]
        node_failures = [e for e in record.recoveries if e.kind == "node_failure"]
        # Network traffic caused by the failure itself: peer-seeded shard
        # fetches + replayed shuffle, over what the clean run moved.
        recovery_net = record.network_bytes - sweep.get("baseline_net_bytes", 0)
        rows.append([
            record.backend,
            f"{record.window_size:g}",
            f"{record.checkpoints}",
            f"{len(node_failures)}",
            f"@{restored[0].at_record}" if restored else "fresh",
            f"{record.restore_seconds * 1e3:.3f}",
            f"{record.recovery_seconds * 1e3:.3f}",
            f"{recovery_net / 1024:.0f} KiB",
            "yes" if exact else "NO",
        ])
    return format_table(
        ["backend", "window", "checkpoints", "node kills", "restored",
         "restore ms", "recovery cpu ms", "recovery net", "exactly-once"],
        rows,
    )


def main() -> None:
    records = run(active_profile())
    print(render(records))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure(
    "fig_cluster_recovery", __doc__.strip().splitlines()[0], run, render
)
