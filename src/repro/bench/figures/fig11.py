"""Figure 11: effect of the predictive-batch-read ratio (AUR queries).

Paper shape: ratio 0 (prefetch disabled) reaches only ~38-40% of the best
throughput; throughput plateaus from ratio ~0.02 onward, where the hit
ratio is ~0.93; larger ratios fetch low-probability windows and stop
helping (hit ratio declines).
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table

QUERIES = ("q11-median", "q7-session")
RATIOS = (0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2)

# Scale note: the paper's store holds millions of live windows, so
# N = ratio x windows amortizes the index scan to nothing from ratio 0.02
# onward (the plateau).  At laptop scale the live-window population is
# ~4 orders of magnitude smaller, which shifts the plateau to higher
# ratios; the hit-ratio anchor (~0.93 at ratio 0.02) is scale-free and
# reproduces exactly.


def sweep_profile(profile: ScaleProfile) -> tuple[ScaleProfile, float]:
    """A key-rich variant of the profile for the prefetch sweep.

    The sweep needs many concurrently live (key, window) states so that
    ``N = ratio x windows`` differentiates the ratios (the paper's store
    holds millions of windows).  We widen the bidder population and set
    the session gap to ~2.3x the per-bidder inter-arrival time, giving
    ~10-tuple sessions that outlive the write buffer.
    """
    stressed = replace(profile, active_people=profile.active_people * 5)
    per_bidder_rate = 0.92 * stressed.events_per_second / stressed.active_people
    gap = 2.3 / per_bidder_rate
    return stressed, gap


def run(
    profile: ScaleProfile,
    queries: tuple[str, ...] = QUERIES,
    ratios: tuple[float, ...] = RATIOS,
    window_size: float | None = None,
) -> list[RunRecord]:
    size = window_size or profile.window_sizes[-1]
    stressed, gap = sweep_profile(profile)
    records = []
    for query in queries:
        for ratio in ratios:
            record = run_query(
                stressed, query, "flowkv", size,
                flowkv_overrides={"read_batch_ratio": ratio},
                session_gap=gap,
            )
            record.operator_stats.setdefault("_sweep", {})["ratio"] = ratio
            records.append(record)
    return records


def render(records: list[RunRecord]) -> str:
    rows = []
    best: dict[str, float] = {}
    for record in records:
        best[record.query] = max(best.get(record.query, 0.0), record.throughput)
    for record in records:
        ratio = record.operator_stats.get("_sweep", {}).get("ratio", 0.0)
        loads = record.stat_sum("prefetch_loads")
        hits = record.stat_sum("prefetch_hits")
        hit_ratio = hits / loads if loads else 0.0
        rows.append(
            [
                record.query,
                f"{ratio:g}",
                f"{record.throughput:,.0f}",
                f"{record.throughput / best[record.query] * 100:.0f}%",
                f"{hit_ratio:.2f}",
            ]
        )
    return format_table(
        ["query", "read_batch_ratio", "throughput", "vs_best", "hit_ratio"], rows
    )


def main() -> None:
    profile = active_profile()
    print(f"Figure 11 (profile={profile.name}): predictive batch read sweep")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig11", __doc__.strip().splitlines()[0], run, render)
