"""Recovery: crash-restore-replay cost versus state size on Q11-Median.

Not a paper figure — an extension of the evaluation to the fault
tolerance path (§8): each run checkpoints every quarter of the input,
is killed by an injected crash at ~70% of the input, restores its
latest complete checkpoint and replays.  Swept over state size (window)
for FlowKV versus a RocksDB-style LSM.  Reported per cell: checkpoints
taken, the end-of-job store footprint (disk bytes), the simulated
restore time, total simulated CPU charged to the ``recovery``
ledger category (checksums, checkpoint I/O, retry backoff), and whether
the recovered output digest matches the uninterrupted run (the
exactly-once check — always ``yes``).
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table
from repro.faults import CRASH_RUNTIME_RECORD, FaultPlan

BACKENDS = ("flowkv", "rocksdb")
QUERY = "q11-median"
FAULT_SEED = 7


def run(
    profile: ScaleProfile,
    backends: tuple[str, ...] = BACKENDS,
    window_sizes: tuple[float, ...] | None = None,
) -> list[RunRecord]:
    sizes = tuple(window_sizes or profile.window_sizes)
    records = []
    for backend in backends:
        for size in sizes:
            # Uninterrupted baseline: the digest reference, and it tells
            # us the input length so crash and cut points can scale.
            baseline = run_query(profile, QUERY, backend, size)
            interval = max(1, baseline.input_records // 4)
            crash_at = max(2, (7 * baseline.input_records) // 10)
            plan = FaultPlan(seed=FAULT_SEED).crash(
                CRASH_RUNTIME_RECORD, on_hit=crash_at
            )
            recovered = run_query(
                profile, QUERY, backend, size,
                fault_plan=plan, checkpoint_interval=interval,
            )
            sweep = recovered.operator_stats.setdefault("_sweep", {})
            sweep["baseline_hash"] = baseline.output_hash
            sweep["crash_at"] = crash_at
            records.append(recovered)
    return records


def render(records: list[RunRecord]) -> str:
    rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        exact = record.output_hash == sweep.get("baseline_hash")
        restored = [e for e in record.recoveries if e.kind == "restore"]
        rows.append([
            record.backend,
            f"{record.window_size:g}",
            f"{record.checkpoints}",
            f"{record.stat_sum('disk_bytes') / 1024:.0f} KiB",
            f"@{restored[0].at_record}" if restored else "fresh",
            f"{record.restore_seconds * 1e3:.3f}",
            f"{record.recovery_seconds * 1e3:.3f}",
            "yes" if exact else "NO",
        ])
    return format_table(
        ["backend", "window", "checkpoints", "state on disk", "restored",
         "restore ms", "recovery cpu ms", "exactly-once"],
        rows,
    )


def main() -> None:
    records = run(active_profile())
    print(render(records))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig_recovery", __doc__.strip().splitlines()[0], run, render)
