"""Failover: hot-standby promotion versus checkpoint restore downtime.

Not a paper figure — the changelog-replication extension of the cluster
recovery evaluation: each run spreads Q11-Median over a four-node
cluster, checkpoints every quarter of the input, and tails every
epoch's semantic changelog to a warm standby on the consecutive peer
node.  At ~70% of the input an entire node dies.  The figure compares
the two recovery lanes on identical fault schedules: checkpoint restore
(fetch shards from surviving peers, replay from the rewind point)
versus standby promotion (replay only the changelog tail past the last
applied offset into the already-warm copy).  Swept over state size
(window) for FlowKV versus a RocksDB-style LSM.  Reported per cell:
downtime for both lanes, the changelog records replayed at promotion,
replication network overhead over the clean run, and whether both
recovered digests match an uninterrupted cluster run (the exactly-once
check — always ``yes``).  Promotion downtime must sit strictly below
restore downtime in every cell: the replica is warm, so failover pays
only the tail, never a full state reload.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table
from repro.cluster import ClusterTopology
from repro.faults import FaultPlan

BACKENDS = ("flowkv", "rocksdb")
QUERY = "q11-median"
FAULT_SEED = 7
N_NODES = 4
DEAD_NODE = 2


def run(
    profile: ScaleProfile,
    backends: tuple[str, ...] = BACKENDS,
    window_sizes: tuple[float, ...] | None = None,
) -> list[RunRecord]:
    from dataclasses import replace

    sizes = tuple(window_sizes or profile.window_sizes)
    clustered = replace(profile, workers=1, parallelism=N_NODES)
    records = []
    for backend in backends:
        for size in sizes:
            baseline = run_query(
                clustered, QUERY, backend, size,
                cluster=ClusterTopology.uniform(N_NODES),
            )
            interval = max(1, baseline.input_records // 4)
            kill_at = max(2, (7 * baseline.input_records) // 10)
            # Fault plans are stateful once built: each lane needs its
            # own (identical) plan or the second kill never fires.
            restore = run_query(
                clustered, QUERY, backend, size,
                cluster=ClusterTopology.uniform(N_NODES),
                fault_plan=FaultPlan(seed=FAULT_SEED).kill_node(
                    DEAD_NODE, on_hit=kill_at),
                checkpoint_interval=interval,
            )
            promoted = run_query(
                clustered, QUERY, backend, size,
                cluster=ClusterTopology.uniform(N_NODES),
                fault_plan=FaultPlan(seed=FAULT_SEED).kill_node(
                    DEAD_NODE, on_hit=kill_at),
                checkpoint_interval=interval,
                recovery_mode="standby",
            )
            sweep = promoted.operator_stats.setdefault("_sweep", {})
            sweep["baseline_hash"] = baseline.output_hash
            sweep["baseline_net_bytes"] = baseline.network_bytes
            sweep["restore_hash"] = restore.output_hash
            sweep["restore_downtime"] = restore.recovery_downtime
            sweep["restore_net_bytes"] = restore.network_bytes
            sweep["kill_at"] = kill_at
            sweep["dead_node"] = DEAD_NODE
            records.append(promoted)
    return records


def render(records: list[RunRecord]) -> str:
    rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        exact = (
            record.output_hash == sweep.get("baseline_hash")
            and sweep.get("restore_hash") == sweep.get("baseline_hash")
        )
        promotions = [e for e in record.recoveries if e.kind == "promote"]
        replayed = promotions[0].detail if promotions else "degraded"
        restore_ms = sweep.get("restore_downtime", 0.0) * 1e3
        promote_ms = record.recovery_downtime * 1e3
        # Replication overhead: segment + base shipping over the clean
        # run's shuffle traffic (the price paid while nothing fails).
        repl_net = record.network_bytes - sweep.get("baseline_net_bytes", 0)
        rows.append([
            record.backend,
            f"{record.window_size:g}",
            f"{record.checkpoints}",
            f"{restore_ms:.3f}",
            f"{promote_ms:.3f}",
            "yes" if promote_ms < restore_ms else "NO",
            replayed,
            f"{repl_net / 1024:.0f} KiB",
            "yes" if exact else "NO",
        ])
    return format_table(
        ["backend", "window", "checkpoints", "restore ms", "promote ms",
         "faster", "promotion", "replication net", "exactly-once"],
        rows,
    )


def main() -> None:
    records = run(active_profile())
    print(render(records))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure(
    "fig_failover", __doc__.strip().splitlines()[0], run, render
)
