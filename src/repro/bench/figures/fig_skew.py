"""Skew: hot-key-group splitting vs naive placement under a Zipf workload.

Not a paper figure — an extension of the evaluation to skew handling.
The generator draws Q7 bidders from a Zipf(1.5) distribution, so a
couple of key groups carry most of the keyed work and, under the
contiguous owner table, land on the same instance (and node).  Per
backend, two open-loop latency runs on a two-node cluster: **naive**
(static contiguous placement) and **balanced** (a
:class:`~repro.rescale.skew.SkewController` watching the always-on
per-group load accounting and re-placing hot groups through the live
migration machinery, parallelism unchanged).  The headline columns are
P95 latency and the max per-node keyed utilization — keyed busy seconds
placed on the node's cores over the arrival horizon — which the split
must strictly reduce.  Both runs must be digest-equal: re-placing
groups never changes results.

The whole cell — rate, duration, window, per-backend cost scale and
store budgets — is pinned as the scenario, so the table is identical
under every profile: the naive hot instance queues visibly on each
backend without tripping the overload cutoff or the heap.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table
from repro.cluster import ClusterTopology
from repro.rescale import SkewController

BACKENDS = ("flowkv", "rocksdb", "faster", "memory")
QUERY = "q7"  # keyed by bidder: bidder skew maps directly onto key groups
BIDDER_ZIPF = 1.5
PARALLELISM = 4
NODES = 2
# The workload regime is part of the scenario, not the profile: the
# naive hot instance must queue visibly yet stay under the overload
# cutoff on every backend, which holds at this (rate, duration, window,
# cost-scale) operating point regardless of the active profile's
# volume knobs.
RATE = 30.0
DURATION = 240.0
WINDOW = 20.0
# Simulated cost scale per backend: fast backends (FlowKV's batched
# reads, the in-heap store) need a higher scale before skew hurts at
# all; the disk baselines queue much sooner.
COST_SCALE = {
    "flowkv": 24_000.0,
    "rocksdb": 12_000.0,
    "faster": 12_000.0,
    "memory": 120_000.0,
}


def controller() -> SkewController:
    """The figure's split policy (shared with the docs' quick-start)."""
    return SkewController(imbalance_threshold=1.5, patience=3, cooldown=10)


def _cell_profile(profile: ScaleProfile, backend: str) -> ScaleProfile:
    # Store budgets are pinned too (sized so no backend trips the
    # overload cutoff or OOMs on its own — the tiny LSM/Faster budgets
    # thrash at the raised cost scale, and the small profiles' heap
    # deliberately OOMs the naive in-heap backend, which is fig4's
    # point, not this figure's): the whole cell is the scenario, and
    # the table comes out identical under every profile.
    return replace(
        profile,
        latency_cost_scale=COST_SCALE[backend],
        latency_duration=DURATION,
        flowkv_write_buffer=32 << 10,
        flowkv_segment_bytes=256 << 10,
        flowkv_prefetch_bytes=512 << 10,
        lsm_write_buffer=32 << 10,
        lsm_block_cache=256 << 10,
        lsm_level1_bytes=512 << 10,
        lsm_max_file_bytes=128 << 10,
        faster_memory_log=512 << 10,
        heap_total_bytes=8 << 20,
    )


def _max_node_util(record: RunRecord, horizon: float) -> float:
    """Max over nodes of keyed work placed there per core-second."""
    if not record.node_stats:
        return 0.0
    return max(
        stats["keyed_busy_seconds"] / (stats["cores"] * horizon)
        for stats in record.node_stats.values()
    )


def run(
    profile: ScaleProfile, backends: tuple[str, ...] = BACKENDS
) -> list[RunRecord]:
    records = []
    for backend in backends:
        cell = _cell_profile(profile, backend)
        kwargs = dict(
            query=QUERY,
            backend=backend,
            window_size=WINDOW,
            arrival_rate=RATE,
            events_per_second=RATE,
            duration=cell.latency_duration,
            parallelism=PARALLELISM,
            cluster=ClusterTopology.uniform(NODES),
            generator_overrides={"bidder_zipf": BIDDER_ZIPF},
        )
        naive = run_query(cell, **kwargs)
        balanced = run_query(cell, rescale_policy=controller(), **kwargs)
        sweep = balanced.operator_stats.setdefault("_sweep", {})
        sweep["zipf"] = BIDDER_ZIPF
        sweep["horizon"] = cell.latency_duration
        sweep["naive_p95"] = naive.p95_latency
        sweep["naive_hash"] = naive.output_hash
        sweep["naive_ok"] = naive.ok
        sweep["naive_max_node_util"] = _max_node_util(naive, cell.latency_duration)
        sweep["balanced_max_node_util"] = _max_node_util(
            balanced, cell.latency_duration
        )
        records.append(balanced)
    return records


def render(records: list[RunRecord]) -> str:
    rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        naive_p95 = sweep.get("naive_p95") or 0.0
        p95 = record.p95_latency or 0.0
        naive_util = sweep.get("naive_max_node_util", 0.0)
        util = sweep.get("balanced_max_node_util", 0.0)
        splits = [e for e in record.rescales if e.reason == "skew-split"]
        hot = sorted({g for e in splits for g in e.hot_groups})
        digests_ok = (
            record.ok
            and sweep.get("naive_ok", False)
            and record.output_hash == sweep.get("naive_hash")
        )
        rows.append([
            record.query,
            record.backend,
            f"{sweep.get('zipf', 0.0):g}",
            f"{len(splits)}",
            ",".join(str(g) for g in hot) if hot else "-",
            f"{sum(e.moved_groups for e in splits)}",
            f"{naive_p95 * 1e3:.1f}",
            f"{p95 * 1e3:.1f}",
            f"{naive_p95 / p95:.2f}x" if p95 > 0 else "-",
            f"{naive_util:.4f}",
            f"{util:.4f}",
            "yes" if util < naive_util and p95 < naive_p95 else "NO",
            "=" if digests_ok else "DIVERGED",
        ])
    return format_table(
        ["query", "backend", "zipf", "splits", "hot groups", "moved",
         "naive p95 ms", "split p95 ms", "speedup",
         "naive max util", "split max util", "improved", "digest"],
        rows,
    )


def main() -> None:
    profile = active_profile()
    print(f"Skew figure (profile={profile.name}): {QUERY} Zipf({BIDDER_ZIPF}) "
          f"bidders, naive vs skew-split placement")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig_skew", __doc__.strip().splitlines()[0], run, render)
