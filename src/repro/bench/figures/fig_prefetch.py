"""Prefetch sweep: io_wait and P95 latency vs prefetch depth, disk backends.

Not a paper figure — it validates the semantic prefetching subsystem's
contract on the two disk backends.  Window operators hint upcoming
trigger reads (and, on the hash store, upcoming RCU append reads) so the
stores overlap state I/O with compute; per (query, backend, depth) cell
the sweep reports:

* **io_wait seconds** and its **residual** prefetch-wait share — total
  io_wait must *drop* as depth grows (the overlap is the whole point),
* the hit / late / wasted prefetch counters,
* a digest check against the depth-0 run of the same cell — hints are
  advisory and must never change job output,
* P95 processing latency at the profile's first open-loop rate, depth
  off vs on.

A ``DIVERGED`` digest or an io_wait *increase* in any prefetching cell
is a correctness bug in the hint or charging path, not a perf tradeoff.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table

BACKENDS = ("rocksdb", "faster")
QUERIES = ("q7", "q8")
DEPTHS = (0, 2, 8)
BATCH_RECORDS = 16  # hints for a whole batch overlap its earlier records


def run(
    profile: ScaleProfile,
    backends: tuple[str, ...] = BACKENDS,
    queries: tuple[str, ...] = QUERIES,
    depths: tuple[int, ...] = DEPTHS,
) -> list[RunRecord]:
    size = profile.window_sizes[0]
    records: list[RunRecord] = []
    for query in queries:
        for backend in backends:
            baseline_hash = None
            baseline_io_wait = 0.0
            for depth in depths:
                record = run_query(
                    profile, query, backend, size,
                    batch_records=BATCH_RECORDS, prefetch_depth=depth,
                )
                metrics = record.metrics
                io_wait = metrics.io_wait_seconds if metrics else 0.0
                counters = metrics.counters if metrics else {}
                if depth == depths[0]:
                    baseline_hash = record.output_hash
                    baseline_io_wait = io_wait
                sweep = record.operator_stats.setdefault("_sweep", {})
                sweep["mode"] = "tput"
                sweep["depth"] = depth
                sweep["io_wait_seconds"] = io_wait
                sweep["residual_seconds"] = (
                    metrics.prefetch_wait_seconds if metrics else 0.0
                )
                sweep["hits"] = counters.get("prefetch_hits", 0)
                sweep["late"] = counters.get("prefetch_late", 0)
                sweep["wasted"] = counters.get("prefetch_wasted", 0)
                sweep["digest_ok"] = bool(
                    record.ok and record.output_hash == baseline_hash
                )
                # Strict drop is the acceptance bar for every on-cell
                # that has io_wait to hide; a cell whose working set is
                # fully resident (zero baseline io_wait) must stay zero.
                sweep["io_wait_ok"] = bool(
                    record.ok
                    and (
                        depth == depths[0]
                        or io_wait < baseline_io_wait
                        or (baseline_io_wait == 0.0 and io_wait == 0.0)
                    )
                )
                records.append(record)
    # P95 latency, prefetch off vs on, at the profile's highest open-loop
    # rate (the lower rates have no queueing and P95 rounds to zero).
    rate = profile.latency_rates[-1]
    for backend in backends:
        for depth in (0, max(depths)):
            record = run_query(
                profile, "q7", backend, profile.latency_window,
                arrival_rate=rate, events_per_second=rate,
                duration=profile.latency_duration, prefetch_depth=depth,
            )
            sweep = record.operator_stats.setdefault("_sweep", {})
            sweep["mode"] = "latency"
            sweep["depth"] = depth
            sweep["rate"] = rate
            records.append(record)
    return records


def render(records: list[RunRecord]) -> str:
    tput_rows = []
    latency_rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        if sweep.get("mode") == "latency":
            p95 = record.p95_latency
            latency_rows.append([
                record.query,
                record.backend,
                f"{sweep.get('depth', 0)}",
                f"{sweep.get('rate', 0.0):.0f}",
                f"{p95:.6f}" if p95 is not None else "-",
                "ok" if record.ok else record.failure,
            ])
            continue
        ok = sweep.get("digest_ok") and sweep.get("io_wait_ok")
        tput_rows.append([
            record.query,
            record.backend,
            f"{sweep.get('depth', 0)}",
            f"{sweep.get('io_wait_seconds', 0.0):.6f}",
            f"{sweep.get('residual_seconds', 0.0):.6f}",
            f"{sweep.get('hits', 0)}",
            f"{sweep.get('late', 0)}",
            f"{sweep.get('wasted', 0)}",
            ("=" if ok else "DIVERGED") if record.ok else record.failure,
        ])
    parts = [format_table(
        ["query", "backend", "depth", "io_wait s", "residual s",
         "hits", "late", "wasted", "check"],
        tput_rows,
    )]
    if latency_rows:
        parts.append("")
        parts.append(format_table(
            ["query", "backend", "depth", "rate", "p95 s", "status"],
            latency_rows,
        ))
    return "\n".join(parts)


def main() -> None:
    profile = active_profile()
    print(f"Prefetch sweep (profile={profile.name}): "
          f"io_wait must drop with depth; digests must not move")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig_prefetch", __doc__.strip().splitlines()[0], run, render)
