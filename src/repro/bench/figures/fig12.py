"""Figure 12: effect of MSA (maximum space amplification) on AUR queries.

Paper shape: throughput rises with MSA (fewer compactions) and flattens
around MSA = 1.5; disk-space consumption rises with MSA — the compaction
overhead / disk space trade-off of §4.2.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table

QUERIES = ("q11-median", "q7-session")
MSA_VALUES = (1.1, 1.25, 1.5, 2.0, 3.0)


def run(
    profile: ScaleProfile,
    queries: tuple[str, ...] = QUERIES,
    msa_values: tuple[float, ...] = MSA_VALUES,
    window_size: float | None = None,
) -> list[RunRecord]:
    size = window_size or profile.window_sizes[-1]
    records = []
    for query in queries:
        for msa in msa_values:
            record = run_query(
                profile, query, "flowkv", size,
                flowkv_overrides={"max_space_amplification": msa},
            )
            record.operator_stats.setdefault("_sweep", {})["msa"] = msa
            records.append(record)
    return records


def render(records: list[RunRecord]) -> str:
    rows = []
    for record in records:
        msa = record.operator_stats.get("_sweep", {}).get("msa", 0.0)
        rows.append(
            [
                record.query,
                f"{msa:g}",
                f"{record.throughput:,.0f}",
                f"{int(record.stat_sum('compaction_count'))}",
                f"{record.stat_sum('disk_bytes') / 1024:.0f} KiB",
            ]
        )
    return format_table(
        ["query", "msa", "throughput", "compactions", "final_disk"], rows
    )


def main() -> None:
    profile = active_profile()
    print(f"Figure 12 (profile={profile.name}): MSA sweep")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig12", __doc__.strip().splitlines()[0], run, render)
