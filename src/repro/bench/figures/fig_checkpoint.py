"""Checkpoint: incremental per-key-group epochs vs full snapshots on Q11-Median.

Not a paper figure — an extension of the evaluation to incremental
checkpointing (the Flink/RocksDB strategy recast over key-group shards).
Per (backend, window, interval) cell, two checkpointed runs: **full**
(every epoch re-snapshots every store wholesale) versus **incremental**
(each epoch writes only the key-groups dirtied since the previous cut
and references the rest from earlier epochs by CRC; a periodic full cut
bounds the chain).  The headline columns are bytes written per epoch
under both regimes as state size (window) and checkpoint cadence vary,
plus the count of shards *reused* by reference.  A second comparison
rescales mid-run with and without checkpoint seeding: moved key-groups
that are clean since the last cut land from the checkpoint's shards, so
only the delta pays live-transfer bytes.  Every pair must be
digest-equal — incremental restore chains and seeded rescales change
I/O, never answers.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table

BACKENDS = ("flowkv", "rocksdb")
INTERVAL_DIVISORS = (16, 8)
QUERY = "q11-median"
RESCALE_TO = 4


def run(
    profile: ScaleProfile,
    backends: tuple[str, ...] = BACKENDS,
    window_sizes: tuple[float, ...] | None = None,
) -> list[RunRecord]:
    sizes = tuple(window_sizes or profile.window_sizes)
    records = []
    for backend in backends:
        for size in sizes:
            # Uncheckpointed baseline: reference digest + input length,
            # from which the interval sweep and rescale point derive.
            baseline = run_query(profile, QUERY, backend, size)
            n_input = baseline.input_records
            intervals = [profile.watermark_interval]
            intervals += [max(50, n_input // d) for d in INTERVAL_DIVISORS]
            for interval in dict.fromkeys(intervals):
                full = run_query(
                    profile, QUERY, backend, size,
                    checkpoint_interval=interval,
                    incremental_checkpoints=False,
                )
                incr = run_query(
                    profile, QUERY, backend, size,
                    checkpoint_interval=interval,
                )
                sweep = incr.operator_stats.setdefault("_sweep", {})
                sweep["interval"] = interval
                sweep["baseline_hash"] = baseline.output_hash
                sweep["full_hash"] = full.output_hash
                sweep["full_ok"] = full.ok
                sweep["full_bytes_per_epoch"] = full.checkpoint_bytes_per_epoch()
                sweep["full_epochs"] = full.checkpoints
                records.append(incr)
            # Seeded vs drain-everything live rescale under a tight
            # checkpoint cadence (the seed is only as fresh as the last
            # cut, so a recent epoch maximizes clean groups).
            interval = profile.watermark_interval
            schedule = {max(1, n_input // 2): RESCALE_TO}
            drain = run_query(
                profile, QUERY, backend, size,
                checkpoint_interval=interval,
                rescale_schedule=dict(schedule),
                seed_rescale_from_checkpoint=False,
            )
            seeded = run_query(
                profile, QUERY, backend, size,
                checkpoint_interval=interval,
                rescale_schedule=dict(schedule),
            )
            sweep = seeded.operator_stats.setdefault("_sweep", {})
            sweep["interval"] = interval
            sweep["baseline_hash"] = baseline.output_hash
            sweep["rescale_pair"] = True
            sweep["drain_hash"] = drain.output_hash
            sweep["drain_ok"] = drain.ok
            sweep["drain_bytes_moved"] = (
                drain.rescales[0].bytes_moved if drain.rescales else 0
            )
            records.append(seeded)
    return records


def render(records: list[RunRecord]) -> str:
    epoch_rows = []
    rescale_rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        if sweep.get("rescale_pair"):
            event = record.rescales[0] if record.rescales else None
            drain_bytes = sweep.get("drain_bytes_moved", 0)
            live_bytes = event.bytes_moved if event else 0
            digests_ok = (
                record.ok
                and sweep.get("drain_ok", False)
                and record.output_hash == sweep.get("baseline_hash")
                and sweep.get("drain_hash") == sweep.get("baseline_hash")
            )
            rescale_rows.append([
                record.backend,
                f"{record.window_size:g}",
                f"{sweep.get('interval', 0)}",
                f"{drain_bytes:,}",
                f"{live_bytes:,}",
                f"{event.seeded_bytes:,}" if event else "-",
                f"{event.seeded_groups}/{event.moved_groups}" if event else "-",
                f"{drain_bytes / live_bytes:.2f}x" if live_bytes else "-",
                "=" if digests_ok else "DIVERGED",
            ])
            continue
        full_bpe = sweep.get("full_bytes_per_epoch", 0.0)
        incr_bpe = record.checkpoint_bytes_per_epoch()
        delta_bpe = record.checkpoint_bytes_per_epoch(full=False)
        reused = sum(stat.shards_reused for stat in record.checkpoint_stats)
        digests_ok = (
            record.ok
            and sweep.get("full_ok", False)
            and record.output_hash == sweep.get("baseline_hash")
            and sweep.get("full_hash") == sweep.get("baseline_hash")
        )
        epoch_rows.append([
            record.backend,
            f"{record.window_size:g}",
            f"{sweep.get('interval', 0)}",
            f"{record.checkpoints}",
            f"{full_bpe:,.0f}",
            f"{incr_bpe:,.0f}",
            f"{delta_bpe:,.0f}",
            f"{full_bpe / incr_bpe:.2f}x" if incr_bpe else "-",
            f"{reused}",
            "=" if digests_ok else "DIVERGED",
        ])
    epochs = format_table(
        ["backend", "window", "interval", "epochs", "full B/epoch",
         "incr B/epoch", "delta B/epoch", "ratio", "shards reused", "digest"],
        epoch_rows,
    )
    rescales = format_table(
        ["backend", "window", "interval", "drain B moved", "seeded B moved",
         "B seeded", "groups seeded", "reduction", "digest"],
        rescale_rows,
    )
    return (
        f"{epochs}\n\n"
        f"checkpoint-seeded live rescale (x{RESCALE_TO}) vs drain-everything:\n"
        f"{rescales}"
    )


def main() -> None:
    profile = active_profile()
    print(f"Checkpoint figure (profile={profile.name}): "
          f"{QUERY} incremental vs full epochs + seeded rescale")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig_checkpoint", __doc__.strip().splitlines()[0], run, render)
