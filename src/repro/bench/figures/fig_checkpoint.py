"""Checkpoint: incremental per-key-group epochs vs full snapshots on Q11-Median.

Not a paper figure — an extension of the evaluation to incremental
checkpointing (the Flink/RocksDB strategy recast over key-group shards).
Per (backend, window, interval) cell, two checkpointed runs: **full**
(every epoch re-snapshots every store wholesale) versus **incremental**
(each epoch writes only the key-groups dirtied since the previous cut
and references the rest from earlier epochs by CRC; a periodic full cut
bounds the chain).  The headline columns are bytes written per epoch
under both regimes as state size (window) and checkpoint cadence vary,
plus the count of shards *reused* by reference.  A second comparison
rescales mid-run with and without checkpoint seeding: moved key-groups
that are clean since the last cut land from the checkpoint's shards, so
only the delta pays live-transfer bytes.  Every pair must be
digest-equal — incremental restore chains and seeded rescales change
I/O, never answers.

A Q8-Interval row extends both comparisons to interval-join state: the
join buffers shard along the same key-groups, and a popularity-skewed
bid stream (a small, drifting hot-auction set) leaves most buffered
bytes in clean groups so delta epochs beat wholesale snapshots.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table

BACKENDS = ("flowkv", "rocksdb")
INTERVAL_DIVISORS = (16, 8)
QUERY = "q11-median"
RESCALE_TO = 4
# Interval-join cell: engine-managed join state, checkpointed through
# the same sharded machinery.  The overrides concentrate bids on a
# small hot-auction set that drifts as auctions expire, so buffered
# bids age into clean key-groups that delta epochs reference by CRC.
JOIN_QUERY = "q8-interval"
JOIN_BACKEND = "flowkv"
JOIN_OVERRIDES = {"active_auctions": 16, "hot_fraction": 0.95}
JOIN_FULL_SNAPSHOT_INTERVAL = 8


def _epoch_pair(
    profile: ScaleProfile, query: str, backend: str, size: float,
    interval: int, baseline_hash: str | None,
    generator_overrides: dict | None = None,
    full_snapshot_interval: int | None = None,
) -> RunRecord:
    """One full-vs-incremental epochs comparison at a given cadence."""
    full = run_query(
        profile, query, backend, size,
        checkpoint_interval=interval,
        incremental_checkpoints=False,
        generator_overrides=generator_overrides,
    )
    incr = run_query(
        profile, query, backend, size,
        checkpoint_interval=interval,
        full_snapshot_interval=full_snapshot_interval,
        generator_overrides=generator_overrides,
    )
    sweep = incr.operator_stats.setdefault("_sweep", {})
    sweep["interval"] = interval
    sweep["baseline_hash"] = baseline_hash
    sweep["full_hash"] = full.output_hash
    sweep["full_ok"] = full.ok
    sweep["full_bytes_per_epoch"] = full.checkpoint_bytes_per_epoch()
    sweep["full_epochs"] = full.checkpoints
    return incr


def _rescale_pair(
    profile: ScaleProfile, query: str, backend: str, size: float,
    interval: int, n_input: int, baseline_hash: str | None,
    generator_overrides: dict | None = None,
) -> RunRecord:
    """Seeded vs drain-everything live rescale under a tight checkpoint
    cadence (the seed is only as fresh as the last cut, so a recent
    epoch maximizes clean groups)."""
    schedule = {max(1, n_input // 2): RESCALE_TO}
    drain = run_query(
        profile, query, backend, size,
        checkpoint_interval=interval,
        rescale_schedule=dict(schedule),
        seed_rescale_from_checkpoint=False,
        generator_overrides=generator_overrides,
    )
    seeded = run_query(
        profile, query, backend, size,
        checkpoint_interval=interval,
        rescale_schedule=dict(schedule),
        generator_overrides=generator_overrides,
    )
    sweep = seeded.operator_stats.setdefault("_sweep", {})
    sweep["interval"] = interval
    sweep["baseline_hash"] = baseline_hash
    sweep["rescale_pair"] = True
    sweep["drain_hash"] = drain.output_hash
    sweep["drain_ok"] = drain.ok
    sweep["drain_bytes_moved"] = (
        drain.rescales[0].bytes_moved if drain.rescales else 0
    )
    return seeded


def run(
    profile: ScaleProfile,
    backends: tuple[str, ...] = BACKENDS,
    window_sizes: tuple[float, ...] | None = None,
) -> list[RunRecord]:
    sizes = tuple(window_sizes or profile.window_sizes)
    records = []
    for backend in backends:
        for size in sizes:
            # Uncheckpointed baseline: reference digest + input length,
            # from which the interval sweep and rescale point derive.
            baseline = run_query(profile, QUERY, backend, size)
            n_input = baseline.input_records
            intervals = [profile.watermark_interval]
            intervals += [max(50, n_input // d) for d in INTERVAL_DIVISORS]
            for interval in dict.fromkeys(intervals):
                records.append(_epoch_pair(
                    profile, QUERY, backend, size, interval,
                    baseline.output_hash,
                ))
            records.append(_rescale_pair(
                profile, QUERY, backend, size, profile.watermark_interval,
                n_input, baseline.output_hash,
            ))
    # Interval-join cell at the largest window (biggest join buffers).
    size = max(sizes)
    join_base = run_query(
        profile, JOIN_QUERY, JOIN_BACKEND, size,
        generator_overrides=JOIN_OVERRIDES,
    )
    records.append(_epoch_pair(
        profile, JOIN_QUERY, JOIN_BACKEND, size, profile.watermark_interval,
        join_base.output_hash, generator_overrides=JOIN_OVERRIDES,
        full_snapshot_interval=JOIN_FULL_SNAPSHOT_INTERVAL,
    ))
    records.append(_rescale_pair(
        profile, JOIN_QUERY, JOIN_BACKEND, size, profile.watermark_interval,
        join_base.input_records, join_base.output_hash,
        generator_overrides=JOIN_OVERRIDES,
    ))
    return records


def render(records: list[RunRecord]) -> str:
    epoch_rows = []
    rescale_rows = []
    for record in records:
        sweep = record.operator_stats.get("_sweep", {})
        if sweep.get("rescale_pair"):
            event = record.rescales[0] if record.rescales else None
            drain_bytes = sweep.get("drain_bytes_moved", 0)
            live_bytes = event.bytes_moved if event else 0
            digests_ok = (
                record.ok
                and sweep.get("drain_ok", False)
                and record.output_hash == sweep.get("baseline_hash")
                and sweep.get("drain_hash") == sweep.get("baseline_hash")
            )
            rescale_rows.append([
                record.query,
                record.backend,
                f"{record.window_size:g}",
                f"{sweep.get('interval', 0)}",
                f"{drain_bytes:,}",
                f"{live_bytes:,}",
                f"{event.seeded_bytes:,}" if event else "-",
                f"{event.seeded_groups}/{event.moved_groups}" if event else "-",
                f"{drain_bytes / live_bytes:.2f}x" if live_bytes else "-",
                "=" if digests_ok else "DIVERGED",
            ])
            continue
        full_bpe = sweep.get("full_bytes_per_epoch", 0.0)
        incr_bpe = record.checkpoint_bytes_per_epoch()
        delta_bpe = record.checkpoint_bytes_per_epoch(full=False)
        reused = sum(stat.shards_reused for stat in record.checkpoint_stats)
        digests_ok = (
            record.ok
            and sweep.get("full_ok", False)
            and record.output_hash == sweep.get("baseline_hash")
            and sweep.get("full_hash") == sweep.get("baseline_hash")
        )
        epoch_rows.append([
            record.query,
            record.backend,
            f"{record.window_size:g}",
            f"{sweep.get('interval', 0)}",
            f"{record.checkpoints}",
            f"{full_bpe:,.0f}",
            f"{incr_bpe:,.0f}",
            f"{delta_bpe:,.0f}",
            f"{full_bpe / incr_bpe:.2f}x" if incr_bpe else "-",
            f"{reused}",
            "=" if digests_ok else "DIVERGED",
        ])
    epochs = format_table(
        ["query", "backend", "window", "interval", "epochs", "full B/epoch",
         "incr B/epoch", "delta B/epoch", "ratio", "shards reused", "digest"],
        epoch_rows,
    )
    rescales = format_table(
        ["query", "backend", "window", "interval", "drain B moved",
         "seeded B moved", "B seeded", "groups seeded", "reduction", "digest"],
        rescale_rows,
    )
    return (
        f"{epochs}\n\n"
        f"checkpoint-seeded live rescale (x{RESCALE_TO}) vs drain-everything:\n"
        f"{rescales}"
    )


def main() -> None:
    profile = active_profile()
    print(f"Checkpoint figure (profile={profile.name}): "
          f"{QUERY} incremental vs full epochs + seeded rescale")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig_checkpoint", __doc__.strip().splitlines()[0], run, render)
