"""One module per paper figure.

Each module exposes ``run(profile)`` / ``render(records)`` / ``main()``
and registers itself with :mod:`repro.bench.registry` at import time —
importing this package populates the registry the CLI resolves names
from.
"""

from repro.bench.figures import (  # noqa: F401 - imported for registration
    fig4,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig_batch,
    fig_checkpoint,
    fig_cluster_recovery,
    fig_failover,
    fig_prefetch,
    fig_recovery,
    fig_rescale,
    fig_skew,
)
