"""One module per paper figure; each exposes ``run(profile)`` and ``main()``."""
