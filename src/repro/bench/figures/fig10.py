"""Figure 10: store CPU time by operation (write / read+delete / compaction).

Paper shape: FlowKV spends 1.75x-10.56x less store CPU than the rival
backends — coarse-grained organization removes compaction for AAR,
predictive batch read removes merge-heavy reads for AUR, and the RMW
store avoids Faster's synchronization.
"""

from __future__ import annotations

from repro.bench.harness import RunRecord, run_query
from repro.bench.profiles import ScaleProfile, active_profile
from repro.bench.report import format_table, lsm_counter_columns

QUERIES = ("q7", "q11-median", "q11")
BACKENDS = ("flowkv", "rocksdb", "faster")


def run(profile: ScaleProfile, window_size: float | None = None) -> list[RunRecord]:
    size = window_size or profile.window_sizes[-1]
    records = []
    for query in QUERIES:
        reference = run_query(profile, query, "flowkv", size)
        timeout = max(
            profile.timeout_floor,
            profile.timeout_multiplier * max(reference.job_seconds, 1e-9),
        )
        records.append(reference)
        for backend in BACKENDS[1:]:
            records.append(run_query(profile, query, backend, size, sim_timeout=timeout))
    return records


def store_cpu_columns(record: RunRecord) -> tuple[str, str, str, str]:
    if not record.ok or record.metrics is None:
        return ("x", "x", "x", "x")
    cpu = record.metrics.cpu_seconds
    write = cpu.get("store_write", 0.0) + cpu.get("sync", 0.0) / 2
    read = cpu.get("store_read", 0.0) + cpu.get("sync", 0.0) / 2
    compaction = cpu.get("compaction", 0.0)
    total = write + read + compaction
    return (f"{write:.4f}", f"{read:.4f}", f"{compaction:.4f}", f"{total:.4f}")


def render(records: list[RunRecord]) -> str:
    rows = []
    totals: dict[tuple[str, str], float] = {}
    for record in records:
        write, read, compaction, total = store_cpu_columns(record)
        hit_ratio, bloom_neg = lsm_counter_columns(record)
        rows.append([record.query, record.backend, write, read, compaction, total,
                     hit_ratio, bloom_neg])
        if record.ok:
            totals[(record.query, record.backend)] = float(total)
    for record in records:
        if record.backend != "flowkv":
            continue
        flow = totals.get((record.query, "flowkv"))
        rivals = [
            totals[(record.query, b)] for b in BACKENDS[1:] if (record.query, b) in totals
        ]
        if flow and rivals:
            gain = max(rivals) / flow if flow > 0 else float("inf")
            rows.append([record.query, "(flowkv saves)", "-", "-", "-",
                         f"{gain:.2f}x", "-", "-"])
    return format_table(
        ["query", "backend", "write_cpu", "read_cpu", "compaction_cpu", "store_total",
         "cache_hit", "bloom_neg"], rows
    )


def main() -> None:
    profile = active_profile()
    print(f"Figure 10 (profile={profile.name}): store CPU time by operation (seconds)")
    print(render(run(profile)))


if __name__ == "__main__":
    main()

from repro.bench.registry import register_figure  # noqa: E402 - self-registration

register_figure("fig10", __doc__.strip().splitlines()[0], run, render)
