"""Bench-smoke regression gate: compare a run's wall-clock to a baseline.

CI runs every registered figure (``python -m repro.bench all``) which
writes per-figure real wall-clock times (``elapsed_seconds``) into
``BENCH_summary.json``.  This tool compares that document against the
committed baseline (``benchmarks/bench_baseline.json``) and exits
non-zero when a figure regressed by more than the threshold (default
25%).

CI machines differ in absolute speed, so by default ratios are
**normalized**: each figure's current/baseline ratio is divided by the
median ratio across all figures.  A uniformly slower machine shifts
every ratio equally and passes; a single figure regressing relative to
the rest fails.  ``--absolute`` skips the normalization for runs on the
same machine that produced the baseline.

Usage::

    python -m repro.bench.smoke BENCH_summary.json
    python -m repro.bench.smoke BENCH_summary.json --baseline PATH
    python -m repro.bench.smoke BENCH_summary.json --threshold 0.25
    python -m repro.bench.smoke BENCH_summary.json --update   # rewrite baseline
"""

from __future__ import annotations

import json
import statistics
import sys
from typing import Any

DEFAULT_BASELINE = "benchmarks/bench_baseline.json"
DEFAULT_THRESHOLD = 0.25


def elapsed_by_figure(summary: dict[str, Any]) -> dict[str, float]:
    """``figure -> elapsed_seconds`` for every timed figure in a summary."""
    out: dict[str, float] = {}
    for name, figure in summary.get("figures", {}).items():
        elapsed = figure.get("elapsed_seconds")
        if isinstance(elapsed, (int, float)) and elapsed > 0:
            out[name] = float(elapsed)
    return out


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    absolute: bool = False,
) -> tuple[list[str], list[str]]:
    """Compare per-figure wall-clock times; return (failures, report).

    ``failures`` lists human-readable violations (empty means pass);
    ``report`` is the full per-figure table, one line per figure.
    """
    failures: list[str] = []
    report: list[str] = []
    shared = sorted(set(current) & set(baseline))
    for name in sorted(set(baseline) - set(current)):
        report.append(f"  {name:24s} missing from this run (baseline "
                      f"{baseline[name]:.3f}s)")
    for name in sorted(set(current) - set(baseline)):
        report.append(f"  {name:24s} new figure, no baseline "
                      f"({current[name]:.3f}s) — run --update")
    if not shared:
        return failures, report
    ratios = {name: current[name] / baseline[name] for name in shared}
    scale = 1.0 if absolute else statistics.median(ratios.values())
    if scale <= 0:
        scale = 1.0
    for name in shared:
        adjusted = ratios[name] / scale
        line = (f"  {name:24s} {baseline[name]:8.3f}s -> {current[name]:8.3f}s"
                f"  ({adjusted:5.2f}x normalized)")
        if adjusted > 1.0 + threshold:
            failures.append(
                f"{name}: {baseline[name]:.3f}s -> {current[name]:.3f}s "
                f"({adjusted:.2f}x normalized, limit {1.0 + threshold:.2f}x)"
            )
            line += "  REGRESSED"
        report.append(line)
    if not absolute and abs(scale - 1.0) > 0.05:
        report.append(f"  (machine-speed normalization: median ratio "
                      f"{scale:.2f}x treated as 1.00x)")
    return failures, report


def main(argv: list[str]) -> int:
    argv = list(argv)

    def take_option(flag: str) -> str | None:
        if flag not in argv:
            return None
        at = argv.index(flag)
        if at + 1 >= len(argv):
            print(f"{flag} requires a value")
            raise SystemExit(2)
        value = argv[at + 1]
        del argv[at:at + 2]
        return value

    baseline_path = take_option("--baseline") or DEFAULT_BASELINE
    threshold = float(take_option("--threshold") or DEFAULT_THRESHOLD)
    absolute = "--absolute" in argv and (argv.remove("--absolute") or True)
    update = "--update" in argv and (argv.remove("--update") or True)
    if len(argv) != 1:
        print(__doc__.strip().splitlines()[-4].strip())
        return 2
    with open(argv[0], encoding="utf-8") as handle:
        summary = json.load(handle)
    current = elapsed_by_figure(summary)
    if update:
        payload = {
            "profile": summary.get("profile", "unknown"),
            "threshold": threshold,
            "figures": {name: round(secs, 3) for name, secs in sorted(current.items())},
        }
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {baseline_path} ({len(current)} figures)")
        return 0
    with open(baseline_path, encoding="utf-8") as handle:
        baseline_doc = json.load(handle)
    baseline = {
        name: float(secs)
        for name, secs in baseline_doc.get("figures", {}).items()
        if isinstance(secs, (int, float)) and secs > 0
    }
    if summary.get("profile") != baseline_doc.get("profile"):
        print(f"profile mismatch: run={summary.get('profile')} "
              f"baseline={baseline_doc.get('profile')} — not comparable")
        return 2
    failures, report = compare(current, baseline, threshold, absolute)
    print(f"bench-smoke vs {baseline_path} "
          f"(threshold +{threshold:.0%}, "
          f"{'absolute' if absolute else 'machine-normalized'}):")
    for line in report:
        print(line)
    if failures:
        print(f"\nFAIL: {len(failures)} figure(s) regressed >"
              f"{threshold:.0%} wall-clock:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nOK: no figure regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
