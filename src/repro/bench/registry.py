"""Declarative figure registry.

Every figure module registers itself at import time with
:func:`register_figure` (name, one-line description, ``run`` builder and
``render`` formatter); the CLI (``python -m repro.bench``) resolves names
through :data:`FIGURES` instead of hard-coding per-figure wiring, and
``--list`` enumerates the registry.

``render`` callables are normalized to the two-argument form
``(records, profile)`` — figures whose formatter only needs the records
are wrapped, so the CLI calls every figure identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class FigureSpec:
    """One registered figure: how to build it and how to print it."""

    name: str
    description: str
    run: Callable[[Any], list[Any]]  # profile -> records
    render: Callable[[list[Any], Any], str]  # (records, profile) -> table


FIGURES: dict[str, FigureSpec] = {}


def register_figure(
    name: str,
    description: str,
    run: Callable[[Any], list[Any]],
    render: Callable[..., str],
    render_needs_profile: bool = False,
) -> FigureSpec:
    """Register a figure under ``name`` (last registration wins).

    ``render_needs_profile`` marks formatters with the two-argument
    ``(records, profile)`` signature; single-argument formatters are
    adapted so every registered ``render`` takes ``(records, profile)``.
    """
    if render_needs_profile:
        normalized = render
    else:
        def normalized(records: list[Any], _profile: Any, _render=render) -> str:
            return _render(records)

    spec = FigureSpec(name=name, description=description, run=run, render=normalized)
    FIGURES[name] = spec
    return spec


def figure_names() -> list[str]:
    """Registered figure names, in registration order."""
    return list(FIGURES)
