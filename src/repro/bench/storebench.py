"""Store-level workload driver (a Gadget-style microbenchmark, cf. §7).

The paper cites Gadget [Asyabi et al., EuroSys'22] — a harness that
evaluates streaming state stores *directly*, without an SPE — but uses
end-to-end queries instead.  This module provides the direct-drive
counterpart for this codebase: synthetic workloads that reproduce each of
the three window access patterns against any
:class:`~repro.kvstores.api.WindowStateBackend`, so stores can be
compared and regression-tested in isolation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.core.patterns import StorePattern
from repro.kvstores.api import WindowStateBackend
from repro.model import Window
from repro.simenv import MetricsSnapshot, SimEnv


@dataclass(frozen=True)
class StoreWorkload:
    """Shape of one direct-drive store workload.

    Attributes:
        pattern: which access pattern to generate.
        n_rounds: windows triggered over the run.
        n_keys: distinct keys.
        values_per_window: tuples appended per (key, window) (append
            patterns) or updates per (key, window) (RMW).
        value_bytes: payload size per tuple.
        keys_per_window: for AAR, how many keys share each window.
        read_lag: rounds between writing a window and reading it
            (controls how much state is resident/spilled at read time).
        seed: RNG seed.
    """

    pattern: StorePattern
    n_rounds: int = 200
    n_keys: int = 32
    values_per_window: int = 10
    value_bytes: int = 64
    keys_per_window: int = 8
    read_lag: int = 20
    seed: int = 1


@dataclass
class StoreBenchResult:
    """Outcome of one direct drive."""

    workload: StoreWorkload
    operations: int
    sim_seconds: float
    metrics: MetricsSnapshot

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.sim_seconds if self.sim_seconds > 0 else 0.0


def drive_store(
    env: SimEnv, backend: WindowStateBackend, workload: StoreWorkload
) -> StoreBenchResult:
    """Run one synthetic workload against ``backend`` on ``env``."""
    rng = random.Random(workload.seed)
    payload = bytes(rng.randrange(256) for _ in range(workload.value_bytes))
    start = env.now
    operations = 0
    if workload.pattern is StorePattern.AAR:
        operations = _drive_aar(backend, workload, payload)
    elif workload.pattern is StorePattern.AUR:
        operations = _drive_aur(backend, workload, payload)
    else:
        operations = _drive_rmw(backend, workload, payload, rng)
    backend.flush()
    return StoreBenchResult(
        workload=workload,
        operations=operations,
        sim_seconds=env.now - start,
        metrics=env.ledger.snapshot(),
    )


def _window(round_idx: int, span: float = 10.0) -> Window:
    return Window(round_idx * span, (round_idx + 1) * span)


def _drive_aar(backend: WindowStateBackend, w: StoreWorkload, payload: bytes) -> int:
    """Aligned pattern: all keys of a window written, whole window read."""
    operations = 0
    for round_idx in range(w.n_rounds):
        window = _window(round_idx)
        for key_idx in range(w.keys_per_window):
            key = f"k{key_idx % w.n_keys:04d}".encode()
            for j in range(w.values_per_window):
                backend.append(key, window, payload, window.start + j * 0.01)
                operations += 1
        if round_idx >= w.read_lag:
            for _key, values in backend.read_window(_window(round_idx - w.read_lag)):
                operations += len(values)
    return operations


def _drive_aur(backend: WindowStateBackend, w: StoreWorkload, payload: bytes) -> int:
    """Unaligned pattern: per-key windows written, read per key with lag."""
    operations = 0
    for round_idx in range(w.n_rounds):
        window = _window(round_idx)
        key = f"k{round_idx % w.n_keys:04d}".encode()
        for j in range(w.values_per_window):
            backend.append(key, window, payload, window.start + j * 0.01)
            operations += 1
        backend.on_watermark(window.start)
        if round_idx >= w.read_lag:
            old_round = round_idx - w.read_lag
            old_key = f"k{old_round % w.n_keys:04d}".encode()
            values = backend.read_key_window(old_key, _window(old_round))
            operations += len(values)
    return operations


def _drive_rmw(
    backend: WindowStateBackend, w: StoreWorkload, payload: bytes, rng: random.Random
) -> int:
    """Read-modify-write: per-tuple get+put of a fixed-size aggregate."""
    operations = 0
    agg = payload[:8] or b"\x00" * 8
    for round_idx in range(w.n_rounds):
        window = _window(round_idx)
        for _j in range(w.values_per_window * w.keys_per_window):
            key = f"k{rng.randrange(w.n_keys):04d}".encode()
            current = backend.rmw_get(key, window)
            backend.rmw_put(key, window, agg if current is None else current)
            operations += 2
        if round_idx >= w.read_lag:
            old_window = _window(round_idx - w.read_lag)
            for key_idx in range(w.n_keys):
                backend.rmw_remove(f"k{key_idx:04d}".encode(), old_window)
                operations += 1
    return operations


def run_store_comparison(
    factories: dict[str, Any], workload: StoreWorkload
) -> dict[str, StoreBenchResult]:
    """Drive the same workload against multiple backend factories.

    ``factories`` maps a label to a callable ``(env, fs, name, info) ->
    backend`` (the standard :data:`~repro.engine.state.BackendFactory`).
    """
    from repro.engine.state import OperatorInfo
    from repro.core.patterns import WindowKind
    from repro.storage import SimFileSystem

    kind = {
        StorePattern.AAR: WindowKind.FIXED,
        StorePattern.AUR: WindowKind.SESSION,
        StorePattern.RMW: WindowKind.FIXED,
    }[workload.pattern]
    info = OperatorInfo(
        name="storebench",
        incremental=workload.pattern is StorePattern.RMW,
        window_kind=kind,
        session_gap=10.0,
    )
    results: dict[str, StoreBenchResult] = {}
    for label, factory in factories.items():
        env = SimEnv()
        fs = SimFileSystem(env)
        backend = factory(env, fs, "sb", info)
        results[label] = drive_store(env, backend, workload)
        backend.close()
    return results
