"""Benchmark harness reproducing the paper's evaluation (§2.2, §6).

One module per figure:

========  =====================================================
fig4      execution-time breakdown, Flink on RocksDB/Faster
fig8      throughput, 8 queries x 3 window sizes x 4 backends
fig9      P95 latency vs tuple rate (Q7 / Q11-Median / Q11)
fig10     store CPU time by operation (write / read / compaction)
fig11     predictive-batch-read ratio sweep (throughput + hit ratio)
fig12     MSA sweep (compaction trade-off)
fig13     multi-worker scalability (Q11-Median)
========  =====================================================

All figures run on a :class:`~repro.bench.profiles.ScaleProfile` that
scales the paper's 400 GB workload down to laptop size while preserving
the state-to-memory ratios that drive the results.
"""

from repro.bench.harness import RunRecord, run_latency, run_matrix, run_query
from repro.bench.profiles import DEFAULT_PROFILE, QUICK_PROFILE, TINY_PROFILE, ScaleProfile

__all__ = [
    "ScaleProfile",
    "DEFAULT_PROFILE",
    "QUICK_PROFILE",
    "TINY_PROFILE",
    "RunRecord",
    "run_query",
    "run_matrix",
    "run_latency",
]
