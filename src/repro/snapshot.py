"""Checkpointing support (§8, Fault Tolerance).

Modern SPEs periodically snapshot their state stores into reliable
storage and, on failure, restore the latest snapshot and replay the
source from that point (Flink checkpointing).  The paper's discussion
prescribes the mechanism FlowKV should follow: *flush in-memory data to
disk first, then transfer the on-disk files asynchronously* — the same
strategy Flink uses for RocksDB.

A :class:`StoreSnapshot` captures one store instance:

* ``meta`` — the pickled in-memory tables that must survive (write
  buffers are flushed first, so meta is small),
* ``files`` — byte-exact copies of the store's on-disk files.

Costs: taking a snapshot charges the flush (synchronous, §8: "so that
on-disk data can be transferred asynchronously while all the write
operations are done in-memory") plus a sequential read of the copied
files; restoring charges the writes to repopulate the filesystem.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.simenv import CAT_SERDE, CAT_STORE_READ, CAT_STORE_WRITE, SimEnv
from repro.storage.filesystem import SimFileSystem


@dataclass
class StoreSnapshot:
    """A point-in-time capture of one store instance."""

    kind: str
    meta: bytes
    files: dict[str, bytes] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return len(self.meta) + sum(len(data) for data in self.files.values())


def pack_meta(env: SimEnv, state: Any) -> bytes:
    """Serialize in-memory tables, charging serde time."""
    data = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    env.charge_cpu(CAT_SERDE, env.cpu.serde(len(data)))
    return data


def unpack_meta(env: SimEnv, data: bytes) -> Any:
    env.charge_cpu(CAT_SERDE, env.cpu.serde(len(data)))
    return pickle.loads(data)


def copy_files_out(
    env: SimEnv,
    fs: SimFileSystem,
    prefix: str,
    upload_env: SimEnv | None = None,
) -> dict[str, bytes]:
    """Read every file under ``prefix`` (the upload's local read).

    With ``upload_env`` the read time is charged to that environment
    instead of the store's — the §8 *asynchronous* checkpoint transfer:
    only the flush blocks tuple processing; the file copy proceeds on the
    uploader's clock.
    """
    files: dict[str, bytes] = {}
    if upload_env is None:
        for name in fs.list_files(prefix):
            files[name] = fs.read(name, category=CAT_STORE_READ)
        return files
    # Async path: account device time and bytes on the uploader's ledger
    # without touching the store's clock.
    for name in fs.list_files(prefix):
        size = fs.size(name)
        upload_env.charge_cpu(CAT_STORE_READ, upload_env.cpu.syscall)
        upload_env.charge_read(size)
        files[name] = fs.read_uncharged(name)
    return files


def copy_files_in(env: SimEnv, fs: SimFileSystem, files: dict[str, bytes]) -> None:
    """Repopulate the filesystem from a snapshot (recovery download)."""
    for name, data in files.items():
        if fs.exists(name):
            fs.delete(name)
        fs.append(name, data, category=CAT_STORE_WRITE)
