"""Checkpointing support (§8, Fault Tolerance).

Modern SPEs periodically snapshot their state stores into reliable
storage and, on failure, restore the latest snapshot and replay the
source from that point (Flink checkpointing).  The paper's discussion
prescribes the mechanism FlowKV should follow: *flush in-memory data to
disk first, then transfer the on-disk files asynchronously* — the same
strategy Flink uses for RocksDB.

A :class:`StoreSnapshot` captures one store instance:

* ``meta`` — the pickled in-memory tables that must survive (write
  buffers are flushed first, so meta is small),
* ``files`` — byte-exact copies of the store's on-disk files.

Costs: taking a snapshot charges the flush (synchronous, §8: "so that
on-disk data can be transferred asynchronously while all the write
operations are done in-memory") plus a sequential read of the copied
files; restoring charges the writes to repopulate the filesystem.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SnapshotCorruptError
from repro.kvstores.api import ExportedEntry
from repro.model import Window
from repro.simenv import (
    CAT_RECOVERY,
    CAT_SERDE,
    CAT_STORE_READ,
    CAT_STORE_WRITE,
    SimEnv,
)
from repro.storage.filesystem import SimFileSystem


@dataclass
class StoreSnapshot:
    """A point-in-time capture of one store instance.

    A *sealed* snapshot additionally carries per-file CRC32 checksums
    and a checksum over ``meta``, so corruption anywhere between seal
    and restore (torn checkpoint write, bit flip at rest) is detected
    by :func:`verify_snapshot` instead of being loaded as state.
    """

    kind: str
    meta: bytes
    files: dict[str, bytes] = field(default_factory=dict)
    checksums: dict[str, tuple[int, int]] | None = None  # name -> (length, crc32)
    meta_crc: int | None = None
    epoch: int | None = None  # checkpoint epoch stamped by the Checkpointer

    @property
    def total_bytes(self) -> int:
        return len(self.meta) + sum(len(data) for data in self.files.values())

    @property
    def sealed(self) -> bool:
        return self.meta_crc is not None


def seal_snapshot(env: SimEnv, snap: StoreSnapshot) -> StoreSnapshot:
    """Stamp per-file length+CRC32 checksums onto ``snap`` (in place).

    Checksum computation is charged to the ``recovery`` ledger category
    at ``crc_per_byte``.
    """
    total = len(snap.meta)
    snap.meta_crc = zlib.crc32(snap.meta)
    snap.checksums = {}
    for name, data in snap.files.items():
        snap.checksums[name] = (len(data), zlib.crc32(data))
        total += len(data)
    env.charge_cpu(CAT_RECOVERY, total * env.cpu.crc_per_byte)
    return snap


def verify_snapshot(env: SimEnv, snap: StoreSnapshot) -> None:
    """Re-checksum a sealed snapshot; raise :class:`SnapshotCorruptError`.

    Detects truncated/extended files, flipped bits, and missing or
    surplus files relative to the seal.  Unsealed snapshots (legacy or
    test-constructed) pass vacuously.
    """
    if not snap.sealed:
        return
    total = len(snap.meta)
    for data in snap.files.values():
        total += len(data)
    env.charge_cpu(CAT_RECOVERY, total * env.cpu.crc_per_byte)
    if zlib.crc32(snap.meta) != snap.meta_crc:
        raise SnapshotCorruptError(f"{snap.kind} snapshot meta failed CRC check")
    expected = snap.checksums or {}
    if set(expected) != set(snap.files):
        missing = sorted(set(expected) - set(snap.files))
        surplus = sorted(set(snap.files) - set(expected))
        raise SnapshotCorruptError(
            f"{snap.kind} snapshot file set mismatch: missing={missing} surplus={surplus}"
        )
    for name, (length, crc) in expected.items():
        data = snap.files[name]
        if len(data) != length:
            raise SnapshotCorruptError(
                f"{snap.kind} snapshot file {name}: {len(data)}B, expected {length}B"
            )
        if zlib.crc32(data) != crc:
            raise SnapshotCorruptError(f"{snap.kind} snapshot file {name} failed CRC check")


@dataclass(frozen=True)
class ShardRef:
    """Where one key-group's shard of one store lives in checkpoint storage.

    Incremental manifests reference unchanged shards from *earlier*
    epochs by (epoch, path, length, crc) instead of re-copying them;
    restore re-verifies the length and CRC against the referenced file,
    so a corrupt shard anywhere in a chain invalidates every manifest
    that references it.
    """

    epoch: int
    path: str
    length: int
    crc: int


def pack_group_shard(env: SimEnv, entries: list[ExportedEntry]) -> bytes:
    """Serialize one key-group's exported entries into a shard payload.

    The layout is explicit tuples — ``(key, window_start, window_end,
    kind, values, ett)`` — rather than pickled :class:`ExportedEntry`
    objects, so the on-disk format is independent of the dataclass
    definition.  Serde time is charged as for any snapshot meta.
    """
    rows = [
        (e.key, e.window.start, e.window.end, e.kind, e.values, e.ett)
        for e in entries
    ]
    data = pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
    env.charge_cpu(CAT_SERDE, env.cpu.serde(len(data)))
    return data


def unpack_group_shard(env: SimEnv, data: bytes) -> list[ExportedEntry]:
    """Inverse of :func:`pack_group_shard`."""
    env.charge_cpu(CAT_SERDE, env.cpu.serde(len(data)))
    return [
        ExportedEntry(key, Window(start, end), kind, values, ett)
        for key, start, end, kind, values, ett in pickle.loads(data)
    ]


def pack_meta(env: SimEnv, state: Any) -> bytes:
    """Serialize in-memory tables, charging serde time."""
    data = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    env.charge_cpu(CAT_SERDE, env.cpu.serde(len(data)))
    return data


def unpack_meta(env: SimEnv, data: bytes) -> Any:
    env.charge_cpu(CAT_SERDE, env.cpu.serde(len(data)))
    return pickle.loads(data)


def copy_files_out(
    env: SimEnv,
    fs: SimFileSystem,
    prefix: str,
    upload_env: SimEnv | None = None,
) -> dict[str, bytes]:
    """Read every file under ``prefix`` (the upload's local read).

    With ``upload_env`` the read time is charged to that environment
    instead of the store's — the §8 *asynchronous* checkpoint transfer:
    only the flush blocks tuple processing; the file copy proceeds on the
    uploader's clock.
    """
    files: dict[str, bytes] = {}
    if upload_env is None:
        for name in fs.list_files(prefix):
            files[name] = fs.read(name, category=CAT_STORE_READ)
        return files
    # Async path: account device time and bytes on the uploader's ledger
    # without touching the store's clock.
    for name in fs.list_files(prefix):
        size = fs.size(name)
        upload_env.charge_cpu(CAT_STORE_READ, upload_env.cpu.syscall)
        upload_env.charge_read(size)
        files[name] = fs.read_uncharged(name)
    return files


def copy_files_in(env: SimEnv, fs: SimFileSystem, files: dict[str, bytes]) -> None:
    """Repopulate the filesystem from a snapshot (recovery download)."""
    for name, data in files.items():
        if fs.exists(name):
            fs.delete(name)
        fs.append(name, data, category=CAT_STORE_WRITE)
