"""Stop-the-world key-group migration.

The executor's rescale path: **drain** (flush in-flight store buffers —
export does this per backend), **export** the moved key-groups from every
old owner, **redeploy** the physical plan at the new parallelism,
**import** at the new owners, **resume**.  All export/transfer/import
work is charged to the per-instance simulated clocks under the
``migration`` category, and the recorded downtime is the stop-the-world
pause: the slowest export plus the slowest import per operator (each
phase runs across instances in parallel), summed over stateful operators
(operators migrate one at a time so peak transfer memory stays bounded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cluster.topology import charge_link
from repro.errors import DiskIOError, InjectedCrashError
from repro.faults import CRASH_MIGRATE_EXPORT, CRASH_MIGRATE_IMPORT, with_retries
from repro.kvstores.api import CAP_RESCALE, StateExport, require_capability
from repro.rescale.keygroups import (
    contiguous_owner_table,
    key_group_of,
    moved_groups_from_table,
    owner_of,
    validate_parallelism,
)
from repro.simenv import CAT_MIGRATION, CAT_RECOVERY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.runtime import Executor


@dataclass
class NodeMigration:
    """Migration accounting for one stateful operator."""

    node: str
    entries_moved: int = 0
    bytes_moved: int = 0
    export_seconds: float = 0.0  # slowest source instance
    import_seconds: float = 0.0  # slowest destination instance
    # Live rescale only: groups seeded at the destination from the last
    # checkpoint's shards instead of streamed; ``seeded_bytes`` is the
    # live-transfer traffic those groups would otherwise have cost.
    seeded_groups: int = 0
    seeded_bytes: int = 0

    @property
    def downtime_seconds(self) -> float:
        return self.export_seconds + self.import_seconds


@dataclass
class GroupCutover:
    """Cutover record of one key-group in a *live* rescale.

    A live migration cuts the job over group-by-group; each cutover
    records when the group landed on its new owner (``cutover_at``, on
    the simulated arrival axis), how long its transfer and import took on
    the busy clocks, and how long records destined for the group waited
    in the transfer queue (``max_record_delay`` — the per-group downtime
    a record actually observed).  ``forced`` marks groups whose transfer
    was completed synchronously because their bounded transfer queue
    filled up (backpressure).
    """

    group: int
    cutover_at: float = 0.0
    transfer_seconds: float = 0.0
    import_seconds: float = 0.0
    buffered_records: int = 0
    max_record_delay: float = 0.0
    forced: bool = False


@dataclass
class RescaleEvent:
    """One rescale attempt of the whole job.

    ``mode`` is ``"stw"`` (stop-the-world) or ``"live"`` (asynchronous
    per-key-group cutover); live rescales record one :class:`GroupCutover`
    per key-group that completed its cutover.

    ``aborted`` marks an attempt that hit a fault mid-migration and was
    rolled back.  A stop-the-world abort restores the full pre-migration
    topology (no partial cutover).  A *live* abort rolls back only the
    not-yet-cut-over key-groups (``rolled_back_groups``): groups that
    already cut over keep their new owner, the routing table stays mixed
    but authoritative, and a later rescale moves state from wherever the
    table says it lives.

    ``reason`` is ``"scale"`` for a parallelism change and
    ``"skew-split"`` for a hot-group re-placement at unchanged
    parallelism (:class:`~repro.rescale.skew.SkewController`);
    ``hot_groups`` then lists the key-groups the split targeted.
    """

    at_record: int
    old_parallelism: int
    new_parallelism: int
    moved_groups: int
    per_node: list[NodeMigration] = field(default_factory=list)
    aborted: bool = False
    mode: str = "stw"
    cutovers: list[GroupCutover] = field(default_factory=list)
    rolled_back_groups: int = 0
    reason: str = "scale"
    hot_groups: list[int] = field(default_factory=list)

    @property
    def bytes_moved(self) -> int:
        return sum(node.bytes_moved for node in self.per_node)

    @property
    def entries_moved(self) -> int:
        return sum(node.entries_moved for node in self.per_node)

    @property
    def seeded_groups(self) -> int:
        return sum(node.seeded_groups for node in self.per_node)

    @property
    def seeded_bytes(self) -> int:
        """Live-transfer bytes avoided by checkpoint seeding."""
        return sum(node.seeded_bytes for node in self.per_node)

    @property
    def downtime_seconds(self) -> float:
        """The pause a record could observe.

        Stop-the-world: the whole job froze for the export+import window,
        summed over stateful operators.  Live: no global freeze exists —
        the observable stall is the longest any buffered record waited
        for its key-group to cut over (all other groups kept serving).
        """
        if self.mode == "live":
            return self.max_record_delay
        return sum(node.downtime_seconds for node in self.per_node)

    @property
    def max_record_delay(self) -> float:
        return max((c.max_record_delay for c in self.cutovers), default=0.0)


def _transfer_charge(env: Any, payload_bytes: int, n_entries: int) -> None:
    """One side of the state hand-off (serialize-copy-send or receive)."""
    env.charge_cpu(
        CAT_MIGRATION,
        env.cpu.syscall + payload_bytes * env.cpu.copy_per_byte + n_entries * env.cpu.hash_probe,
    )


def _transfer(env: Any, label: str, payload_bytes: int, n_entries: int, faults: Any) -> None:
    """A transfer with injected-fault handling: transient ``DiskIOError``
    faults (op ``transfer``) retry with capped deterministic backoff; a
    fault outliving the retries escalates to the migration rollback."""

    def attempt() -> None:
        if faults is not None:
            faults.on_transfer(label, env.now)
        _transfer_charge(env, payload_bytes, n_entries)

    if faults is None:
        attempt()
    else:
        with_retries(env, attempt)


def _split_operator_state(
    state: dict[str, Any], destination_of, destinations: list[int]
) -> dict[int, dict[str, Any]]:
    """Partition exported operator metadata by destination instance.

    Keyed pieces (sessions, window keys, count ordinals) follow their
    key; ``pending_aligned`` windows and the max timestamp are replicated
    to every destination (both are key-independent trigger metadata).
    """
    parts = {
        dst: {
            "sessions": {},
            "window_keys": [],
            "count_state": {},
            "pending_aligned": set(state["pending_aligned"]),
            "max_timestamp": state["max_timestamp"],
        }
        for dst in destinations
    }
    for key, sessions in state["sessions"].items():
        parts[destination_of(key)]["sessions"][key] = sessions
    for window, keys in state["window_keys"]:
        per_dst: dict[int, set[bytes]] = {}
        for key in keys:
            per_dst.setdefault(destination_of(key), set()).add(key)
        for dst, moved in per_dst.items():
            parts[dst]["window_keys"].append((window, moved))
    for key, value in state["count_state"].items():
        parts[destination_of(key)]["count_state"][key] = value
    return parts


def migrate(
    executor: "Executor", new_parallelism: int, arrival: float = 0.0, at_record: int = 0
) -> RescaleEvent:
    """Rescale a running job to ``new_parallelism`` (stop-the-world).

    Returns the :class:`RescaleEvent`; an identity rescale moves zero
    key-groups and records zero downtime.
    """
    plan = executor._plan  # noqa: SLF001 - the executor's rescale back-half
    max_groups = plan.max_key_groups
    validate_parallelism(new_parallelism, max_groups)
    old_parallelism = executor.current_parallelism
    # The routing table is the authority on current ownership: a prior
    # aborted live rescale may have left a non-contiguous assignment.
    move_plan = moved_groups_from_table(executor.group_owner, new_parallelism)
    event = RescaleEvent(
        at_record=at_record,
        old_parallelism=old_parallelism,
        new_parallelism=new_parallelism,
        moved_groups=sum(
            len(groups) for dsts in move_plan.values() for groups in dsts.values()
        ),
    )
    if move_plan:
        for node in executor._stateful_nodes:  # noqa: SLF001
            backend = executor._instances[node.node_id][0].operator.backend  # noqa: SLF001
            require_capability(backend, CAP_RESCALE, "export_state")

    def kg_of(key: bytes) -> int:
        return key_group_of(key, max_groups)

    def destination_of(key: bytes) -> int:
        return owner_of(kg_of(key), max_groups, new_parallelism)

    faults = plan.faults
    all_groups = {
        group
        for dsts in move_plan.values()
        for group_list in dsts.values()
        for group in group_list
    }
    # Per-node rollback journal: the original exports (by source index)
    # and which destinations have already imported.  Retirement is
    # deferred to a commit phase after every node migrated, so a fault
    # anywhere can still return state to the old owners.
    journal: list[tuple[Any, dict[int, tuple[StateExport, dict[str, Any]]], list[int]]] = []
    try:
        for node in executor._stateful_nodes:  # noqa: SLF001
            instances = executor._instances[node.node_id]  # noqa: SLF001
            report = NodeMigration(node=node.name)
            # Redeploy: grow the instance list before transfers so imports
            # have somewhere to land; retiring instances stay until drained.
            for index in range(old_parallelism, new_parallelism):
                instances.append(executor._new_instance(node, index))  # noqa: SLF001
            exported: dict[int, tuple[StateExport, dict[str, Any]]] = {}
            imported: list[int] = []
            journal.append((node, exported, imported))
            pending: dict[int, tuple[StateExport, dict[str, Any]]] = {}
            # dst -> [(src, bytes)] shares that must cross the network.
            remote_in: dict[int, list[tuple[int, int]]] = {}
            # Export phase: every source drains & extracts its moved groups.
            for src, dsts in sorted(move_plan.items()):
                source = instances[src]
                if faults is not None:
                    faults.crash_point(
                        CRASH_MIGRATE_EXPORT, now_fn=lambda s=source: s.env.now
                    )
                groups = {group for group_list in dsts.values() for group in group_list}
                before = source.env.clock.now
                export = source.operator.backend.export_state(groups, kg_of)
                operator_state = source.operator.export_keyed_state(groups, kg_of)
                exported[src] = (export, operator_state)
                _transfer(
                    source.env, f"{node.name}/src{src}", export.total_bytes,
                    len(export), faults,
                )
                report.export_seconds = max(
                    report.export_seconds, source.env.clock.now - before
                )
                report.entries_moved += len(export)
                report.bytes_moved += export.total_bytes
                # Partition the export by new owner.
                per_dst_export: dict[int, StateExport] = {}
                for entry in export.entries:
                    per_dst_export.setdefault(
                        destination_of(entry.key), StateExport()
                    ).entries.append(entry)
                per_dst_state = _split_operator_state(
                    operator_state, destination_of, sorted(dsts)
                )
                for dst in dsts:
                    part = per_dst_export.get(dst, StateExport())
                    remote_in.setdefault(dst, []).append((src, part.total_bytes))
                    if dst in pending:
                        merged_export, merged_state = pending[dst]
                        merged_export.entries.extend(part.entries)
                        _merge_operator_state(merged_state, per_dst_state[dst])
                    else:
                        pending[dst] = (part, per_dst_state[dst])
            # Import phase: every destination loads its share.
            for dst, (export, operator_state) in sorted(pending.items()):
                destination = instances[dst]
                if faults is not None:
                    faults.crash_point(
                        CRASH_MIGRATE_IMPORT, now_fn=lambda d=destination: d.env.now
                    )
                before = destination.env.clock.now
                cluster = plan.cluster
                if cluster is not None:
                    # Each source's share crosses its own link; intra-node
                    # shares are free (charge_link no-ops on src == dst).
                    for src, n_bytes in remote_in.get(dst, []):
                        charge_link(
                            destination.env, cluster.network,
                            cluster.place(src), cluster.place(dst), n_bytes,
                            f"net/migrate/{node.name}/dst{dst}", faults,
                        )
                _transfer(
                    destination.env, f"{node.name}/dst{dst}", export.total_bytes,
                    len(export), faults,
                )
                destination.operator.backend.import_state(export)
                destination.operator.import_keyed_state(operator_state)
                imported.append(dst)
                report.import_seconds = max(
                    report.import_seconds, destination.env.clock.now - before
                )
            event.per_node.append(report)
    except (InjectedCrashError, DiskIOError):
        _rollback(executor, journal, all_groups, kg_of, old_parallelism)
        event.aborted = True
        return event
    # Commit phase: retire shrunk-away instances (state fully exported
    # and imported everywhere — the migration can no longer abort).
    for node in executor._stateful_nodes:  # noqa: SLF001
        instances = executor._instances[node.node_id]  # noqa: SLF001
        for retired in instances[new_parallelism:]:
            retired.operator.backend.close()
            executor._retired.setdefault(node.node_id, []).append(  # noqa: SLF001
                (retired.env.ledger.snapshot(), retired.env.clock.now,
                 retired.operator.results_emitted)
            )
        del instances[new_parallelism:]

    # Resume: the whole job was paused for the stop-the-world window.
    resume_at = (
        max(
            [arrival]
            + [
                inst.wall_available
                for insts in executor._instances.values()  # noqa: SLF001
                for inst in insts
            ]
        )
        + event.downtime_seconds
    )
    for insts in executor._instances.values():  # noqa: SLF001
        for inst in insts:
            inst.wall_available = max(inst.wall_available, resume_at)
    executor.current_parallelism = new_parallelism
    executor.group_owner[:] = contiguous_owner_table(max_groups, new_parallelism)
    return event


def _rollback(
    executor: "Executor",
    journal: list[tuple[Any, dict[int, tuple[StateExport, dict[str, Any]]], list[int]]],
    all_groups: set[int],
    kg_of,
    old_parallelism: int,
) -> None:
    """Undo a faulted migration: restore the pre-migration topology.

    For every node touched so far, moved key-groups are pulled back out
    of any destination that already imported them (export-and-discard —
    the original exports are the source of truth), the original exports
    are re-imported at their old owners, and instances created for the
    new topology are dropped.  Stale timers left on surviving instances
    are harmless: the firing paths re-check state liveness.  Rollback
    work is charged to the ``recovery`` category.
    """
    for node, exported, imported in journal:
        instances = executor._instances[node.node_id]  # noqa: SLF001
        for dst in imported:
            if dst >= old_parallelism:
                continue  # created for the new topology; dropped below
            destination = instances[dst]
            undone = destination.operator.backend.export_state(all_groups, kg_of)
            destination.operator.export_keyed_state(all_groups, kg_of)
            destination.env.charge_cpu(
                CAT_RECOVERY,
                destination.env.cpu.syscall
                + undone.total_bytes * destination.env.cpu.copy_per_byte,
            )
        for src, (export, operator_state) in exported.items():
            source = instances[src]
            source.env.charge_cpu(
                CAT_RECOVERY,
                source.env.cpu.syscall
                + export.total_bytes * source.env.cpu.copy_per_byte,
            )
            source.operator.backend.import_state(export)
            source.operator.import_keyed_state(operator_state)
        for created in instances[old_parallelism:]:
            created.operator.backend.close()
        del instances[old_parallelism:]
    executor.current_parallelism = old_parallelism


def _merge_operator_state(target: dict[str, Any], extra: dict[str, Any]) -> None:
    """Fold a second source's operator-state share into ``target``."""
    for key, sessions in extra["sessions"].items():
        target["sessions"].setdefault(key, []).extend(sessions)
    target["window_keys"].extend(extra["window_keys"])
    target["count_state"].update(extra["count_state"])
    target["pending_aligned"] |= extra["pending_aligned"]
    target["max_timestamp"] = max(target["max_timestamp"], extra["max_timestamp"])
