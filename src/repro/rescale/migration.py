"""Stop-the-world key-group migration.

The executor's rescale path: **drain** (flush in-flight store buffers —
export does this per backend), **export** the moved key-groups from every
old owner, **redeploy** the physical plan at the new parallelism,
**import** at the new owners, **resume**.  All export/transfer/import
work is charged to the per-instance simulated clocks under the
``migration`` category, and the recorded downtime is the stop-the-world
pause: the slowest export plus the slowest import per operator (each
phase runs across instances in parallel), summed over stateful operators
(operators migrate one at a time so peak transfer memory stays bounded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import PlanError
from repro.kvstores.api import StateExport
from repro.rescale.keygroups import (
    key_group_of,
    moved_key_groups,
    owner_of,
    validate_parallelism,
)
from repro.simenv import CAT_MIGRATION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.runtime import Executor


@dataclass
class NodeMigration:
    """Migration accounting for one stateful operator."""

    node: str
    entries_moved: int = 0
    bytes_moved: int = 0
    export_seconds: float = 0.0  # slowest source instance
    import_seconds: float = 0.0  # slowest destination instance

    @property
    def downtime_seconds(self) -> float:
        return self.export_seconds + self.import_seconds


@dataclass
class RescaleEvent:
    """One completed rescale of the whole job."""

    at_record: int
    old_parallelism: int
    new_parallelism: int
    moved_groups: int
    per_node: list[NodeMigration] = field(default_factory=list)

    @property
    def bytes_moved(self) -> int:
        return sum(node.bytes_moved for node in self.per_node)

    @property
    def entries_moved(self) -> int:
        return sum(node.entries_moved for node in self.per_node)

    @property
    def downtime_seconds(self) -> float:
        return sum(node.downtime_seconds for node in self.per_node)


def _transfer_charge(env: Any, payload_bytes: int, n_entries: int) -> None:
    """One side of the state hand-off (serialize-copy-send or receive)."""
    env.charge_cpu(
        CAT_MIGRATION,
        env.cpu.syscall + payload_bytes * env.cpu.copy_per_byte + n_entries * env.cpu.hash_probe,
    )


def _split_operator_state(
    state: dict[str, Any], destination_of, destinations: list[int]
) -> dict[int, dict[str, Any]]:
    """Partition exported operator metadata by destination instance.

    Keyed pieces (sessions, window keys, count ordinals) follow their
    key; ``pending_aligned`` windows and the max timestamp are replicated
    to every destination (both are key-independent trigger metadata).
    """
    parts = {
        dst: {
            "sessions": {},
            "window_keys": [],
            "count_state": {},
            "pending_aligned": set(state["pending_aligned"]),
            "max_timestamp": state["max_timestamp"],
        }
        for dst in destinations
    }
    for key, sessions in state["sessions"].items():
        parts[destination_of(key)]["sessions"][key] = sessions
    for window, keys in state["window_keys"]:
        per_dst: dict[int, set[bytes]] = {}
        for key in keys:
            per_dst.setdefault(destination_of(key), set()).add(key)
        for dst, moved in per_dst.items():
            parts[dst]["window_keys"].append((window, moved))
    for key, value in state["count_state"].items():
        parts[destination_of(key)]["count_state"][key] = value
    return parts


def migrate(
    executor: "Executor", new_parallelism: int, arrival: float = 0.0, at_record: int = 0
) -> RescaleEvent:
    """Rescale a running job to ``new_parallelism`` (stop-the-world).

    Returns the :class:`RescaleEvent`; an identity rescale moves zero
    key-groups and records zero downtime.
    """
    plan = executor._plan  # noqa: SLF001 - the executor's rescale back-half
    max_groups = plan.max_key_groups
    validate_parallelism(new_parallelism, max_groups)
    old_parallelism = executor.current_parallelism
    move_plan = moved_key_groups(max_groups, old_parallelism, new_parallelism)
    event = RescaleEvent(
        at_record=at_record,
        old_parallelism=old_parallelism,
        new_parallelism=new_parallelism,
        moved_groups=sum(
            len(groups) for dsts in move_plan.values() for groups in dsts.values()
        ),
    )
    if move_plan and any(
        node.kind == "interval_join" for node in executor._stateful_nodes  # noqa: SLF001
    ):
        raise PlanError(
            "cannot rescale a plan with interval joins: join buffers are "
            "engine-managed and not yet migratable (see ROADMAP open items)"
        )

    def kg_of(key: bytes) -> int:
        return key_group_of(key, max_groups)

    def destination_of(key: bytes) -> int:
        return owner_of(kg_of(key), max_groups, new_parallelism)

    for node in executor._stateful_nodes:  # noqa: SLF001
        instances = executor._instances[node.node_id]  # noqa: SLF001
        report = NodeMigration(node=node.name)
        # Redeploy: grow the instance list before transfers so imports
        # have somewhere to land; retiring instances stay until drained.
        for index in range(old_parallelism, new_parallelism):
            instances.append(executor._new_instance(node, index))  # noqa: SLF001
        pending: dict[int, tuple[StateExport, dict[str, Any]]] = {}
        # Export phase: every source drains & extracts its moved groups.
        for src, dsts in sorted(move_plan.items()):
            source = instances[src]
            groups = {group for group_list in dsts.values() for group in group_list}
            before = source.env.clock.now
            export = source.operator.backend.export_state(groups, kg_of)
            operator_state = source.operator.export_keyed_state(groups, kg_of)
            _transfer_charge(source.env, export.total_bytes, len(export))
            report.export_seconds = max(
                report.export_seconds, source.env.clock.now - before
            )
            report.entries_moved += len(export)
            report.bytes_moved += export.total_bytes
            # Partition the export by new owner.
            per_dst_export: dict[int, StateExport] = {}
            for entry in export.entries:
                per_dst_export.setdefault(
                    destination_of(entry.key), StateExport()
                ).entries.append(entry)
            per_dst_state = _split_operator_state(
                operator_state, destination_of, sorted(dsts)
            )
            for dst in dsts:
                part = per_dst_export.get(dst, StateExport())
                if dst in pending:
                    merged_export, merged_state = pending[dst]
                    merged_export.entries.extend(part.entries)
                    _merge_operator_state(merged_state, per_dst_state[dst])
                else:
                    pending[dst] = (part, per_dst_state[dst])
        # Import phase: every destination loads its share.
        for dst, (export, operator_state) in sorted(pending.items()):
            destination = instances[dst]
            before = destination.env.clock.now
            _transfer_charge(destination.env, export.total_bytes, len(export))
            destination.operator.backend.import_state(export)
            destination.operator.import_keyed_state(operator_state)
            report.import_seconds = max(
                report.import_seconds, destination.env.clock.now - before
            )
        # Retire shrunk-away instances (their state is fully exported).
        for retired in instances[new_parallelism:]:
            retired.operator.backend.close()
            executor._retired.setdefault(node.node_id, []).append(  # noqa: SLF001
                (retired.env.ledger.snapshot(), retired.env.clock.now,
                 retired.operator.results_emitted)
            )
        del instances[new_parallelism:]
        event.per_node.append(report)

    # Resume: the whole job was paused for the stop-the-world window.
    resume_at = (
        max(
            [arrival]
            + [
                inst.wall_available
                for insts in executor._instances.values()  # noqa: SLF001
                for inst in insts
            ]
        )
        + event.downtime_seconds
    )
    for insts in executor._instances.values():  # noqa: SLF001
        for inst in insts:
            inst.wall_available = max(inst.wall_available, resume_at)
    executor.current_parallelism = new_parallelism
    return event


def _merge_operator_state(target: dict[str, Any], extra: dict[str, Any]) -> None:
    """Fold a second source's operator-state share into ``target``."""
    for key, sessions in extra["sessions"].items():
        target["sessions"].setdefault(key, []).extend(sessions)
    target["window_keys"].extend(extra["window_keys"])
    target["count_state"].update(extra["count_state"])
    target["pending_aligned"] |= extra["pending_aligned"]
    target["max_timestamp"] = max(target["max_timestamp"], extra["max_timestamp"])
