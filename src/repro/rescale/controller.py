"""Rescale policies: when to change a running job's parallelism.

Two policies drive the migration executor:

* :class:`ScheduledRescale` — fire at predetermined record counts; fully
  deterministic, used by the equivalence tests and the rescale benchmark.
* :class:`RescaleController` — the autoscaler: watches per-observation
  utilization (busy time / wall time of the open-loop arrival clock) and
  scales up when sustained load crosses the high watermark, down when it
  stays under the low watermark.  Hysteresis comes from three guards:
  distinct high/low watermarks, a consecutive-observation patience
  requirement, and a post-rescale cooldown — without them a job sitting
  near one threshold would oscillate, and each oscillation pays a real
  stop-the-world migration.

Utilization needs a wall clock to compare busy time against, which only
exists in open-loop (latency-mode) runs; in throughput mode observations
carry ``utilization=None`` and the controller abstains.  The scheduled
policy only looks at record counts and works in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LoadObservation:
    """One sample of the job's load, taken at a watermark boundary."""

    record_count: int  # records ingested so far
    parallelism: int  # current physical parallelism
    utilization: float | None  # mean busy/wall fraction since last sample
    backlog_seconds: float = 0.0  # worst instance queue backlog (latency mode)


@dataclass
class ScheduledRescale:
    """Rescale to fixed targets at fixed record counts.

    ``schedule`` maps a record count to the target parallelism; each
    entry fires once, the first time an observation reaches its count.
    """

    schedule: dict[int, int]
    _fired: set[int] = field(default_factory=set, init=False)

    def decide(self, observation: LoadObservation) -> int | None:
        due = [
            count
            for count in self.schedule
            if count not in self._fired and observation.record_count >= count
        ]
        if not due:
            return None
        at = max(due)  # collapse several missed thresholds into the last
        self._fired.update(due)
        target = self.schedule[at]
        return target if target != observation.parallelism else None


@dataclass
class RescaleController:
    """Watermark-based autoscaler with hysteresis.

    Scale-up doubles parallelism, scale-down halves it (clamped to
    ``[min_parallelism, max_parallelism]``) — geometric steps keep the
    number of migrations logarithmic in the required capacity change.
    """

    min_parallelism: int = 1
    max_parallelism: int = 16
    high_watermark: float = 0.8  # sustained utilization that triggers scale-up
    low_watermark: float = 0.3  # sustained utilization that triggers scale-down
    patience: int = 3  # consecutive observations beyond a watermark
    cooldown: int = 5  # observations ignored after a rescale

    _high_streak: int = field(default=0, init=False)
    _low_streak: int = field(default=0, init=False)
    _cooldown_left: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high: "
                f"{self.low_watermark} / {self.high_watermark}"
            )
        if self.min_parallelism < 1 or self.max_parallelism < self.min_parallelism:
            raise ValueError("need 1 <= min_parallelism <= max_parallelism")

    def decide(self, observation: LoadObservation) -> int | None:
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        utilization = observation.utilization
        if utilization is None:
            return None
        if utilization >= self.high_watermark:
            self._high_streak += 1
            self._low_streak = 0
        elif utilization <= self.low_watermark:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        current = observation.parallelism
        if self._high_streak >= self.patience and current < self.max_parallelism:
            self._reset_after_decision()
            return min(self.max_parallelism, current * 2)
        if self._low_streak >= self.patience and current > self.min_parallelism:
            self._reset_after_decision()
            return max(self.min_parallelism, current // 2)
        return None

    def _reset_after_decision(self) -> None:
        self._high_streak = 0
        self._low_streak = 0
        self._cooldown_left = self.cooldown
