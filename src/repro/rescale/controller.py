"""Rescale policies: when to change a running job's parallelism.

Two policies drive the migration executor:

* :class:`ScheduledRescale` — fire at predetermined record counts; fully
  deterministic, used by the equivalence tests and the rescale benchmark.
* :class:`RescaleController` — the autoscaler: watches per-observation
  utilization (busy time / wall time of the open-loop arrival clock) and
  scales up when sustained load crosses the high watermark, down when it
  stays under the low watermark.  Hysteresis comes from three guards:
  distinct high/low watermarks, a consecutive-observation patience
  requirement, and a post-rescale cooldown — without them a job sitting
  near one threshold would oscillate, and each oscillation pays a real
  stop-the-world migration.

Utilization needs a wall clock to compare busy time against, which only
exists in open-loop (latency-mode) runs; in throughput mode observations
carry ``utilization=None``.  The controller then falls back to the
*backlog* signal (``backlog_seconds``, which the runtime computes in both
modes — worst queue backlog in latency mode, busy time beyond the
ingested event-time span in throughput mode) when backlog watermarks are
configured; with neither signal available it abstains.  The scheduled
policy only looks at record counts and works in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LoadObservation:
    """One sample of the job's load, taken at a watermark boundary.

    ``backlog_seconds`` is always ``max(per_instance_backlog)`` (when the
    tuple is non-empty): the aggregate the :class:`RescaleController`
    watches and the per-instance breakdown the
    :class:`~repro.rescale.skew.SkewController` watches are one signal,
    computed once by the runtime.  ``group_busy`` carries the cumulative
    per-key-group busy seconds from the runtime's
    :class:`~repro.rescale.skew.GroupLoadTracker` and ``owner_table``
    the routing table the sample was taken under.
    """

    record_count: int  # records ingested so far
    parallelism: int  # current physical parallelism
    utilization: float | None  # mean busy/wall fraction since last sample
    backlog_seconds: float = 0.0  # source-queue backlog estimate (both modes)
    per_instance_backlog: tuple[float, ...] = ()  # same signal, per instance
    owner_table: tuple[int, ...] = ()  # key-group -> instance at sample time
    group_busy: tuple[float, ...] = ()  # cumulative busy seconds per key-group


@dataclass
class ScheduledRescale:
    """Rescale to fixed targets at fixed record counts.

    ``schedule`` maps a record count to the target parallelism; each
    entry fires once, the first time an observation reaches its count.
    """

    schedule: dict[int, int]
    _fired: set[int] = field(default_factory=set, init=False)

    def decide(self, observation: LoadObservation) -> int | None:
        due = [
            count
            for count in self.schedule
            if count not in self._fired and observation.record_count >= count
        ]
        if not due:
            return None
        at = max(due)  # collapse several missed thresholds into the last
        self._fired.update(due)
        target = self.schedule[at]
        return target if target != observation.parallelism else None


@dataclass
class RescaleController:
    """Watermark-based autoscaler with hysteresis.

    Scale-up doubles parallelism, scale-down halves it (clamped to
    ``[min_parallelism, max_parallelism]``) — geometric steps keep the
    number of migrations logarithmic in the required capacity change.

    Two signals feed the same streak/patience machinery:

    * **utilization** (latency mode only) against ``high_watermark`` /
      ``low_watermark``;
    * **backlog** against ``backlog_high_seconds`` /
      ``backlog_low_seconds`` (optional; works in both modes).  Backlog
      above the high threshold counts toward scale-up even when
      utilization is unavailable; sustained backlog at/below the low
      threshold counts toward scale-down *only* when utilization is
      unavailable (a utilization reading is the better under-load
      signal when it exists, and a high utilization must veto a
      low-backlog scale-down).
    """

    min_parallelism: int = 1
    max_parallelism: int = 16
    high_watermark: float = 0.8  # sustained utilization that triggers scale-up
    low_watermark: float = 0.3  # sustained utilization that triggers scale-down
    patience: int = 3  # consecutive observations beyond a watermark
    cooldown: int = 5  # observations ignored after a rescale
    backlog_high_seconds: float | None = None  # sustained backlog -> scale-up
    backlog_low_seconds: float | None = None  # sustained calm -> scale-down

    _high_streak: int = field(default=0, init=False)
    _low_streak: int = field(default=0, init=False)
    _cooldown_left: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high: "
                f"{self.low_watermark} / {self.high_watermark}"
            )
        if self.min_parallelism < 1 or self.max_parallelism < self.min_parallelism:
            raise ValueError("need 1 <= min_parallelism <= max_parallelism")
        if (
            self.backlog_high_seconds is not None
            and self.backlog_low_seconds is not None
            and not 0.0 <= self.backlog_low_seconds < self.backlog_high_seconds
        ):
            raise ValueError(
                f"backlog thresholds must satisfy 0 <= low < high: "
                f"{self.backlog_low_seconds} / {self.backlog_high_seconds}"
            )

    def decide(self, observation: LoadObservation) -> int | None:
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        utilization = observation.utilization
        backlog = observation.backlog_seconds
        backlog_high = (
            self.backlog_high_seconds is not None
            and backlog >= self.backlog_high_seconds
        )
        backlog_low = (
            self.backlog_low_seconds is not None
            and backlog <= self.backlog_low_seconds
        )
        backlog_enabled = (
            self.backlog_high_seconds is not None
            or self.backlog_low_seconds is not None
        )
        if utilization is None and not backlog_enabled:
            return None
        if (utilization is not None and utilization >= self.high_watermark) or backlog_high:
            self._high_streak += 1
            self._low_streak = 0
        elif (utilization is not None and utilization <= self.low_watermark) or (
            utilization is None and backlog_low
        ):
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        current = observation.parallelism
        if self._high_streak >= self.patience and current < self.max_parallelism:
            self._reset_after_decision()
            return min(self.max_parallelism, current * 2)
        if self._low_streak >= self.patience and current > self.min_parallelism:
            self._reset_after_decision()
            return max(self.min_parallelism, current // 2)
        return None

    def _reset_after_decision(self) -> None:
        self._high_streak = 0
        self._low_streak = 0
        self._cooldown_left = self.cooldown
