"""Key-groups: the unit of keyed-state ownership for elastic rescaling.

A job fixes ``max_key_groups`` (G) once, at plan time.  Every key hashes
to one of the G key-groups; each physical operator instance owns a
*contiguous range* of key-groups (Flink's design): with parallelism P,
key-group ``g`` belongs to instance ``g * P // G``.  Rescaling P -> P'
then only moves the key-groups whose owner index changed — an N -> N
"rescale" moves nothing, and every move is a contiguous slice, so state
transfers are sequential range reads rather than a full rehash.

The FlowKV composite facade routes a key to one of its ``m`` store
instances by ``key_group % m``.  Because an operator instance owns a
*contiguous* key-group range while the composite strides it modulo m,
the two levels stay decorrelated (all m stores get an even share), and
the store index of a key never depends on the operator parallelism — a
migrated key-group lands in the "same" store slot on its new owner.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import PlanError

# Canonical in repro.kvstores.api (backends hash keys for dirty tracking
# without depending on the rescale package); re-exported here because
# this module is where ownership-range callers look for them.
from repro.kvstores.api import DEFAULT_MAX_KEY_GROUPS, key_group_of

__all__ = [
    "DEFAULT_MAX_KEY_GROUPS",
    "key_group_of",
    "owner_of",
    "key_group_range",
    "validate_parallelism",
    "moved_key_groups",
    "contiguous_owner_table",
    "moved_groups_from_table",
    "moved_groups_between",
    "groups_owned",
]


def owner_of(key_group: int, max_key_groups: int, parallelism: int) -> int:
    """Index of the operator instance owning ``key_group`` at ``parallelism``."""
    return key_group * parallelism // max_key_groups


def key_group_range(index: int, max_key_groups: int, parallelism: int) -> range:
    """The contiguous key-group range owned by instance ``index``.

    Inverse of :func:`owner_of`: ``g in key_group_range(i, G, P)`` iff
    ``owner_of(g, G, P) == i``.
    """
    if not 0 <= index < parallelism:
        raise PlanError(f"instance index {index} out of range for parallelism {parallelism}")
    start = -(-index * max_key_groups // parallelism)  # ceil
    end = -(-(index + 1) * max_key_groups // parallelism)
    return range(start, end)


def validate_parallelism(parallelism: int, max_key_groups: int) -> None:
    """Every instance must own at least one key-group."""
    if parallelism < 1:
        raise PlanError(f"parallelism must be >= 1: {parallelism}")
    if parallelism > max_key_groups:
        raise PlanError(
            f"parallelism {parallelism} exceeds max_key_groups {max_key_groups}; "
            "key-groups are the unit of state ownership and cannot be split"
        )


def moved_key_groups(
    max_key_groups: int, old_parallelism: int, new_parallelism: int
) -> dict[int, dict[int, list[int]]]:
    """Key-groups whose owner changes under ``old -> new`` parallelism.

    Returns ``{source_index: {destination_index: [key_groups...]}}``; an
    identity rescale returns an empty mapping.
    """
    plan: dict[int, dict[int, list[int]]] = {}
    for group in range(max_key_groups):
        src = owner_of(group, max_key_groups, old_parallelism)
        dst = owner_of(group, max_key_groups, new_parallelism)
        if src != dst:
            plan.setdefault(src, {}).setdefault(dst, []).append(group)
    return plan


def contiguous_owner_table(max_key_groups: int, parallelism: int) -> list[int]:
    """The canonical routing table at ``parallelism``: entry ``g`` is the
    instance index owning key-group ``g`` (contiguous-range layout).

    The runtime routes through an explicit table rather than recomputing
    :func:`owner_of` so that a *live* rescale can flip ownership one
    key-group at a time (per-group routing epochs) and an aborted
    migration can leave a mixed — but still authoritative — assignment.

    Validates up front: with ``parallelism > max_key_groups`` (or a
    non-positive parallelism) the ``g * P // G`` layout would silently
    hand out owner indices while some instances own zero groups —
    callers going through :class:`~repro.engine.plan.StreamEnvironment`
    are already checked, but direct callers were not.
    """
    validate_parallelism(parallelism, max_key_groups)
    return [owner_of(g, max_key_groups, parallelism) for g in range(max_key_groups)]


def moved_groups_from_table(
    table: list[int], new_parallelism: int
) -> dict[int, dict[int, list[int]]]:
    """Key-groups whose owner changes from ``table`` to the contiguous
    layout at ``new_parallelism``.

    Same shape as :func:`moved_key_groups` (``{src: {dst: [groups...]}}``)
    but the *current* owner comes from the routing table, so the plan is
    correct even when a previous aborted live rescale left a
    non-contiguous assignment.
    """
    max_key_groups = len(table)
    plan: dict[int, dict[int, list[int]]] = {}
    for group, src in enumerate(table):
        dst = owner_of(group, max_key_groups, new_parallelism)
        if src != dst:
            plan.setdefault(src, {}).setdefault(dst, []).append(group)
    return plan


def moved_groups_between(
    current: list[int], target: list[int]
) -> dict[int, dict[int, list[int]]]:
    """Key-groups whose owner differs between two routing tables.

    The fully general migration plan (``{src: {dst: [groups...]}}``):
    unlike :func:`moved_groups_from_table` the destination layout is an
    arbitrary table, so a skew split can move exactly the hot groups to
    a balanced placement without touching parallelism.
    """
    if len(current) != len(target):
        raise PlanError(
            f"routing tables disagree on max_key_groups: "
            f"{len(current)} != {len(target)}"
        )
    plan: dict[int, dict[int, list[int]]] = {}
    for group, (src, dst) in enumerate(zip(current, target)):
        if src != dst:
            plan.setdefault(src, {}).setdefault(dst, []).append(group)
    return plan


def groups_owned(
    indices: Iterable[int], max_key_groups: int, parallelism: int
) -> dict[int, list[int]]:
    """Key-groups owned by each of ``indices`` at ``parallelism``."""
    return {
        index: list(key_group_range(index, max_key_groups, parallelism))
        for index in indices
    }
