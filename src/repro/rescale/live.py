"""Live (asynchronous, per-key-group) rescaling.

Instead of freezing the whole job for the export/import window
(:func:`repro.rescale.migration.migrate`), a live rescale:

* **drains once** — every source instance extracts its moved key-groups
  into a :class:`~repro.kvstores.api.StateExportStream` up front, so no
  split-brain window exists where old and new owner both accept state;
* **keeps serving** — records for un-moved (and already cut-over)
  key-groups process normally throughout the transfer;
* **buffers in-transit traffic** — records for a key-group whose state
  is mid-flight wait in a *bounded* per-group transfer queue; a full
  queue forces that group's remaining chunks through synchronously
  (backpressure) instead of growing without bound;
* **cuts over group-by-group** — once a group's last chunk has landed on
  its new owner on every stateful operator, the routing table flips for
  that one group, its buffered records replay on the new owner, and the
  group is live again.  Per-group cutover timing is recorded as
  :class:`~repro.rescale.migration.GroupCutover` entries on the
  :class:`~repro.rescale.migration.RescaleEvent`.

Fault handling composes with the stop-the-world rollback journal at
key-group granularity: a mid-transfer fault rolls back only the groups
that have *not* cut over (their state re-imports at the old owner and
their buffered records replay there); groups that already cut over keep
their new owner, leaving a mixed — but authoritative — routing table
that a later rescale can migrate from.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.cluster.topology import charge_link
from repro.errors import (
    DiskIOError,
    InjectedCrashError,
    PlanError,
    SnapshotCorruptError,
)
from repro.faults import CRASH_MIGRATE_EXPORT, CRASH_MIGRATE_IMPORT
from repro.kvstores.api import (
    CAP_INCREMENTAL,
    CAP_RESCALE,
    DEFAULT_CHUNK_BYTES,
    StateExport,
    StateExportStream,
    require_capability,
)
from repro.rescale.keygroups import (
    contiguous_owner_table,
    key_group_of,
    moved_groups_between,
    moved_groups_from_table,
    validate_parallelism,
)
from repro.rescale.migration import (
    GroupCutover,
    NodeMigration,
    RescaleEvent,
    _transfer,
)
from repro.simenv import CAT_RECOVERY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import LogicalNode
    from repro.engine.runtime import Executor, PhysicalInstance
    from repro.model import StreamRecord

# Per-(node, key-group) bound on records buffered while the group is in
# transit; hitting it forces the group's cutover (backpressure).
DEFAULT_QUEUE_LIMIT = 256


def _split_state_by_group(
    state: dict[str, Any], kg_of, groups: set[int]
) -> dict[int, dict[str, Any]]:
    """Partition exported operator metadata per key-group.

    Keyed pieces follow their key's group; ``pending_aligned`` windows
    and the max timestamp are replicated to every group (key-independent
    trigger metadata — importing them twice is idempotent).
    """
    parts = {
        group: {
            "sessions": {},
            "window_keys": [],
            "count_state": {},
            "pending_aligned": set(state["pending_aligned"]),
            "max_timestamp": state["max_timestamp"],
        }
        for group in groups
    }
    for key, sessions in state["sessions"].items():
        parts[kg_of(key)]["sessions"][key] = sessions
    for window, keys in state["window_keys"]:
        per_group: dict[int, set[bytes]] = {}
        for key in keys:
            per_group.setdefault(kg_of(key), set()).add(key)
        for group, moved in per_group.items():
            parts[group]["window_keys"].append((window, moved))
    for key, value in state["count_state"].items():
        parts[kg_of(key)]["count_state"][key] = value
    return parts


class LiveMigration:
    """One in-flight live rescale, driven by the executor's record loop.

    Constructing the object performs the drain (synchronous, like the
    stop-the-world export phase but without the transfer); after that the
    executor calls :meth:`advance` once per ingested record to move one
    chunk per transfer channel, and :meth:`intercept` from the routing
    path to buffer records aimed at in-transit groups.  ``done`` flips
    when every group has cut over (commit) or a fault rolled the
    remainder back (``event.aborted``).
    """

    def __init__(
        self,
        executor: "Executor",
        new_parallelism: int,
        arrival: float = 0.0,
        at_record: int = 0,
        chunk_bytes: int | None = None,
        queue_limit: int | None = None,
        seed_source: Any = None,
        target_table: list[int] | None = None,
        reason: str = "scale",
        hot_groups: list[int] | None = None,
    ) -> None:
        plan = executor._plan  # noqa: SLF001 - the executor's rescale back-half
        self._exec = executor
        # Optional repro.recovery.CheckpointSeedSource: moved key-groups
        # that are *clean* since the last checkpoint are landed at the
        # destination from that checkpoint's shards (checkpoint-read I/O)
        # instead of being streamed live; only dirtied groups pay
        # live-transfer bytes — O(state) becomes O(delta).
        self._seed = seed_source
        self._G = plan.max_key_groups
        validate_parallelism(new_parallelism, self._G)
        self._new_parallelism = new_parallelism
        self._chunk_bytes = chunk_bytes or DEFAULT_CHUNK_BYTES
        self._queue_limit = max(1, queue_limit or DEFAULT_QUEUE_LIMIT)
        self._faults = plan.faults
        old_parallelism = executor.current_parallelism
        # With an explicit target table (a skew split) the migration
        # lands on that exact — generally non-contiguous — assignment;
        # without one it normalizes to the contiguous layout at
        # ``new_parallelism``.
        self._target_table = list(target_table) if target_table is not None else None
        if self._target_table is not None:
            if len(self._target_table) != self._G:
                raise PlanError(
                    f"target table has {len(self._target_table)} entries, "
                    f"expected {self._G}"
                )
            for group, owner in enumerate(self._target_table):
                if not 0 <= owner < new_parallelism:
                    raise PlanError(
                        f"target table assigns group {group} to instance "
                        f"{owner}, outside parallelism {new_parallelism}"
                    )
            move_plan = moved_groups_between(executor.group_owner, self._target_table)
        else:
            move_plan = moved_groups_from_table(executor.group_owner, new_parallelism)
        self.event = RescaleEvent(
            at_record=at_record,
            old_parallelism=old_parallelism,
            new_parallelism=new_parallelism,
            moved_groups=sum(
                len(groups) for dsts in move_plan.values() for groups in dsts.values()
            ),
            mode="live",
            reason=reason,
            hot_groups=sorted(hot_groups or []),
        )
        self.done = False
        self._nodes = list(executor._stateful_nodes)  # noqa: SLF001
        if move_plan:
            for node in self._nodes:
                backend = executor._instances[node.node_id][0].operator.backend  # noqa: SLF001
                require_capability(backend, CAP_RESCALE, "export_state")

        self._group_src: dict[int, int] = {}
        self._group_dst: dict[int, int] = {}
        for src, dsts in move_plan.items():
            for dst, groups in dsts.items():
                for group in groups:
                    self._group_src[group] = src
                    self._group_dst[group] = dst
        self._in_transit: set[int] = set(self._group_src)
        # (node_id, src) -> export stream / queue of groups still sending.
        self._streams: dict[tuple[int, int], StateExportStream] = {}
        self._queues: dict[tuple[int, int], deque[int]] = {}
        # (node_id, group) -> keyed operator metadata awaiting import.
        self._pieces: dict[tuple[int, int], dict[str, Any]] = {}
        # group -> node_ids whose new owner finished importing the group.
        self._landed: dict[int, set[int]] = {g: set() for g in self._in_transit}
        # (node_id, group) -> buffered [(record, would-have-started stamp)].
        self._buffers: dict[tuple[int, int], list[tuple[Any, float]]] = {}
        self._cuts: dict[int, GroupCutover] = {}
        self._reports: dict[int, NodeMigration] = {}
        self._old_len = {
            node.node_id: len(executor._instances[node.node_id])  # noqa: SLF001
            for node in self._nodes
        }

        for node in self._nodes:
            report = NodeMigration(node=node.name)
            self._reports[node.node_id] = report
            self.event.per_node.append(report)
            instances = executor._instances[node.node_id]  # noqa: SLF001
            for index in range(len(instances), new_parallelism):
                instances.append(executor._new_instance(node, index))  # noqa: SLF001

        def kg_of(key: bytes) -> int:
            return key_group_of(key, self._G)

        self._kg_of = kg_of
        try:
            self._drain(move_plan, arrival)
        except (InjectedCrashError, DiskIOError):
            self._abort(arrival)
            return
        # An all-seeded rescale may already have committed via the last
        # group's cutover during the drain.
        if not self.done and not self._in_transit:
            self._commit(arrival)

    # ------------------------------------------------------------------
    @staticmethod
    def _bump(instance: "PhysicalInstance", arrival: float, seconds: float) -> None:
        """Migration work occupies the instance: push its wall clock."""
        if seconds > 0.0:
            instance.wall_available = max(arrival, instance.wall_available) + seconds

    def _cut_of(self, group: int) -> GroupCutover:
        cut = self._cuts.get(group)
        if cut is None:
            cut = self._cuts[group] = GroupCutover(group=group)
        return cut

    def _drain(self, move_plan: dict[int, dict[int, list[int]]], arrival: float) -> None:
        """Extract every moved key-group from its source, up front.

        With a checkpoint seed source, moved groups that are *clean*
        since the last checkpoint (dirty set captured before the drain
        itself marks them) are landed at the destination straight from
        the checkpoint's shards and skip the live transfer entirely; the
        drained copy still serves as the rollback journal.  A corrupt or
        missing shard silently demotes that group to the live path.
        """
        for node in self._nodes:
            instances = self._exec._instances[node.node_id]  # noqa: SLF001
            report = self._reports[node.node_id]
            for src, dsts in sorted(move_plan.items()):
                source = instances[src]
                backend = source.operator.backend
                if self._faults is not None:
                    self._faults.crash_point(
                        CRASH_MIGRATE_EXPORT, now_fn=lambda s=source: s.env.now
                    )
                groups = {g for group_list in dsts.values() for g in group_list}
                # Clean groups are seed candidates; the dirty set must be
                # read *before* export_state marks every drained key.
                candidates: set[int] = set()
                if (
                    self._seed is not None
                    and CAP_INCREMENTAL in backend.capabilities
                    and getattr(backend, "checkpoint_key_groups", None) == self._G
                ):
                    candidates = groups - set(backend.dirty_groups())
                before = source.env.clock.now
                stream = StateExportStream(
                    backend, groups, self._kg_of, self._chunk_bytes
                )
                state = source.operator.export_keyed_state(groups, self._kg_of)
                elapsed = source.env.clock.now - before
                report.export_seconds = max(report.export_seconds, elapsed)
                self._bump(source, arrival, elapsed)
                self._streams[(node.node_id, src)] = stream
                self._queues[(node.node_id, src)] = deque(stream.groups())
                for group, piece in _split_state_by_group(
                    state, self._kg_of, groups
                ).items():
                    self._pieces[(node.node_id, group)] = piece
                seed_key = f"op{node.node_id}/p{src}"
                seed_entries: dict[int, list[Any]] = {}
                deliver = getattr(self._seed, "charge_delivery", None)
                for group in sorted(candidates):
                    ref = self._seed.shard_ref(seed_key, group, self._G)
                    if ref is None:
                        continue
                    try:
                        entries = self._seed.read_entries(ref)
                        if deliver is not None:
                            # Standby-held seeds travel over the priced
                            # network to the destination's node.
                            deliver(
                                ref,
                                self._exec.cluster_node_of(self._group_dst[group]),
                                sum(e.payload_bytes for e in entries),
                            )
                    except (SnapshotCorruptError, DiskIOError):
                        # Demote this group to the live streaming path.
                        continue
                    seed_entries[group] = entries
                    stream.skip_transfer(group)
                for group in groups:
                    entries = stream.entries_of(group)
                    report.entries_moved += len(entries)
                    size = sum(e.payload_bytes for e in entries)
                    if group in seed_entries:
                        report.seeded_groups += 1
                        report.seeded_bytes += size
                    else:
                        report.bytes_moved += size
                for group in sorted(seed_entries):
                    self._land_entries(node, group, arrival, seed_entries[group])

    # ------------------------------------------------------------------
    def advance(self, arrival: float) -> None:
        """Move one chunk on every transfer channel (called per record)."""
        if self.done:
            return
        try:
            for (node_id, src), queue in self._queues.items():
                stream = self._streams[(node_id, src)]
                while queue and not stream.has_more(queue[0]):
                    queue.popleft()  # completed out of order (forced cutover)
                if queue:
                    self._send_chunk(node_id, src, queue[0], arrival)
        except (InjectedCrashError, DiskIOError):
            self._abort(arrival)

    def intercept(self, node: "LogicalNode", record: "StreamRecord", arrival: float) -> bool:
        """Routing hook: buffer a record aimed at an in-transit group.

        Returns True when the record was buffered (the caller must not
        process it now).  A full transfer queue forces the group's
        remaining chunks through synchronously and returns False — the
        record then routes to wherever the (updated) table points.
        """
        if self.done:
            return False
        group = self._kg_of(record.key)
        if group not in self._in_transit:
            return False
        buffer = self._buffers.setdefault((node.node_id, group), [])
        if len(buffer) >= self._queue_limit:
            self._cut_of(group).forced = True
            try:
                self._force_cutover(group, arrival)
            except (InjectedCrashError, DiskIOError):
                self._abort(arrival)
            return False
        # Stamp with the migration work already done for this group: the
        # delay a buffered record observes is the group's *remaining*
        # transfer+import work (foreground processing would queue in
        # front of it either way, so only migration-caused stall counts
        # — the per-group analogue of the stop-the-world gap).
        cut = self._cut_of(group)
        buffer.append((record, cut.transfer_seconds + cut.import_seconds))
        return True

    def drain_to_completion(self, arrival: float) -> None:
        """Finish the transfer synchronously (end-of-input)."""
        while not self.done:
            self.advance(arrival)

    # ------------------------------------------------------------------
    def _send_chunk(self, node_id: int, src: int, group: int, arrival: float) -> None:
        stream = self._streams[(node_id, src)]
        chunk = stream.next_chunk(group)
        node = next(n for n in self._nodes if n.node_id == node_id)
        instances = self._exec._instances[node_id]  # noqa: SLF001
        source = instances[src]
        dst = self._group_dst[group]
        destination = instances[dst]
        cut = self._cut_of(group)
        before = source.env.clock.now
        _transfer(
            source.env, f"{node.name}/src{src}", chunk.total_bytes,
            len(chunk), self._faults,
        )
        elapsed = source.env.clock.now - before
        self._bump(source, arrival, elapsed)
        cut.transfer_seconds += elapsed
        before = destination.env.clock.now
        cluster = self._exec._plan.cluster  # noqa: SLF001
        if cluster is not None:
            # Cross-node chunk: the receiver waits out the link time.  A
            # dropped link raises DiskIOError here, escalating to the
            # partial rollback exactly like a failed transfer charge.
            charge_link(
                destination.env, cluster.network,
                source.cluster_node, destination.cluster_node,
                chunk.total_bytes, f"net/migrate/{node.name}/g{group}",
                self._faults,
            )
        _transfer(
            destination.env, f"{node.name}/dst{dst}", chunk.total_bytes,
            len(chunk), self._faults,
        )
        elapsed = destination.env.clock.now - before
        self._bump(destination, arrival, elapsed)
        cut.transfer_seconds += elapsed
        if chunk.last:
            self._land(node, group, arrival)

    def _land(self, node: "LogicalNode", group: int, arrival: float) -> None:
        """All chunks of ``group`` arrived for ``node``: import the
        streamed entries at the new owner."""
        stream = self._streams[(node.node_id, self._group_src[group])]
        self._land_entries(node, group, arrival, list(stream.entries_of(group)))

    def _land_entries(
        self, node: "LogicalNode", group: int, arrival: float, entries: list[Any]
    ) -> None:
        """Import one group's entries (streamed or checkpoint-seeded) at
        the new owner; cut the group over once every node has landed it."""
        instances = self._exec._instances[node.node_id]  # noqa: SLF001
        destination = instances[self._group_dst[group]]
        if self._faults is not None:
            self._faults.crash_point(
                CRASH_MIGRATE_IMPORT, now_fn=lambda d=destination: d.env.now
            )
        before = destination.env.clock.now
        destination.operator.backend.import_state(StateExport(list(entries)))
        piece = self._pieces.pop((node.node_id, group), None)
        if piece is not None:
            destination.operator.import_keyed_state(piece)
        elapsed = destination.env.clock.now - before
        self._bump(destination, arrival, elapsed)
        report = self._reports[node.node_id]
        report.import_seconds = max(report.import_seconds, elapsed)
        cut = self._cut_of(group)
        cut.import_seconds += elapsed
        landed = self._landed[group]
        landed.add(node.node_id)
        if len(landed) == len(self._nodes):
            self._cutover(group, arrival)

    def _cutover(self, group: int, arrival: float) -> None:
        """Flip routing for one group and replay its buffered records."""
        from repro.engine.batch import record_bytes  # circular at module load
        self._in_transit.discard(group)
        self._exec.group_owner[group] = self._group_dst[group]
        cut = self._cut_of(group)
        cut.cutover_at = arrival
        src = self._group_src[group]
        migration_work = cut.transfer_seconds + cut.import_seconds
        for node in self._nodes:
            self._streams[(node.node_id, src)].commit(group)
            destination = self._exec._instances[node.node_id][self._group_dst[group]]  # noqa: SLF001
            buffered = self._buffers.pop((node.node_id, group), [])
            cut.buffered_records += len(buffered)
            for record, stamp in buffered:
                cut.max_record_delay = max(
                    cut.max_record_delay, max(0.0, migration_work - stamp)
                )
                service = self._exec._run_unit(  # noqa: SLF001
                    node, destination, arrival,
                    lambda r=record, d=destination: d.operator.process(r),
                )
                self._exec.load_tracker.record(
                    group, self._group_dst[group], destination.cluster_node,
                    1, len(record.key) + record_bytes(record.value), service,
                )
        self.event.cutovers.append(cut)
        if not self._in_transit:
            self._commit(arrival)

    def _force_cutover(self, group: int, arrival: float) -> None:
        """Backpressure: complete one group's transfer synchronously."""
        src = self._group_src[group]
        for node in self._nodes:
            stream = self._streams[(node.node_id, src)]
            while stream.has_more(group):
                self._send_chunk(node.node_id, src, group, arrival)

    # ------------------------------------------------------------------
    def _commit(self, arrival: float) -> None:
        """Every group cut over: retire emptied instances, normalize."""
        executor = self._exec
        for node in self._nodes:
            instances = executor._instances[node.node_id]  # noqa: SLF001
            for retired in instances[self._new_parallelism:]:
                retired.operator.backend.close()
                executor._retired.setdefault(node.node_id, []).append(  # noqa: SLF001
                    (retired.env.ledger.snapshot(), retired.env.clock.now,
                     retired.operator.results_emitted)
                )
            del instances[self._new_parallelism:]
        executor.current_parallelism = self._new_parallelism
        if self._target_table is not None:
            executor.group_owner[:] = self._target_table
        else:
            executor.group_owner[:] = contiguous_owner_table(
                self._G, self._new_parallelism
            )
        self.done = True

    def _abort(self, arrival: float) -> None:
        """Roll back every group that has not cut over.

        The old owner re-imports each such group from the stream's
        rollback copy (plus the keyed operator metadata — pulled back out
        of any destination that already imported it) and the group's
        buffered records replay at the old owner.  Cut-over groups are
        untouched: their new ownership survives the abort.
        """
        from repro.engine.batch import record_bytes  # circular at module load

        executor = self._exec
        remaining = sorted(self._in_transit)
        self.event.aborted = True
        self.event.rolled_back_groups = len(remaining)
        for group in remaining:
            src = self._group_src.get(group, 0)
            for node in self._nodes:
                instances = executor._instances[node.node_id]  # noqa: SLF001
                stream = self._streams.get((node.node_id, src))
                if stream is None:
                    continue  # this node never drained: state never left
                source = instances[src]
                piece = self._pieces.pop((node.node_id, group), None)
                if node.node_id in self._landed.get(group, set()):
                    # The destination already imported this group:
                    # export-and-discard there, re-import the (fresher)
                    # keyed metadata it hands back.
                    destination = instances[self._group_dst[group]]
                    undone = destination.operator.backend.export_state(
                        {group}, self._kg_of
                    )
                    piece = destination.operator.export_keyed_state(
                        {group}, self._kg_of
                    )
                    destination.env.charge_cpu(
                        CAT_RECOVERY,
                        destination.env.cpu.syscall
                        + undone.total_bytes * destination.env.cpu.copy_per_byte,
                    )
                entries = stream.rollback_entries(group)
                source.env.charge_cpu(
                    CAT_RECOVERY,
                    source.env.cpu.syscall
                    + sum(e.payload_bytes for e in entries)
                    * source.env.cpu.copy_per_byte,
                )
                source.operator.backend.import_state(StateExport(entries))
                if piece is not None:
                    source.operator.import_keyed_state(piece)
                # The group serves at its old owner again; its buffered
                # records were never processed — replay them there.
                for record, _stamp in self._buffers.pop((node.node_id, group), []):
                    service = self._exec._run_unit(  # noqa: SLF001
                        node, source, arrival,
                        lambda r=record, s=source: s.operator.process(r),
                    )
                    self._exec.load_tracker.record(
                        group, src, source.cluster_node,
                        1, len(record.key) + record_bytes(record.value), service,
                    )
            self._in_transit.discard(group)
        if self.event.cutovers:
            # Partial cutover survived: keep every instance that now owns
            # groups; the mixed routing table stays authoritative.
            executor.current_parallelism = max(
                len(executor._instances[node.node_id]) for node in self._nodes  # noqa: SLF001
            ) if self._nodes else self.event.old_parallelism
        else:
            # Nothing cut over: drop the instances created for the new
            # topology and restore the pre-migration shape exactly.
            for node in self._nodes:
                instances = executor._instances[node.node_id]  # noqa: SLF001
                old_len = self._old_len[node.node_id]
                for created in instances[old_len:]:
                    created.operator.backend.close()
                del instances[old_len:]
            executor.current_parallelism = self.event.old_parallelism
        self.done = True
