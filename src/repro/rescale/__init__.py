"""Elastic rescaling: key-group state partitioning, migration, autoscaling.

Public surface:

* :mod:`repro.rescale.keygroups` — the key-group hash, contiguous
  ownership ranges (Flink-style) and the explicit routing table, fixed
  by ``max_key_groups`` at plan time;
* :mod:`repro.rescale.migration` — the stop-the-world migration executor
  (drain → export → redeploy → import → resume) with per-operator
  downtime and bytes-moved accounting;
* :mod:`repro.rescale.live` — the asynchronous migration: chunked
  per-key-group transfer, bounded buffer-and-replay for in-transit
  groups, per-group cutover, partial rollback on faults;
* :mod:`repro.rescale.controller` — when to rescale: a deterministic
  schedule or a utilization/backlog-watermark autoscaler with
  hysteresis;
* :mod:`repro.rescale.skew` — hot-key-group detection and splitting:
  always-on per-group load accounting, greedy balanced placement, and
  the :class:`~repro.rescale.skew.SkewController` that re-places hot
  groups through the live migration machinery without changing
  parallelism.
"""

from repro.rescale.controller import (
    LoadObservation,
    RescaleController,
    ScheduledRescale,
)
from repro.rescale.keygroups import (
    DEFAULT_MAX_KEY_GROUPS,
    contiguous_owner_table,
    groups_owned,
    key_group_of,
    key_group_range,
    moved_groups_between,
    moved_groups_from_table,
    moved_key_groups,
    owner_of,
    validate_parallelism,
)
from repro.rescale.live import LiveMigration
from repro.rescale.migration import (
    GroupCutover,
    NodeMigration,
    RescaleEvent,
    migrate,
)
from repro.rescale.skew import (
    GroupLoadTracker,
    SkewController,
    SplitDecision,
    balanced_owner_table,
)

__all__ = [
    "DEFAULT_MAX_KEY_GROUPS",
    "GroupCutover",
    "GroupLoadTracker",
    "LiveMigration",
    "LoadObservation",
    "NodeMigration",
    "RescaleController",
    "RescaleEvent",
    "ScheduledRescale",
    "SkewController",
    "SplitDecision",
    "balanced_owner_table",
    "contiguous_owner_table",
    "groups_owned",
    "key_group_of",
    "key_group_range",
    "migrate",
    "moved_groups_between",
    "moved_groups_from_table",
    "moved_key_groups",
    "owner_of",
    "validate_parallelism",
]
