"""Elastic rescaling: key-group state partitioning, migration, autoscaling.

Public surface:

* :mod:`repro.rescale.keygroups` — the key-group hash and contiguous
  ownership ranges (Flink-style), fixed by ``max_key_groups`` at plan
  time;
* :mod:`repro.rescale.migration` — the stop-the-world migration executor
  (drain → export → redeploy → import → resume) with per-operator
  downtime and bytes-moved accounting;
* :mod:`repro.rescale.controller` — when to rescale: a deterministic
  schedule or a utilization-watermark autoscaler with hysteresis.
"""

from repro.rescale.controller import (
    LoadObservation,
    RescaleController,
    ScheduledRescale,
)
from repro.rescale.keygroups import (
    DEFAULT_MAX_KEY_GROUPS,
    groups_owned,
    key_group_of,
    key_group_range,
    moved_key_groups,
    owner_of,
    validate_parallelism,
)
from repro.rescale.migration import NodeMigration, RescaleEvent, migrate

__all__ = [
    "DEFAULT_MAX_KEY_GROUPS",
    "LoadObservation",
    "NodeMigration",
    "RescaleController",
    "RescaleEvent",
    "ScheduledRescale",
    "groups_owned",
    "key_group_of",
    "key_group_range",
    "migrate",
    "moved_key_groups",
    "owner_of",
    "validate_parallelism",
]
