"""Hot-key-group detection and splitting.

The contiguous key-group layout (``owner_of``) assumes uniform load;
under a Zipf-skewed key population one hot group can pin a node while
its peers idle, and the autoscaler — which only sees aggregate load —
would add instances without moving the hot group anywhere.  This module
closes that gap with three pieces:

* :class:`GroupLoadTracker` — always-on per-key-group load accounting
  (records, state bytes, busy seconds), maintained by the runtime on the
  normal keyed routing path.  Pure-Python bookkeeping: it charges
  nothing to the simulated ledgers, so runs are charge-identical with
  tracking on.  Counters are *global per group* — they travel with the
  group across live migrations — and increment at the same call sites
  as the per-instance/per-node mirrors, so group totals sum exactly to
  instance and node totals by construction.  Recovery builds a fresh
  executor (and a fresh tracker) per restore, so counters reset with
  the topology they describe.
* :func:`balanced_owner_table` — greedy longest-processing-time
  placement of key-groups onto instances by measured load, replacing
  the naive contiguous ranges when skew is detected.  Zero-load groups
  keep their current owner, so the split moves only groups that matter.
* :class:`SkewController` — a rescale policy that watches the per-group
  busy deltas between watermark boundaries and, when one instance's
  share of the window's work exceeds ``imbalance_threshold`` times the
  mean for ``patience`` consecutive observations, returns a
  :class:`SplitDecision` re-placing the groups via the live per-group
  migration machinery.  It optionally *wraps* a scale policy (e.g.
  :class:`~repro.rescale.controller.RescaleController`): both read the
  same :class:`~repro.rescale.controller.LoadObservation` signal path,
  a scale decision always wins the boundary, and every scale decision
  (or externally observed parallelism change) resets the skew streak
  and starts a cooldown — a split can never race a scale-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.rescale.controller import LoadObservation


class GroupLoadTracker:
    """Per-key-group / per-instance / per-node keyed-work counters.

    All three axes are incremented together for every unit of keyed work
    the runtime routes, so for each of ``records``, ``bytes`` and
    ``busy_seconds``::

        sum over groups == sum over instances == sum over nodes

    (exactly for the integer counters; busy seconds distribute a batch's
    service time across its groups with the last group taking the float
    remainder, so the per-call shares still sum exactly).

    Instance entries are cumulative per instance *index* — an index
    retired by a scale-down keeps its history, and its successor after a
    later scale-up keeps appending to it.
    """

    def __init__(self, max_key_groups: int) -> None:
        self.max_key_groups = max_key_groups
        self.group_records = [0] * max_key_groups
        self.group_bytes = [0] * max_key_groups
        self.group_busy = [0.0] * max_key_groups
        self.instance_records: dict[int, int] = {}
        self.instance_bytes: dict[int, int] = {}
        self.instance_busy: dict[int, float] = {}
        self.node_records: dict[int, int] = {}
        self.node_bytes: dict[int, int] = {}
        self.node_busy: dict[int, float] = {}

    def record(
        self, group: int, instance: int, node: int,
        n_records: int, n_bytes: int, busy: float,
    ) -> None:
        """Account one unit of keyed work (per-tuple path)."""
        self.group_records[group] += n_records
        self.group_bytes[group] += n_bytes
        self.group_busy[group] += busy
        self.instance_records[instance] = (
            self.instance_records.get(instance, 0) + n_records
        )
        self.instance_bytes[instance] = self.instance_bytes.get(instance, 0) + n_bytes
        self.instance_busy[instance] = self.instance_busy.get(instance, 0.0) + busy
        self.node_records[node] = self.node_records.get(node, 0) + n_records
        self.node_bytes[node] = self.node_bytes.get(node, 0) + n_bytes
        self.node_busy[node] = self.node_busy.get(node, 0.0) + busy

    def record_many(
        self, instance: int, node: int,
        group_rows: list[tuple[int, int, int]], busy: float,
    ) -> None:
        """Account one batched work unit.

        ``group_rows`` is ``[(group, n_records, n_bytes), ...]``; the
        unit's service time is split across groups proportionally to
        record count, with the last group taking the exact remainder so
        the shares sum to ``busy`` bit-for-bit.
        """
        total_records = sum(n for _g, n, _b in group_rows)
        spent = 0.0
        for i, (group, n_records, n_bytes) in enumerate(group_rows):
            if i == len(group_rows) - 1:
                share = busy - spent
            else:
                share = busy * n_records / total_records if total_records else 0.0
                spent += share
            self.group_records[group] += n_records
            self.group_bytes[group] += n_bytes
            self.group_busy[group] += share
        self.instance_records[instance] = (
            self.instance_records.get(instance, 0) + total_records
        )
        n_bytes = sum(b for _g, _n, b in group_rows)
        self.instance_bytes[instance] = self.instance_bytes.get(instance, 0) + n_bytes
        self.instance_busy[instance] = self.instance_busy.get(instance, 0.0) + busy
        self.node_records[node] = self.node_records.get(node, 0) + total_records
        self.node_bytes[node] = self.node_bytes.get(node, 0) + n_bytes
        self.node_busy[node] = self.node_busy.get(node, 0.0) + busy

    def summary(self) -> dict[str, Any]:
        """Sparse JSON-stable view for ``JobResult.group_load``."""
        groups = {
            g: {
                "records": self.group_records[g],
                "bytes": self.group_bytes[g],
                "busy_seconds": self.group_busy[g],
            }
            for g in range(self.max_key_groups)
            if self.group_records[g] or self.group_busy[g]
        }
        instances = {
            i: {
                "records": self.instance_records.get(i, 0),
                "bytes": self.instance_bytes.get(i, 0),
                "busy_seconds": self.instance_busy.get(i, 0.0),
            }
            for i in sorted(self.instance_records)
        }
        nodes = {
            n: {
                "records": self.node_records.get(n, 0),
                "bytes": self.node_bytes.get(n, 0),
                "busy_seconds": self.node_busy.get(n, 0.0),
            }
            for n in sorted(self.node_records)
        }
        return {"groups": groups, "instances": instances, "nodes": nodes}


def balanced_owner_table(
    loads: list[float], parallelism: int, current: list[int]
) -> list[int]:
    """Greedy balanced placement of key-groups by measured load.

    Groups with nonzero load are assigned largest-first to the
    least-loaded instance (longest-processing-time scheduling, within
    4/3 of optimal makespan); ties prefer the group's current owner so
    an already-balanced assignment moves nothing, then the lowest
    instance index for determinism.  Zero-load groups keep their current
    owner — a split never shuffles state nobody is touching.
    """
    table = list(current)
    assigned = [0.0] * parallelism
    active = sorted(
        ((load, group) for group, load in enumerate(loads) if load > 0.0),
        key=lambda pair: (-pair[0], pair[1]),
    )
    for load, group in active:
        best = min(
            range(parallelism),
            key=lambda i: (assigned[i], 0 if i == current[group] else 1, i),
        )
        table[group] = best
        assigned[best] += load
    return table


@dataclass(frozen=True)
class SplitDecision:
    """A skew split: re-place key-groups without changing parallelism.

    Returned by :meth:`SkewController.decide`; the executor migrates to
    ``table`` with the live per-group machinery and records the event
    with ``reason="skew-split"`` and these ``hot_groups``.
    """

    table: tuple[int, ...]
    hot_groups: tuple[int, ...]


@dataclass
class SkewController:
    """Detect hot key-groups and split them off via balanced placement.

    Detection runs on the *windowed* per-group busy deltas between
    observations (both latency and throughput mode accumulate busy
    time): project the window's work onto the current owner table and
    compare the busiest instance against the mean.  An imbalance
    sustained for ``patience`` observations yields a
    :class:`SplitDecision` whose table comes from
    :func:`balanced_owner_table` over the same window.

    ``scale_policy`` (optional) is consulted first with the identical
    observation; any scale decision is returned as-is, resets the skew
    streak and starts the skew cooldown, so a split never fires while a
    scale-out is pending or in flight.  A parallelism change the
    controller did not decide (an external schedule, a recovery) resets
    the detection window the same way.
    """

    imbalance_threshold: float = 2.0  # busiest instance vs mean, >= 1
    patience: int = 2  # consecutive imbalanced observations
    cooldown: int = 5  # observations ignored after any decision
    min_improvement: float = 1.2  # required max-load reduction factor
    min_split_records: int = 200  # records a streak must span before acting
    scale_policy: Any = None  # optional decide(LoadObservation) delegate

    _streak: int = field(default=0, init=False)
    _cooldown_left: int = field(default=0, init=False)
    _last_busy: tuple[float, ...] | None = field(default=None, init=False)
    _streak_base: tuple[float, ...] | None = field(default=None, init=False)
    _streak_start_count: int = field(default=0, init=False)
    _last_parallelism: int | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.imbalance_threshold < 1.0:
            raise ValueError(
                f"imbalance_threshold must be >= 1: {self.imbalance_threshold}"
            )
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1: {self.patience}")
        if self.min_improvement < 1.0:
            raise ValueError(
                f"min_improvement must be >= 1: {self.min_improvement}"
            )

    def decide(self, observation: LoadObservation) -> Any:
        window = self._window(observation)
        if self.scale_policy is not None:
            target = self.scale_policy.decide(observation)
            if target is not None:
                self._quiesce()
                return target
        if (
            self._last_parallelism is not None
            and observation.parallelism != self._last_parallelism
        ):
            # Someone else rescaled (schedule, recovery): the measured
            # window straddles two topologies — start over.
            self._quiesce()
            self._last_parallelism = observation.parallelism
            return None
        self._last_parallelism = observation.parallelism
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        if window is None:
            return None
        owner = observation.owner_table
        parallelism = observation.parallelism
        if len(owner) != len(window) or parallelism < 2:
            return None
        per_instance = [0.0] * parallelism
        for group, load in enumerate(window):
            per_instance[owner[group]] += load
        total = sum(per_instance)
        if total <= 0.0:
            self._streak = 0
            return None
        mean = total / parallelism
        if max(per_instance) >= self.imbalance_threshold * mean:
            if self._streak == 0:
                # Placement decides on the load accumulated over the
                # whole streak, not one (noisy) boundary window.
                self._streak_base = tuple(
                    now - delta for now, delta in zip(observation.group_busy, window)
                )
                self._streak_start_count = observation.record_count
            self._streak += 1
        else:
            self._streak = 0
            self._streak_base = None
        if self._streak < self.patience:
            return None
        if (
            observation.record_count - self._streak_start_count
            < self.min_split_records
        ):
            # Sustained, but not yet enough data for a stable placement:
            # keep the streak running and accumulate more window.
            return None
        assert self._streak_base is not None
        accumulated = tuple(
            now - base for now, base in zip(observation.group_busy, self._streak_base)
        )
        self._quiesce()
        table = balanced_owner_table(list(accumulated), parallelism, list(owner))
        if table == list(owner):
            return None
        # A single dominant group keeps the imbalance metric high under
        # *any* placement (its instance's load is at least that group's
        # load) — splitting again would just churn state.  Move only
        # when the balanced table beats the current one by a real margin.
        current = [0.0] * parallelism
        projected = [0.0] * parallelism
        for group, load in enumerate(accumulated):
            current[owner[group]] += load
            projected[table[group]] += load
        if max(current) < self.min_improvement * max(projected):
            return None
        return SplitDecision(
            table=tuple(table), hot_groups=tuple(self._hot_groups(accumulated))
        )

    # ------------------------------------------------------------------
    def _window(self, observation: LoadObservation) -> tuple[float, ...] | None:
        """Per-group busy delta since the previous observation.

        The first observation only primes the window (cumulative totals
        would blame a group for work done long before the imbalance).
        """
        current = observation.group_busy
        if not current:
            return None
        previous, self._last_busy = self._last_busy, current
        if previous is None or len(previous) != len(current):
            return None
        return tuple(now - then for now, then in zip(current, previous))

    def _hot_groups(self, window: tuple[float, ...]) -> list[int]:
        """Groups carrying an outsized share of the window's work."""
        active = [load for load in window if load > 0.0]
        if not active:
            return []
        cutoff = self.imbalance_threshold * (sum(active) / len(active))
        return [g for g, load in enumerate(window) if load >= cutoff]

    def _quiesce(self) -> None:
        self._streak = 0
        self._streak_base = None
        self._cooldown_left = self.cooldown
