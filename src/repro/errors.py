"""Exception hierarchy for the FlowKV reproduction.

Every failure mode the paper's evaluation exercises (out-of-memory heap
state, simulated-time job timeouts, misuse of store APIs) maps to a typed
exception so that the benchmark harness can distinguish "crossed bar"
failures (Figure 8/9) from genuine bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StoreError(ReproError):
    """Base class for state-store failures."""


class StoreClosedError(StoreError):
    """An operation was attempted on a store that has been closed."""


class StoreOOMError(StoreError):
    """A store exceeded its memory capacity.

    Raised by the in-memory (heap) backend when live state outgrows the
    configured heap, mirroring the JVM OutOfMemoryError failures the paper
    reports for Flink's in-memory store on large windows.
    """


class SnapshotCorruptError(StoreError):
    """A snapshot failed checksum/length verification at restore time.

    Raised instead of silently loading garbage when a checkpoint file was
    torn (truncated tail), bit-flipped, or lost entirely.
    """


class UnsupportedOperationError(StoreError):
    """An optional store capability was invoked on a backend lacking it.

    Backends advertise their optional features through the
    ``capabilities`` frozenset (:mod:`repro.kvstores.api`); callers that
    need a capability — checkpointing needs ``snapshot``, rescaling
    needs ``rescale`` — check it *up front* and raise this with an
    actionable message instead of tripping over a bare
    ``NotImplementedError`` halfway through a migration.
    """

    def __init__(
        self,
        backend: str,
        capability: str,
        operation: str = "",
        advertised=None,
    ) -> None:
        wanted = operation or capability
        if advertised is None:
            have = ""
        elif advertised:
            have = f"; it advertises: {', '.join(sorted(advertised))}"
        else:
            have = "; it advertises no optional capabilities"
        super().__init__(
            f"{backend} does not support {wanted!r}: the backend does not "
            f"advertise the {capability!r} capability{have} (see "
            f"WindowStateBackend.capabilities)"
        )
        self.backend = backend
        self.capability = capability
        self.operation = wanted
        self.advertised = frozenset(advertised) if advertised is not None else None


class StoreRestoreError(StoreError):
    """A snapshot restore was attempted on a store that already holds state.

    Restore is only defined into a freshly constructed (empty) store; a
    double-restore or a restore over live state would silently mix two
    histories, so it is rejected instead.
    """


class SimTimeoutError(ReproError):
    """A simulated job exceeded its simulated-time budget.

    The paper terminates jobs that run past 7200 s (Figure 4); the harness
    raises this to mark such runs as did-not-finish.
    """


class FileSystemError(ReproError):
    """Base class for simulated-filesystem failures."""


class FileNotFoundInStoreError(FileSystemError):
    """The named file does not exist in the simulated filesystem."""


class FileExistsInStoreError(FileSystemError):
    """A file with the given name already exists."""


class DiskIOError(FileSystemError):
    """A device read or write failed (injected disk fault).

    Transient by contract: callers on the snapshot and migration paths
    retry with capped deterministic backoff (:func:`repro.faults.
    with_retries`); a fault that outlives the retries escalates to a
    crash handled by the :class:`repro.recovery.RecoveryManager`.
    """


class RetriesExhaustedError(DiskIOError):
    """A transient-I/O retry budget was spent without a success.

    Raised by :func:`repro.faults.with_retries` instead of re-raising the
    last bare :class:`DiskIOError`, so callers that escalate can see the
    whole attempt history (one entry per failed attempt).  Subclasses
    :class:`DiskIOError` so every existing ``except DiskIOError`` crash
    path handles it unchanged.
    """

    def __init__(self, attempts: int, history: list[str]) -> None:
        super().__init__(
            f"I/O still failing after {attempts} attempts: "
            + "; ".join(history)
        )
        self.attempts = attempts
        self.history = list(history)


class StandbyNotReadyError(StoreError):
    """No standby replica can serve a promotion at any usable epoch.

    Raised inside the :class:`repro.recovery.RecoveryManager` standby
    lane when the replica for a failed node is absent (never
    bootstrapped), lagging (its changelog tail had not fully arrived by
    the failure time), or corrupt (a segment failed its CRC).  The
    manager catches it and degrades to plain checkpoint-restore.
    """


class InjectedCrashError(ReproError):
    """The process was killed at an instrumented crash point.

    Carries the crash-point ``site`` and the simulated time at which the
    fault fired.  Everything not yet checkpointed is lost; recovery
    restores the latest complete checkpoint and replays.
    """

    def __init__(self, site: str, now: float = 0.0) -> None:
        super().__init__(f"injected crash at {site} (t={now:.6f}s)")
        self.site = site
        self.now = now


class NodeFailureError(InjectedCrashError):
    """A whole simulated cluster node died (fault domain = machine).

    Killing a node takes down every physical instance it hosts *and* the
    checkpoint-shard replicas on its local disk.  Subclasses
    :class:`InjectedCrashError` so every existing crash-handling path
    (recovery manager, migration rollback) treats it as a crash; carries
    the failed ``node`` id so cluster-aware checkpoint storage can drop
    that node's replicas before the restore.
    """

    def __init__(self, node: int, site: str, now: float = 0.0) -> None:
        super().__init__(site, now)
        self.node = node
        self.args = (f"injected node {node} failure at {site} (t={now:.6f}s)",)


class PlanError(ReproError):
    """A streaming job graph is malformed or cannot be compiled."""


class PatternError(ReproError):
    """A window operation could not be mapped to a FlowKV store pattern."""
