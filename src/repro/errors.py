"""Exception hierarchy for the FlowKV reproduction.

Every failure mode the paper's evaluation exercises (out-of-memory heap
state, simulated-time job timeouts, misuse of store APIs) maps to a typed
exception so that the benchmark harness can distinguish "crossed bar"
failures (Figure 8/9) from genuine bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StoreError(ReproError):
    """Base class for state-store failures."""


class StoreClosedError(StoreError):
    """An operation was attempted on a store that has been closed."""


class StoreOOMError(StoreError):
    """A store exceeded its memory capacity.

    Raised by the in-memory (heap) backend when live state outgrows the
    configured heap, mirroring the JVM OutOfMemoryError failures the paper
    reports for Flink's in-memory store on large windows.
    """


class SimTimeoutError(ReproError):
    """A simulated job exceeded its simulated-time budget.

    The paper terminates jobs that run past 7200 s (Figure 4); the harness
    raises this to mark such runs as did-not-finish.
    """


class FileSystemError(ReproError):
    """Base class for simulated-filesystem failures."""


class FileNotFoundInStoreError(FileSystemError):
    """The named file does not exist in the simulated filesystem."""


class FileExistsInStoreError(FileSystemError):
    """A file with the given name already exists."""


class PlanError(ReproError):
    """A streaming job graph is malformed or cannot be compiled."""


class PatternError(ReproError):
    """A window operation could not be mapped to a FlowKV store pattern."""
