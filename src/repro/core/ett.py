"""Estimated-trigger-time (ETT) predictors (§4.2).

FlowKV predicts *when* each window will be read by combining statically
defined window semantics (window size, session gap) with runtime data
(tuple timestamps).  Predictors return the new ETT after observing a
tuple, or ``None`` when no safe lower bound on the trigger time exists
(count windows, opaque custom windows) — in which case predictive batch
read cannot help and the AUR store falls back to direct reads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.model import Window


class EttPredictor(ABC):
    """Computes the estimated trigger time of a window as tuples arrive."""

    @abstractmethod
    def update(
        self, window: Window, timestamp: float, current_ett: float | None
    ) -> float | None:
        """New ETT after a tuple with ``timestamp`` joined ``window``.

        Returns ``None`` if the trigger time cannot be bounded.  For
        predictable window functions the returned ETT is a *lower bound*:
        the window is guaranteed not to trigger before it, which is what
        makes prefetched state safe until read or explicitly evicted.
        """


class KnownBoundaryPredictor(EttPredictor):
    """Fixed/sliding/global windows: the trigger time is the window end."""

    def update(
        self, window: Window, timestamp: float, current_ett: float | None
    ) -> float | None:
        return window.end


class SessionGapPredictor(EttPredictor):
    """Session windows: ETT = max tuple timestamp + session gap.

    No tuple can close the session before ``t_max + gap`` (§4.2), so the
    window is guaranteed not to trigger earlier; a newer tuple extends the
    session and *raises* the ETT (the store must then evict any
    prematurely prefetched state).
    """

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise ValueError(f"session gap must be positive: {gap}")
        self.gap = gap

    def update(
        self, window: Window, timestamp: float, current_ett: float | None
    ) -> float | None:
        candidate = timestamp + self.gap
        if current_ett is None:
            return candidate
        return max(current_ett, candidate)


class CountWindowPredictor(EttPredictor):
    """Count windows trigger on arrival counts: no time bound exists."""

    def update(
        self, window: Window, timestamp: float, current_ett: float | None
    ) -> float | None:
        return None


class CallablePredictor(EttPredictor):
    """Wraps a user-supplied ETT function for custom windows (§8)."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def update(
        self, window: Window, timestamp: float, current_ett: float | None
    ) -> float | None:
        return self._fn(window, timestamp, current_ett)
