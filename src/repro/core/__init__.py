"""FlowKV: the paper's semantic-aware composite store.

FlowKV classifies each window operation by *how* it accesses state
(Append vs Read-Modify-Write, from the aggregate function) and *when* it
reads state (Aligned vs Unaligned, from the window function), and deploys
one of three customized stores:

* :class:`~repro.core.aar.AarStore` — Append & Aligned Read: window-keyed
  write buffer, one on-disk log file per window, gradual state loading,
  delete-after-read (no compaction at all),
* :class:`~repro.core.aur.AurStore` — Append & Unaligned Read: global data
  log + append-only index log, estimated-trigger-time (ETT) Stat table,
  predictive batch read, compaction integrated with the index scan,
* :class:`~repro.core.rmw.RmwStore` — Read-Modify-Write: hash write
  buffer + hash index + value log, no synchronization charges.

:class:`~repro.core.composite.FlowKVComposite` wraps ``m`` store instances
per physical operator behind the engine's
:class:`~repro.kvstores.api.WindowStateBackend` interface.
"""

from repro.core.composite import FlowKVComposite
from repro.core.config import FlowKVConfig
from repro.core.ett import (
    CountWindowPredictor,
    EttPredictor,
    KnownBoundaryPredictor,
    SessionGapPredictor,
)
from repro.core.patterns import StorePattern, WindowKind, determine_pattern

__all__ = [
    "FlowKVComposite",
    "FlowKVConfig",
    "StorePattern",
    "WindowKind",
    "determine_pattern",
    "EttPredictor",
    "KnownBoundaryPredictor",
    "SessionGapPredictor",
    "CountWindowPredictor",
]
