"""The FlowKV composite store facade.

One :class:`FlowKVComposite` serves one physical window operator.  At
construction (application launch) the store pattern has been determined
from the operator's function signatures (§3.1); the composite deploys
``m`` store instances of that pattern and routes every state access by key
hash, so that compaction runs independently per state partition (§3).

It implements the engine's :class:`~repro.kvstores.api.WindowStateBackend`
interface, translating objects to bytes at the boundary (serde charged).
"""

from __future__ import annotations

import pickle
from collections.abc import Iterator
from typing import Any

from repro.core.aar import AarStore
from repro.core.aur import AurStore
from repro.core.config import FlowKVConfig
from repro.core.ett import EttPredictor, KnownBoundaryPredictor
from repro.core.patterns import StorePattern
from repro.core.rmw import RmwStore
from repro.errors import PatternError
from repro.kvstores.api import (
    CAP_BATCH,
    CAP_INCREMENTAL,
    CAP_RESCALE,
    CAP_SNAPSHOT,
    KIND_AGG,
    KIND_LIST,
    KeyGroupDirtyTracker,
    KeyGroupFn,
    StateExport,
    WindowStateBackend,
)
from repro.model import PickleSerde, Serde, Window
from repro.rescale.keygroups import key_group_of
from repro.simenv import CAT_RECOVERY, CAT_SERDE, SimEnv
from repro.storage.filesystem import SimFileSystem


class FlowKVComposite(WindowStateBackend):
    """``m`` pattern-specialized store instances behind one backend."""

    capabilities = frozenset({CAP_SNAPSHOT, CAP_RESCALE, CAP_INCREMENTAL, CAP_BATCH})

    def __init__(
        self,
        env: SimEnv,
        fs: SimFileSystem,
        pattern: StorePattern,
        config: FlowKVConfig | None = None,
        predictor: EttPredictor | None = None,
        serde: Serde | None = None,
        name: str = "flowkv",
    ) -> None:
        self._env = env
        self._pattern = pattern
        self._config = config or FlowKVConfig()
        self._serde = serde or PickleSerde()
        self._name = name
        cfg = self._config
        self._instances: list[Any] = []
        for i in range(cfg.num_instances):
            instance_name = f"{name}/s{i}"
            if pattern is StorePattern.AAR:
                store: Any = AarStore(
                    env, fs, instance_name,
                    write_buffer_bytes=cfg.write_buffer_bytes,
                    read_chunk_bytes=cfg.read_chunk_bytes,
                )
            elif pattern is StorePattern.AUR:
                store = AurStore(
                    env, fs,
                    predictor or KnownBoundaryPredictor(),
                    instance_name,
                    write_buffer_bytes=cfg.write_buffer_bytes,
                    read_batch_ratio=cfg.read_batch_ratio,
                    max_space_amplification=cfg.max_space_amplification,
                    data_segment_bytes=cfg.data_segment_bytes,
                    prefetch_buffer_bytes=cfg.prefetch_buffer_bytes,
                )
            elif pattern is StorePattern.RMW:
                store = RmwStore(
                    env, fs, instance_name,
                    write_buffer_bytes=cfg.write_buffer_bytes,
                    max_space_amplification=cfg.max_space_amplification,
                    data_segment_bytes=cfg.data_segment_bytes,
                )
            else:  # pragma: no cover - exhaustive enum
                raise PatternError(f"unknown store pattern: {pattern}")
            self._instances.append(store)
        self._dirty = KeyGroupDirtyTracker(self._config.max_key_groups)

    # ------------------------------------------------------------------
    @property
    def pattern(self) -> StorePattern:
        return self._pattern

    @property
    def checkpoint_key_groups(self) -> int:
        """Group-space resolution of dirty tracking and checkpoint shards
        (the composite's own routing hash — one space for both)."""
        return self._dirty.max_key_groups

    def dirty_groups(self) -> frozenset[int]:
        return self._dirty.groups()

    def clear_dirty(self) -> None:
        self._dirty.clear()

    def attach_changelog(self, writer) -> None:
        """Route semantic mutations into a changelog writer (replication)."""
        self._dirty.changelog = writer

    @property
    def _kind(self) -> str:
        return KIND_AGG if self._pattern is StorePattern.RMW else KIND_LIST

    @property
    def instances(self) -> list[Any]:
        return list(self._instances)

    # Routing: stride the key's key-group across the m instances.  The
    # engine assigns *contiguous* key-group ranges to operator instances
    # while this takes residues modulo m, so the two levels stay
    # decorrelated (every store gets an even share of each range) — and
    # because the store index depends only on the key-group, a migrated
    # key-group lands in the same store slot on its new owner.
    def _key_group(self, key: bytes) -> int:
        return key_group_of(key, self._config.max_key_groups)

    def _route(self, key: bytes) -> Any:
        return self._instances[self._key_group(key) % len(self._instances)]

    def _encode(self, obj: Any) -> bytes:
        data = self._serde.serialize(obj)
        self._env.charge_cpu(CAT_SERDE, self._env.cpu.serde(len(data)))
        return data

    def _decode(self, data: bytes) -> Any:
        self._env.charge_cpu(CAT_SERDE, self._env.cpu.serde(len(data)))
        return self._serde.deserialize(data)

    def _require(self, *patterns: StorePattern) -> None:
        if self._pattern not in patterns:
            raise PatternError(
                f"operation not supported by {self._pattern.name} store"
            )

    # ------------------------------------------------------------------
    # append pattern
    # ------------------------------------------------------------------
    def append(self, key: bytes, window: Window, value: Any, timestamp: float) -> None:
        self._require(StorePattern.AAR, StorePattern.AUR)
        data = self._encode(value)
        self._dirty.log_append(key, window, self._kind, (data,))
        store = self._route(key)
        if self._pattern is StorePattern.AAR:
            store.append(key, data, window)
        else:
            store.append(key, data, window, timestamp)

    def multi_append(
        self, entries: list[tuple[bytes, Window, Any, float]]
    ) -> None:
        """Native batch append over the ``m`` routed instances.

        The loop stays strictly in entry order: the sub-stores share one
        cost environment, so regrouping entries per instance would reorder
        same-category charges and drift the clock.  Amortization is real
        Python overhead only — the routing hash is memoized per key within
        the batch and hot attributes are hoisted — while each entry's
        serde, changelog, and store charges match :meth:`append` exactly.
        """
        self._require(StorePattern.AAR, StorePattern.AUR)
        kind = self._kind
        is_aar = self._pattern is StorePattern.AAR
        encode = self._encode
        log_append = self._dirty.log_append
        instances = self._instances
        m = len(instances)
        key_group = self._key_group
        slot_of: dict[bytes, int] = {}
        for key, window, value, timestamp in entries:
            data = encode(value)
            log_append(key, window, kind, (data,))
            slot = slot_of.get(key)
            if slot is None:
                slot = slot_of[key] = key_group(key) % m
            store = instances[slot]
            if is_aar:
                store.append(key, data, window)
            else:
                store.append(key, data, window, timestamp)

    def read_window(self, window: Window) -> Iterator[tuple[bytes, list[Any]]]:
        self._require(StorePattern.AAR)
        for store in self._instances:
            for key, values in store.get_window(window):
                self._dirty.log_remove(key, window, self._kind)
                yield key, [self._decode(v) for v in values]

    def read_key_window(self, key: bytes, window: Window) -> list[Any]:
        self._require(StorePattern.AUR)
        values = self._route(key).get(key, window)
        if values:
            self._dirty.log_remove(key, window, self._kind)
        return [self._decode(v) for v in values]

    # ------------------------------------------------------------------
    # RMW pattern
    # ------------------------------------------------------------------
    def rmw_get(self, key: bytes, window: Window) -> Any | None:
        self._require(StorePattern.RMW)
        data = self._route(key).get(key, window)
        return None if data is None else self._decode(data)

    def rmw_put(self, key: bytes, window: Window, aggregate: Any) -> None:
        self._require(StorePattern.RMW)
        data = self._encode(aggregate)
        self._dirty.log_put(key, window, self._kind, (data,))
        self._route(key).put(key, window, data)

    def rmw_remove(self, key: bytes, window: Window) -> Any | None:
        self._require(StorePattern.RMW)
        data = self._route(key).remove(key, window)
        if data is not None:
            self._dirty.log_remove(key, window, self._kind)
        return None if data is None else self._decode(data)

    # ------------------------------------------------------------------
    def on_watermark(self, timestamp: float) -> None:
        if self._pattern is StorePattern.AUR:
            for store in self._instances:
                store.on_watermark(timestamp)

    def flush(self) -> None:
        for store in self._instances:
            store.flush()

    def snapshot(self, upload_env=None):
        """Checkpoint all ``m`` instances (§8, Fault Tolerance).

        With ``upload_env`` the file transfers are charged to that
        environment (asynchronous upload) rather than the store's clock.
        """
        import zlib

        from repro.snapshot import StoreSnapshot

        parts = [store.snapshot(upload_env=upload_env) for store in self._instances]
        meta = pickle.dumps(
            [(part.kind, part.meta) for part in parts],
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        files: dict[str, bytes] = {}
        # Per-file checksums are inherited from the already-sealed part
        # snapshots (no re-hash); only the combined meta blob needs a new CRC.
        checksums: dict[str, tuple[int, int]] = {}
        for part in parts:
            files.update(part.files)
            checksums.update(part.checksums or {})
        snap = StoreSnapshot(f"flowkv:{self._pattern.value}", meta, files)
        snap.checksums = checksums
        self._env.charge_cpu(CAT_RECOVERY, len(meta) * self._env.cpu.crc_per_byte)
        snap.meta_crc = zlib.crc32(meta)
        return snap

    def restore(self, snapshot) -> None:
        from repro.snapshot import StoreSnapshot, verify_snapshot

        # Verify once at the composite level; the per-instance snapshots
        # handed down are unsealed so the leaves don't re-hash.
        verify_snapshot(self._env, snapshot)
        parts_meta = pickle.loads(snapshot.meta)
        if len(parts_meta) != len(self._instances):
            raise ValueError(
                f"snapshot has {len(parts_meta)} instances, store has "
                f"{len(self._instances)} — num_instances must match"
            )
        for store, (kind, meta) in zip(self._instances, parts_meta):
            prefix = store._name + "/"  # noqa: SLF001 - same package
            files = {
                name: data for name, data in snapshot.files.items()
                if name.startswith(prefix)
            }
            store.restore(StoreSnapshot(kind, meta, files))

    # ------------------------------------------------------------------
    # elastic rescaling
    # ------------------------------------------------------------------
    def export_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> StateExport:
        """Extract the moved key-groups from all ``m`` instances.

        ``key_group_of`` must agree with the composite's own hash (same
        ``max_key_groups``); each store only ever holds key-groups with
        its own residue modulo m, so the per-instance exports are
        disjoint.
        """
        export = StateExport()
        for store in self._instances:
            export.entries.extend(store.export_state(key_groups, key_group_of).entries)
        for entry in export.entries:
            self._dirty.log_remove(entry.key, entry.window, entry.kind)
        return export

    def export_group_state(
        self, key_groups: set[int] | None, key_group_of: KeyGroupFn
    ) -> StateExport:
        """Non-destructive per-group read of all ``m`` instances (the
        sharded checkpointer's path; stores charge it as recovery)."""
        export = StateExport()
        for store in self._instances:
            export.entries.extend(
                store.export_group_state(key_groups, key_group_of).entries
            )
        return export

    def import_state(self, export: StateExport) -> None:
        """Distribute migrated entries to their stable store slots."""
        m = len(self._instances)
        per_instance: dict[int, StateExport] = {}
        for entry in export.entries:
            self._dirty.log_merge(entry.key, entry.window, entry.kind, entry.values)
            index = self._key_group(entry.key) % m
            per_instance.setdefault(index, StateExport()).entries.append(entry)
        for index, part in per_instance.items():
            self._instances[index].import_state(part)

    def close(self) -> None:
        for store in self._instances:
            store.close()

    @property
    def memory_bytes(self) -> int:
        return sum(store.memory_bytes for store in self._instances)

    @property
    def disk_bytes(self) -> int:
        return sum(store.disk_bytes for store in self._instances)

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    @property
    def compaction_count(self) -> int:
        return sum(getattr(store, "compaction_count", 0) for store in self._instances)

    @property
    def prefetch_loads(self) -> int:
        if self._pattern is not StorePattern.AUR:
            return 0
        return sum(store.prefetch_stats.loads for store in self._instances)

    @property
    def prefetch_hits(self) -> int:
        if self._pattern is not StorePattern.AUR:
            return 0
        return sum(store.prefetch_stats.hits for store in self._instances)

    @property
    def prefetch_hit_ratio(self) -> float:
        """Aggregate prefetch hit ratio over AUR instances (Figure 11b)."""
        loads = self.prefetch_loads
        return self.prefetch_hits / loads if loads else 0.0
