"""FlowKV configuration.

The paper exposes four user-configurable parameters (§6): read batch
ratio, write buffer size, maximum space amplification (MSA), and the
number of store instances per physical window operator.  The paper's
empirical settings are ratio 0.02, buffer 2048 MB, MSA 1.5, m = 2 — the
defaults here keep those ratios at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlowKVConfig:
    """Knobs shared by all three FlowKV store types.

    Attributes:
        read_batch_ratio: fraction of known (key, window) states selected
            for one predictive batch read (N = ratio × live windows);
            0 disables predictive batch read entirely (Figure 11 ablation).
        write_buffer_bytes: in-memory write buffer capacity per store
            instance; exceeding it flushes to disk.
        max_space_amplification: total/live byte ratio of the on-disk logs
            that triggers compaction (MSA, §4.2).
        num_instances: store instances ``m`` per physical window operator;
            each compacts independently on its state partition (§3).
        data_segment_bytes: size at which the AUR/RMW stores roll their
            data log to a new segment file.
        read_chunk_bytes: slab size of the AAR store's gradual state
            loading (one GetWindow partition).
        prefetch_buffer_bytes: soft cap for the AUR prefetch buffer.
        max_key_groups: number of key-groups the keyed state is hashed
            into (the unit of ownership for elastic rescaling); must
            match the job's setting so composite routing stays stable
            across rescales.
    """

    read_batch_ratio: float = 0.02
    write_buffer_bytes: int = 2 << 20
    max_space_amplification: float = 1.5
    num_instances: int = 2
    data_segment_bytes: int = 4 << 20
    read_chunk_bytes: int = 2 << 20
    prefetch_buffer_bytes: int = 16 << 20
    max_key_groups: int = 128

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_batch_ratio <= 1.0:
            raise ValueError(f"read_batch_ratio must be in [0, 1]: {self.read_batch_ratio}")
        if self.max_space_amplification < 1.0:
            raise ValueError(
                f"max_space_amplification must be >= 1: {self.max_space_amplification}"
            )
        if self.num_instances < 1:
            raise ValueError(f"num_instances must be >= 1: {self.num_instances}")
        if self.write_buffer_bytes <= 0:
            raise ValueError("write_buffer_bytes must be positive")
        if self.max_key_groups < 1:
            raise ValueError(f"max_key_groups must be >= 1: {self.max_key_groups}")
