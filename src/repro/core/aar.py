"""Append and Aligned Read (AAR) store (§4.1).

Exploits the fact that windows of all keys share identical trigger times:

* **coarse-grained data organization** — the in-memory write buffer hashes
  tuples by *window boundary* (not by key), and each window boundary gets
  its own on-disk log file; a trigger reads exactly one file,
* **gradual state loading** — ``get_window`` yields the window's state in
  bounded partitions so only one non-aggregated slab is in memory,
* **no compaction** — a window's log file is simply deleted once read.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import StoreClosedError
from repro.kvstores.api import KIND_LIST, ExportedEntry, KeyGroupFn, StateExport
from repro.model import Window
from repro.serde.codec import decode_bytes, encode_bytes
from repro.simenv import (
    CAT_MIGRATION,
    CAT_RECOVERY,
    CAT_STORE_READ,
    CAT_STORE_WRITE,
    SimEnv,
)
from repro.storage.filesystem import SimFileSystem


class AarStore:
    """One AAR store instance (one of ``m`` per physical operator)."""

    def __init__(
        self,
        env: SimEnv,
        fs: SimFileSystem,
        name: str = "aar",
        write_buffer_bytes: int = 2 << 20,
        read_chunk_bytes: int = 2 << 20,
        coarse_grained: bool = True,
    ) -> None:
        self._env = env
        self._fs = fs
        self._name = name
        self._write_buffer_bytes = write_buffer_bytes
        self._read_chunk_bytes = read_chunk_bytes
        # Ablation knob: when False, flushes write one I/O request per
        # (key, window) group instead of one per window bucket — the
        # fine-grained organization of naive KV stores (§4.1).
        self._coarse_grained = coarse_grained
        # Window boundary -> list of encoded (key, value) pairs.
        self._buffer: dict[Window, list[tuple[bytes, bytes]]] = {}
        self._buffer_bytes = 0
        self._flushed_windows: set[Window] = set()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        return self._buffer_bytes

    @property
    def disk_bytes(self) -> int:
        return self._fs.total_bytes(self._name + "/")

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"AAR store {self._name} is closed")

    def _file_for(self, window: Window) -> str:
        return f"{self._name}/w_{window.key_bytes().hex()}.log"

    # ------------------------------------------------------------------
    # Listing 1: void Append(K, V, W)
    # ------------------------------------------------------------------
    def append(self, key: bytes, value: bytes, window: Window) -> None:
        """Append a KV tuple to its window's hash bucket.

        The bucket is labelled by the window boundary — tuples of *all*
        keys in one window share one bucket (coarse-grained organization).
        """
        self._check_open()
        self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.hash_probe)
        bucket = self._buffer.get(window)
        if bucket is None:
            bucket = []
            self._buffer[window] = bucket
            self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.allocation)
        bucket.append((key, value))
        self._buffer_bytes += len(key) + len(value) + 16
        if self._buffer_bytes >= self._write_buffer_bytes:
            self.flush()

    def multi_append(self, entries: list[tuple[bytes, bytes, Window]]) -> None:
        """Batch append: one open-check, the rest loops :meth:`append`'s body.

        Charges and the per-entry flush-threshold check are identical to
        calling :meth:`append` in a loop — buffer spills must not depend
        on batch size — only the Python dispatch overhead is amortized.
        """
        self._check_open()
        charge = self._env.charge_cpu
        probe = self._env.cpu.hash_probe
        allocation = self._env.cpu.allocation
        buffer = self._buffer
        for key, value, window in entries:
            charge(CAT_STORE_WRITE, probe)
            bucket = buffer.get(window)
            if bucket is None:
                bucket = []
                buffer[window] = bucket
                charge(CAT_STORE_WRITE, allocation)
            bucket.append((key, value))
            self._buffer_bytes += len(key) + len(value) + 16
            if self._buffer_bytes >= self._write_buffer_bytes:
                self.flush()
                buffer = self._buffer

    def flush(self) -> None:
        """Append each bucket to its per-window log file (one I/O each)."""
        self._check_open()
        for window, bucket in self._buffer.items():
            if self._coarse_grained:
                payload = bytearray()
                for key, value in bucket:
                    payload += encode_bytes(key)
                    payload += encode_bytes(value)
                self._fs.append(
                    self._file_for(window), bytes(payload), category=CAT_STORE_WRITE
                )
            else:
                # Fine-grained ablation: group by key, one request each.
                per_key: dict[bytes, bytearray] = {}
                for key, value in bucket:
                    group = per_key.setdefault(key, bytearray())
                    group += encode_bytes(key)
                    group += encode_bytes(value)
                for group in per_key.values():
                    self._fs.append(
                        self._file_for(window), bytes(group), category=CAT_STORE_WRITE
                    )
            self._flushed_windows.add(window)
        self._buffer.clear()
        self._buffer_bytes = 0

    # ------------------------------------------------------------------
    # Listing 1: Iterable<(K, List<V>)> GetWindow(W)
    # ------------------------------------------------------------------
    def get_window(self, window: Window) -> Iterator[tuple[bytes, list[bytes]]]:
        """Fetch & remove the window's state, loaded gradually.

        Reads the window's log file in ``read_chunk_bytes`` partitions;
        within each partition, values are grouped by key.  A key whose
        tuples span partitions is yielded once per partition — the SPE
        aggregates partitions sequentially (gradual state loading).  The
        log file is deleted after the last partition.
        """
        self._check_open()
        file_name = self._file_for(window)
        on_disk = window in self._flushed_windows and self._fs.exists(file_name)
        if on_disk:
            size = self._fs.size(file_name)
            offset = 0
            carry = b""
            while offset < size:
                chunk = self._fs.read(
                    file_name,
                    offset,
                    self._read_chunk_bytes,
                    category=CAT_STORE_READ,
                )
                offset += len(chunk)
                data = carry + chunk
                consumed, grouped = self._parse_records(data, complete=offset >= size)
                carry = data[consumed:]
                if grouped:
                    yield from grouped.items()
            self._fs.delete(file_name)
            self._flushed_windows.discard(window)
        # In-memory buffered tuples of this window form the final partition.
        bucket = self._buffer.pop(window, None)
        if bucket:
            self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.hash_probe)
            grouped: dict[bytes, list[bytes]] = {}
            for key, value in bucket:
                self._buffer_bytes -= len(key) + len(value) + 16
                grouped.setdefault(key, []).append(value)
            yield from grouped.items()

    def _parse_records(
        self, data: bytes, complete: bool, category: str = CAT_STORE_READ
    ) -> tuple[int, dict[bytes, list[bytes]]]:
        """Parse whole (key, value) records from ``data``.

        Returns ``(bytes_consumed, {key: [values]})``; a trailing partial
        record is left for the next chunk unless ``complete``.
        """
        grouped: dict[bytes, list[bytes]] = {}
        pos = 0
        n_records = 0
        while pos < len(data):
            try:
                key, next_pos = decode_bytes(data, pos)
                value, next_pos = decode_bytes(data, next_pos)
            except ValueError:
                if complete:
                    raise
                break
            grouped.setdefault(key, []).append(value)
            pos = next_pos
            n_records += 1
        self._env.charge_cpu(
            category,
            n_records * self._env.cpu.hash_probe + pos * self._env.cpu.block_decode_per_byte,
        )
        return pos, grouped

    # ------------------------------------------------------------------
    # elastic rescaling
    # ------------------------------------------------------------------
    def export_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> StateExport:
        """Extract the moved key-groups from every live window.

        AAR files are bucketed by *window*, not by key, so each per-window
        log must be read back in full, split by key-group, and the kept
        remainder rewritten — the price of coarse-grained organization,
        paid only at rescale time.
        """
        self._check_open()
        self.flush()
        export = StateExport()
        for window in sorted(self._flushed_windows, key=lambda w: w.key_bytes()):
            file_name = self._file_for(window)
            if not self._fs.exists(file_name):
                continue
            data = self._fs.read(
                file_name, 0, self._fs.size(file_name), category=CAT_MIGRATION
            )
            _consumed, grouped = self._parse_records(
                data, complete=True, category=CAT_MIGRATION
            )
            kept = bytearray()
            for key, values in grouped.items():
                if key_group_of(key) in key_groups:
                    export.entries.append(ExportedEntry(key, window, KIND_LIST, values))
                else:
                    for value in values:
                        kept += encode_bytes(key)
                        kept += encode_bytes(value)
            self._fs.delete(file_name)
            if kept:
                self._fs.append(file_name, bytes(kept), category=CAT_MIGRATION)
            else:
                self._flushed_windows.discard(window)
        return export

    def import_state(self, export: StateExport) -> None:
        """Append migrated entries straight into the per-window logs."""
        self._check_open()
        for entry in export.entries:
            payload = bytearray()
            for value in entry.values:
                payload += encode_bytes(entry.key)
                payload += encode_bytes(value)
            self._fs.append(
                self._file_for(entry.window), bytes(payload), category=CAT_MIGRATION
            )
            self._flushed_windows.add(entry.window)

    def export_group_state(
        self, key_groups: set[int] | None, key_group_of: KeyGroupFn
    ) -> StateExport:
        """Read — *without removing* — the selected key-groups' state.

        The sharded checkpointer's path: per-window logs are read back
        in full (charged as recovery) and split by key-group, but the
        files, the flushed-window set, and the write buffer all stay
        untouched.  Values keep ``get_window`` order: disk records first,
        then buffered tuples.
        """
        self._check_open()
        grouped_all: dict[Window, dict[bytes, list[bytes]]] = {}
        for window in sorted(self._flushed_windows, key=lambda w: w.key_bytes()):
            file_name = self._file_for(window)
            if not self._fs.exists(file_name):
                continue
            data = self._fs.read(
                file_name, 0, self._fs.size(file_name), category=CAT_RECOVERY
            )
            _consumed, grouped = self._parse_records(
                data, complete=True, category=CAT_RECOVERY
            )
            grouped_all[window] = grouped
        for window, bucket in self._buffer.items():
            grouped = grouped_all.setdefault(window, {})
            for key, value in bucket:
                grouped.setdefault(key, []).append(value)
        export = StateExport()
        for window in sorted(grouped_all, key=lambda w: w.key_bytes()):
            for key, values in grouped_all[window].items():
                if key_groups is not None and key_group_of(key) not in key_groups:
                    continue
                export.entries.append(ExportedEntry(key, window, KIND_LIST, values))
        return export

    # ------------------------------------------------------------------
    def drop_window(self, window: Window) -> None:
        """Discard a window without reading it (late-data cleanup)."""
        self._check_open()
        bucket = self._buffer.pop(window, None)
        if bucket:
            self._buffer_bytes -= sum(len(k) + len(v) + 16 for k, v in bucket)
        file_name = self._file_for(window)
        if window in self._flushed_windows and self._fs.exists(file_name):
            self._fs.delete(file_name)
        self._flushed_windows.discard(window)

    # ------------------------------------------------------------------
    # checkpointing (§8)
    # ------------------------------------------------------------------
    def snapshot(self, upload_env=None):
        """Flush, then capture per-window log files + window metadata.

        With ``upload_env`` the file copies are charged asynchronously to
        that environment (§8); only the flush blocks this store.
        """
        from repro.snapshot import StoreSnapshot, copy_files_out, pack_meta, seal_snapshot

        self._check_open()
        self.flush()
        meta = pack_meta(self._env, {"flushed_windows": set(self._flushed_windows)})
        files = copy_files_out(self._env, self._fs, self._name + "/", upload_env)
        return seal_snapshot(self._env, StoreSnapshot("aar", meta, files))

    def restore(self, snapshot) -> None:
        """Load a verified snapshot into this fresh (empty) instance."""
        from repro.errors import StoreRestoreError
        from repro.snapshot import copy_files_in, unpack_meta, verify_snapshot

        self._check_open()
        verify_snapshot(self._env, snapshot)
        if self._buffer or self._flushed_windows or self._fs.list_files(self._name + "/"):
            raise StoreRestoreError(f"restore into non-empty aar store {self._name}")
        copy_files_in(self._env, self._fs, snapshot.files)
        state = unpack_meta(self._env, snapshot.meta)
        self._flushed_windows = set(state["flushed_windows"])
        self._buffer.clear()
        self._buffer_bytes = 0

    def close(self) -> None:
        self._closed = True
        self._buffer.clear()
        self._buffer_bytes = 0
