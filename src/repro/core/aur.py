"""Append and Unaligned Read (AUR) store (§4.2).

Windows of different keys trigger at different times (session windows), so
the AUR store:

* buffers tuples by ``(key, initial window boundary)`` in memory,
* flushes to a **global data log** (rolling segment files) plus an
  **append-only index log** holding ``(key, window, segment, offset,
  length)`` entries — indexes live on disk, not in memory,
* maintains an in-memory **Stat table** of estimated trigger times (ETTs),
  updated on every tuple arrival by the window function's predictor,
* serves reads through **predictive batch read**: a miss scans the index
  log once, then loads the requested window *and* the N windows closest to
  their ETTs into the prefetch buffer with coalesced reads,
* **evicts** prefetched state when a prediction turns out wrong (a new
  tuple extends the session), re-reading it later — Equation 1's
  read amplification ``1/r``,
* runs **compaction integrated with the index scan**: the same pass that
  locates prefetch candidates detects dead bytes, and when space
  amplification exceeds MSA the live ranges are moved to a new generation
  with zero-copy transfers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import StoreClosedError
from repro.core.ett import EttPredictor
from repro.kvstores.api import KIND_LIST, ExportedEntry, KeyGroupFn, StateExport
from repro.model import Window
from repro.serde.codec import (
    decode_bytes,
    decode_varint,
    encode_bytes,
    encode_varint,
)
from repro.simenv import (
    CAT_COMPACTION,
    CAT_MIGRATION,
    CAT_RECOVERY,
    CAT_STORE_READ,
    CAT_STORE_WRITE,
    SimEnv,
)
from repro.storage.filesystem import SimFileSystem

_COALESCE_GAP_BYTES = 64 << 10  # merge reads separated by less than this
_REWRITE_THRESHOLD = 0.25  # segments below this live fraction are rewritten


@dataclass
class _WindowStat:
    """Per-(key, window) in-memory statistics (the Stat table row).

    ``epoch`` counts how many times this (key, window) identity has been
    consumed before: index entries written at an older epoch are dead
    even though the identity is live again (late data re-using a window).
    """

    ett: float | None = None
    disk_bytes: int = 0
    disk_entries: int = 0
    epoch: int = 0


@dataclass
class _IndexEntry:
    key: bytes
    window: Window
    segment: int
    offset: int
    length: int
    n_values: int = 0
    epoch: int = 0
    seq: int = 0  # logical write order: survives segment relocation

    def encode(self) -> bytes:
        return (
            encode_bytes(self.key)
            + self.window.key_bytes()
            + encode_varint(self.segment)
            + encode_varint(self.offset)
            + encode_varint(self.length)
            + encode_varint(self.n_values)
            + encode_varint(self.epoch)
            + encode_varint(self.seq)
        )

    @staticmethod
    def decode(data: bytes, pos: int) -> tuple["_IndexEntry", int]:
        key, pos = decode_bytes(data, pos)
        window = Window.from_key_bytes(data, pos)
        pos += 16
        segment, pos = decode_varint(data, pos)
        offset, pos = decode_varint(data, pos)
        length, pos = decode_varint(data, pos)
        n_values, pos = decode_varint(data, pos)
        epoch, pos = decode_varint(data, pos)
        seq, pos = decode_varint(data, pos)
        return _IndexEntry(
            key, window, segment, offset, length, n_values, epoch, seq
        ), pos


@dataclass
class _Segment:
    segment_id: int
    file_name: str
    size: int = 0


@dataclass
class PrefetchStats:
    """Counters behind Figure 11(b)'s hit ratio."""

    loads: int = 0  # (key, window) states loaded by batch reads
    hits: int = 0  # loaded states that were read before eviction
    evictions: int = 0  # loaded states evicted on misprediction
    direct_reads: int = 0  # misses served without prefetch (ratio 0 / no ETT)
    index_scans: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.loads if self.loads else 0.0


class AurStore:
    """One AUR store instance (one of ``m`` per physical operator)."""

    def __init__(
        self,
        env: SimEnv,
        fs: SimFileSystem,
        predictor: EttPredictor,
        name: str = "aur",
        write_buffer_bytes: int = 2 << 20,
        read_batch_ratio: float = 0.02,
        max_space_amplification: float = 1.5,
        data_segment_bytes: int = 4 << 20,
        prefetch_buffer_bytes: int = 16 << 20,
        integrated_compaction: bool = True,
    ) -> None:
        self._env = env
        self._fs = fs
        self._predictor = predictor
        self._name = name
        self._write_buffer_bytes = write_buffer_bytes
        self._read_batch_ratio = read_batch_ratio
        self._msa = max_space_amplification
        self._segment_bytes = data_segment_bytes
        self._prefetch_capacity = prefetch_buffer_bytes
        # Ablation knob: when False, compaction re-scans the index log
        # instead of reusing the batch read's scan (§4.2 argues the
        # integrated design saves exactly this second scan).
        self._integrated_compaction = integrated_compaction

        self._buffer: dict[tuple[bytes, Window], list[bytes]] = {}
        self._buffer_bytes = 0
        self._stat: dict[tuple[bytes, Window], _WindowStat] = {}
        self._prefetch: dict[tuple[bytes, Window], list[bytes]] = {}
        self._prefetch_bytes = 0
        # (key, window bytes) -> first live epoch: entries written at an
        # earlier epoch were already fetched & removed.
        self._consumed: dict[tuple[bytes, bytes], int] = {}

        self._generation = 0
        self._segment_counter = 0
        self._entry_seq = 0
        self._segments: list[_Segment] = []
        self._total_data_bytes = 0
        self._live_data_bytes = 0
        self._event_time = float("-inf")
        self._closed = False

        self.prefetch_stats = PrefetchStats()
        self.compaction_count = 0

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        stat_bytes = len(self._stat) * 64
        return self._buffer_bytes + self._prefetch_bytes + stat_bytes

    @property
    def disk_bytes(self) -> int:
        return self._fs.total_bytes(self._name + "/")

    @property
    def space_amplification(self) -> float:
        if self._live_data_bytes <= 0:
            return 1.0 if self._total_data_bytes == 0 else float("inf")
        return self._total_data_bytes / self._live_data_bytes

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"AUR store {self._name} is closed")

    def _index_file(self) -> str:
        return f"{self._name}/index_{self._generation:04d}.log"

    def _new_segment(self) -> _Segment:
        self._segment_counter += 1
        segment = _Segment(
            self._segment_counter,
            f"{self._name}/data_{self._generation:04d}_{self._segment_counter:06d}.log",
        )
        self._segments.append(segment)
        return segment

    def _current_segment(self) -> _Segment:
        if not self._segments or self._segments[-1].size >= self._segment_bytes:
            return self._new_segment()
        return self._segments[-1]

    # ------------------------------------------------------------------
    # Listing 1: void Append(K, V, W, T)
    # ------------------------------------------------------------------
    def append(self, key: bytes, value: bytes, window: Window, timestamp: float) -> None:
        """Append a tuple and update the window's ETT.

        ``window`` must be the *initial* window boundary, fixed when the
        window was first created (§4.2) — session merging at the engine
        level keeps writing under the initial boundary.
        """
        self._check_open()
        self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.hash_probe)
        state_key = (key, window)
        self._buffer.setdefault(state_key, []).append(value)
        self._buffer_bytes += len(key) + len(value) + 16
        if timestamp > self._event_time:
            self._event_time = timestamp
        # Update the Stat table's ETT.
        stat = self._stat.get(state_key)
        if stat is None:
            stat = _WindowStat(
                epoch=self._consumed.get((key, window.key_bytes()), 0)
            )
            self._stat[state_key] = stat
            self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.allocation)
        stat.ett = self._predictor.update(window, timestamp, stat.ett)
        self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.hash_probe)
        # Misprediction: state was prefetched but the window just grew.
        if state_key in self._prefetch:
            evicted = self._prefetch.pop(state_key)
            self._prefetch_bytes -= sum(len(v) for v in evicted)
            self.prefetch_stats.evictions += 1
        if self._buffer_bytes >= self._write_buffer_bytes:
            self.flush()

    def multi_append(
        self, entries: list[tuple[bytes, bytes, Window, float]]
    ) -> None:
        """Batch append: one open-check, then :meth:`append`'s body per
        entry.  The ETT update, misprediction eviction, and flush-threshold
        check all stay per-entry — only Python dispatch is amortized."""
        self._check_open()
        charge = self._env.charge_cpu
        probe = self._env.cpu.hash_probe
        allocation = self._env.cpu.allocation
        for key, value, window, timestamp in entries:
            charge(CAT_STORE_WRITE, probe)
            state_key = (key, window)
            self._buffer.setdefault(state_key, []).append(value)
            self._buffer_bytes += len(key) + len(value) + 16
            if timestamp > self._event_time:
                self._event_time = timestamp
            stat = self._stat.get(state_key)
            if stat is None:
                stat = _WindowStat(
                    epoch=self._consumed.get((key, window.key_bytes()), 0)
                )
                self._stat[state_key] = stat
                charge(CAT_STORE_WRITE, allocation)
            stat.ett = self._predictor.update(window, timestamp, stat.ett)
            charge(CAT_STORE_WRITE, probe)
            if state_key in self._prefetch:
                evicted = self._prefetch.pop(state_key)
                self._prefetch_bytes -= sum(len(v) for v in evicted)
                self.prefetch_stats.evictions += 1
            if self._buffer_bytes >= self._write_buffer_bytes:
                self.flush()

    def flush(self) -> None:
        """Flush the write buffer: data records + index entries (§4.2 ③)."""
        self._check_open()
        if not self._buffer:
            return
        index_payload = bytearray()
        segment = self._current_segment()
        segment_payload = bytearray()
        for (key, window), values in self._buffer.items():
            # A prefetched window gaining new on-disk entries would leave
            # the prefetch buffer stale: evict it (re-read on trigger).
            prefetched = self._prefetch.pop((key, window), None)
            if prefetched is not None:
                self._prefetch_bytes -= sum(len(v) for v in prefetched)
                self.prefetch_stats.evictions += 1
            record = bytearray()
            for value in values:
                record += encode_bytes(value)
            if segment.size + len(segment_payload) + len(record) > self._segment_bytes and segment_payload:
                self._write_segment_payload(segment, segment_payload)
                segment = self._new_segment()
                segment_payload = bytearray()
            stat = self._stat.get((key, window))
            self._entry_seq += 1
            entry = _IndexEntry(
                key, window, segment.segment_id,
                segment.size + len(segment_payload), len(record), len(values),
                epoch=stat.epoch if stat is not None else 0,
                seq=self._entry_seq,
            )
            segment_payload += record
            index_payload += entry.encode()
            if stat is not None:
                stat.disk_bytes += len(record)
                stat.disk_entries += 1
            self._live_data_bytes += len(record)
        if segment_payload:
            self._write_segment_payload(segment, segment_payload)
        self._fs.append(self._index_file(), bytes(index_payload), category=CAT_STORE_WRITE)
        self._buffer.clear()
        self._buffer_bytes = 0

    def _write_segment_payload(
        self, segment: _Segment, payload: bytearray, category: str = CAT_STORE_WRITE
    ) -> None:
        self._fs.append(segment.file_name, bytes(payload), category=category)
        segment.size += len(payload)
        self._total_data_bytes += len(payload)

    # ------------------------------------------------------------------
    # Listing 1: List<V> Get(K, W)
    # ------------------------------------------------------------------
    def get(self, key: bytes, window: Window) -> list[bytes]:
        """Fetch & remove all values of ``(key, window)``.

        Checks the prefetch buffer first; on a miss, runs a predictive
        batch read (or a direct indexed read when prefetching is disabled
        or the window has no ETT).
        """
        self._check_open()
        state_key = (key, window)
        self._env.charge_cpu(CAT_STORE_READ, 2 * self._env.cpu.hash_probe)
        stat = self._stat.pop(state_key, None)
        disk_values: list[bytes] = []
        if state_key in self._prefetch:
            disk_values = self._prefetch.pop(state_key)
            self._prefetch_bytes -= sum(len(v) for v in disk_values)
            self.prefetch_stats.hits += 1
        elif stat is not None and stat.disk_entries > 0:
            disk_values = self._read_from_disk(state_key, stat)
        # Mark on-disk state dead and account space amplification.
        if stat is not None and stat.disk_entries > 0:
            self._consumed[(key, window.key_bytes())] = stat.epoch + 1
            self._live_data_bytes -= stat.disk_bytes
        buffered = self._buffer.pop(state_key, None)
        if buffered:
            self._buffer_bytes -= sum(len(key) + len(v) + 16 for v in buffered)
            disk_values.extend(buffered)
        return disk_values

    def _read_from_disk(
        self, state_key: tuple[bytes, Window], stat: _WindowStat
    ) -> list[bytes]:
        """Index-scan then batch-read path (predictive batch read, §4.2 ④-⑦)."""
        live_entries = self._scan_index()
        live_entries = self._maybe_compact(live_entries)
        targets = self._select_prefetch_targets(state_key, live_entries)
        loaded = self._batch_read(targets, live_entries)
        values = loaded.pop(state_key, [])
        # Everything else goes to the prefetch buffer.
        for other_key, other_values in loaded.items():
            size = sum(len(v) for v in other_values)
            if self._prefetch_bytes + size > self._prefetch_capacity:
                continue
            self._prefetch[other_key] = other_values
            self._prefetch_bytes += size
            self.prefetch_stats.loads += 1
        return values

    def _scan_index(
        self, category: str = CAT_STORE_READ
    ) -> dict[tuple[bytes, Window], list[_IndexEntry]]:
        """One sequential pass over the on-disk index log (§4.2 ⑤).

        Returns live entries grouped by (key, window); consumed entries
        are recognized and skipped — the same pass feeds compaction.
        """
        self.prefetch_stats.index_scans += 1
        self._env.bump("aur_index_scans")
        index_file = self._index_file()
        if not self._fs.exists(index_file):
            return {}
        raw = self._fs.read(index_file, category=category)
        self._env.charge_cpu(
            category, len(raw) * self._env.cpu.block_decode_per_byte
        )
        live: dict[tuple[bytes, Window], list[_IndexEntry]] = {}
        pos = 0
        while pos < len(raw):
            entry, pos = _IndexEntry.decode(raw, pos)
            self._env.charge_cpu(category, self._env.cpu.branch_step)
            if entry.epoch < self._consumed.get(
                (entry.key, entry.window.key_bytes()), 0
            ):
                continue  # dead: already fetched & removed at this epoch
            live.setdefault((entry.key, entry.window), []).append(entry)
        return live

    def _select_prefetch_targets(
        self,
        requested: tuple[bytes, Window],
        live_entries: dict[tuple[bytes, Window], list[_IndexEntry]],
    ) -> set[tuple[bytes, Window]]:
        """The requested window plus the N ETT-smallest windows (§4.2)."""
        targets = {requested}
        if self._read_batch_ratio <= 0.0:
            self.prefetch_stats.direct_reads += 1
            return targets
        n_known = len(self._stat)
        batch_n = int(self._read_batch_ratio * n_known)
        if batch_n <= 0:
            self.prefetch_stats.direct_reads += 1
            return targets
        candidates = [
            (stat.ett, state_key)
            for state_key, stat in self._stat.items()
            if stat.ett is not None
            and state_key in live_entries
            and state_key not in self._prefetch
        ]
        self._env.charge_cpu(
            CAT_STORE_READ,
            len(candidates) * self._env.cpu.key_compare * max(1, batch_n).bit_length(),
        )
        soonest = heapq.nsmallest(batch_n, candidates)
        targets.update(state_key for _ett, state_key in soonest)
        return targets

    def _batch_read(
        self,
        targets: set[tuple[bytes, Window]],
        live_entries: dict[tuple[bytes, Window], list[_IndexEntry]],
        category: str = CAT_STORE_READ,
    ) -> dict[tuple[bytes, Window], list[bytes]]:
        """Coalesced device reads of all targets' data ranges (§4.2 ⑥)."""
        wanted: list[tuple[int, int, int, tuple[bytes, Window], int]] = []
        for state_key in targets:
            for entry in live_entries.get(state_key, []):
                wanted.append(
                    (entry.segment, entry.offset, entry.length, state_key, entry.seq)
                )
        wanted.sort()  # device order for coalesced sequential reads
        sequenced: dict[tuple[bytes, Window], list[tuple[int, list[bytes]]]] = {}
        segment_files = {seg.segment_id: seg.file_name for seg in self._segments}
        run: list[tuple[int, int, int, tuple[bytes, Window], int]] = []

        def flush_run() -> None:
            if not run:
                return
            seg_id = run[0][0]
            start = run[0][1]
            end = run[-1][1] + run[-1][2]
            data = self._fs.read(
                segment_files[seg_id], start, end - start, category=category
            )
            self._env.charge_cpu(
                category, len(data) * self._env.cpu.block_decode_per_byte
            )
            for _seg, offset, length, state_key, seq in run:
                record = data[offset - start : offset - start + length]
                values: list[bytes] = []
                pos = 0
                while pos < len(record):
                    value, pos = decode_bytes(record, pos)
                    values.append(value)
                sequenced.setdefault(state_key, []).append((seq, values))
            run.clear()

        for item in wanted:
            if run and (
                item[0] != run[-1][0]
                or item[1] - (run[-1][1] + run[-1][2]) > _COALESCE_GAP_BYTES
            ):
                flush_run()
            run.append(item)
        flush_run()
        # Reassemble each window's values in logical write order (entry
        # sequence), which segment relocation during compaction may have
        # decoupled from device order.
        results: dict[tuple[bytes, Window], list[bytes]] = {}
        for state_key, chunks in sequenced.items():
            chunks.sort(key=lambda pair: pair[0])
            flat: list[bytes] = []
            for _seq, values in chunks:
                flat.extend(values)
            results[state_key] = flat
        return results

    # ------------------------------------------------------------------
    # integrated compaction (§4.2 ⑦)
    # ------------------------------------------------------------------
    def _maybe_compact(
        self, live_entries: dict[tuple[bytes, Window], list[_IndexEntry]]
    ) -> dict[tuple[bytes, Window], list[_IndexEntry]]:
        if self._total_data_bytes <= 0 or self.space_amplification <= self._msa:
            return live_entries
        if not self._integrated_compaction:
            # Ablation: a separate compaction pass pays its own index scan.
            live_entries = self._scan_index()
        return self._compact(live_entries)

    def _compact(
        self, live_entries: dict[tuple[bytes, Window], list[_IndexEntry]]
    ) -> dict[tuple[bytes, Window], list[_IndexEntry]]:
        """Garbage-collect dead log space, segment by segment.

        Reuses the index scan that predictive batch read already performed
        — no extra scan is made (the paper's integrated design, §4.2 ⑦).
        Per-segment liveness is computed from the scanned entries; then:

        * fully dead segments are deleted outright (no data movement),
        * sparse segments (live fraction < ``_REWRITE_THRESHOLD``) have
          their live ranges moved to fresh segments with zero-copy
          transfers,
        * healthy segments are kept untouched,
        * a fresh index log holding only live entries replaces the old
          one, which also empties the consumed-entry set.
        """
        self.compaction_count += 1
        self._env.bump("aur_compactions")
        old_index = self._index_file()
        per_segment_live: dict[int, int] = {}
        for entries in live_entries.values():
            for entry in entries:
                per_segment_live[entry.segment] = (
                    per_segment_live.get(entry.segment, 0) + entry.length
                )
        active_tail = self._segments[-1] if self._segments else None
        keep: list[_Segment] = []
        rewrite: dict[int, _Segment] = {}
        for seg in self._segments:
            live = per_segment_live.get(seg.segment_id, 0)
            if seg is active_tail or live >= seg.size * _REWRITE_THRESHOLD:
                keep.append(seg)
            elif live == 0:
                self._total_data_bytes -= seg.size
                self._fs.delete(seg.file_name)
            else:
                rewrite[seg.segment_id] = seg

        self._generation += 1
        self._segments = keep

        # Move live ranges of sparse segments, coalescing adjacent ones.
        flat: list[tuple[int, int, int, tuple[bytes, Window], int]] = []
        for state_key, entries in live_entries.items():
            for idx, entry in enumerate(entries):
                if entry.segment in rewrite:
                    flat.append((entry.segment, entry.offset, entry.length, state_key, idx))
        flat.sort()
        segment = self._new_segment() if flat else None
        run: list[tuple[int, int, int, tuple[bytes, Window], int]] = []

        def flush_run() -> None:
            nonlocal segment
            if not run:
                return
            seg_id = run[0][0]
            start = run[0][1]
            end = run[-1][1] + run[-1][2]
            length = end - start
            if segment.size + length > self._segment_bytes and segment.size > 0:
                segment = self._new_segment()
            dst_offset = self._fs.zero_copy_transfer(
                rewrite[seg_id].file_name, start, length, segment.file_name,
                category=CAT_COMPACTION,
            )
            segment.size += length
            self._total_data_bytes += length
            for _seg, offset, rec_len, state_key, idx in run:
                old_entry = live_entries[state_key][idx]
                live_entries[state_key][idx] = _IndexEntry(
                    state_key[0], state_key[1], segment.segment_id,
                    dst_offset + (offset - start), rec_len,
                    epoch=old_entry.epoch,
                    seq=old_entry.seq,
                )
            run.clear()

        for item in flat:
            if run and (
                item[0] != run[-1][0]
                or item[1] - (run[-1][1] + run[-1][2]) > _COALESCE_GAP_BYTES
            ):
                flush_run()
            run.append(item)
        flush_run()
        for seg in rewrite.values():
            self._total_data_bytes -= seg.size
            self._fs.delete(seg.file_name)

        # Fresh index log with only the (relocated) live entries.
        index_payload = bytearray()
        for entries in live_entries.values():
            for entry in entries:
                index_payload.extend(entry.encode())
        self._fs.append(self._index_file(), bytes(index_payload), category=CAT_COMPACTION)
        if self._fs.exists(old_index):
            self._fs.delete(old_index)
        self._consumed.clear()
        self._live_data_bytes = sum(
            entry.length for entries in live_entries.values() for entry in entries
        )
        return live_entries

    # ------------------------------------------------------------------
    # elastic rescaling
    # ------------------------------------------------------------------
    def export_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> StateExport:
        """Extract the moved key-groups: one index scan + coalesced batch
        reads of exactly the moved windows' data ranges.

        The Stat-table rows (including ETTs) travel with the data so the
        new owner keeps predictive batch-read eligibility.  The moved
        on-disk ranges are marked consumed — normal compaction reclaims
        them later.
        """
        self._check_open()
        self.flush()
        moved = [sk for sk in self._stat if key_group_of(sk[0]) in key_groups]
        export = StateExport()
        if not moved:
            return export
        live_entries = self._scan_index(category=CAT_MIGRATION)
        targets = {
            sk for sk in moved if sk in live_entries and sk not in self._prefetch
        }
        loaded = (
            self._batch_read(targets, live_entries, category=CAT_MIGRATION)
            if targets
            else {}
        )
        for state_key in moved:
            key, window = state_key
            stat = self._stat.pop(state_key)
            values = loaded.pop(state_key, [])
            prefetched = self._prefetch.pop(state_key, None)
            if prefetched is not None:
                self._prefetch_bytes -= sum(len(v) for v in prefetched)
                if not values:
                    values = prefetched
            if stat.disk_entries > 0:
                self._consumed[(key, window.key_bytes())] = stat.epoch + 1
                self._live_data_bytes -= stat.disk_bytes
            export.entries.append(
                ExportedEntry(key, window, KIND_LIST, values, ett=stat.ett)
            )
        return export

    def import_state(self, export: StateExport) -> None:
        """Load migrated windows: data records + index entries + Stat rows.

        Import happens before processing resumes, so the fresh sequence
        numbers keep every migrated record ordered before any post-rescale
        append of the same window.
        """
        self._check_open()
        if not export.entries:
            return
        index_payload = bytearray()
        segment = self._current_segment()
        segment_payload = bytearray()
        for entry in export.entries:
            state_key = (entry.key, entry.window)
            stat = self._stat.get(state_key)
            if stat is None:
                stat = _WindowStat(
                    epoch=self._consumed.get((entry.key, entry.window.key_bytes()), 0)
                )
                self._stat[state_key] = stat
                self._env.charge_cpu(CAT_MIGRATION, self._env.cpu.allocation)
            if entry.ett is not None and (stat.ett is None or entry.ett > stat.ett):
                stat.ett = entry.ett
            if not entry.values:
                continue
            record = bytearray()
            for value in entry.values:
                record += encode_bytes(value)
            if (
                segment.size + len(segment_payload) + len(record) > self._segment_bytes
                and segment_payload
            ):
                self._write_segment_payload(segment, segment_payload, category=CAT_MIGRATION)
                segment = self._new_segment()
                segment_payload = bytearray()
            self._entry_seq += 1
            index_entry = _IndexEntry(
                entry.key, entry.window, segment.segment_id,
                segment.size + len(segment_payload), len(record), len(entry.values),
                epoch=stat.epoch,
                seq=self._entry_seq,
            )
            segment_payload += record
            index_payload += index_entry.encode()
            stat.disk_bytes += len(record)
            stat.disk_entries += 1
            self._live_data_bytes += len(record)
        if segment_payload:
            self._write_segment_payload(segment, segment_payload, category=CAT_MIGRATION)
        if index_payload:
            self._fs.append(self._index_file(), bytes(index_payload), category=CAT_MIGRATION)

    def export_group_state(
        self, key_groups: set[int] | None, key_group_of: KeyGroupFn
    ) -> StateExport:
        """Read — *without removing* — the selected key-groups' windows.

        The sharded checkpointer's path: one index scan plus coalesced
        batch reads (both charged as recovery) reconstruct the on-disk
        values; buffered tuples follow in ``get`` order, and the prefetch
        buffer (a mirror of on-disk state) is preferred when it already
        holds a window.  Stat rows (ETT) travel with the entries, as in
        :meth:`export_state`, so a restore keeps batch-read eligibility.
        No state, index, or compaction bookkeeping changes.
        """
        self._check_open()
        wanted = [
            sk for sk in self._stat
            if key_groups is None or key_group_of(sk[0]) in key_groups
        ]
        export = StateExport()
        if not wanted:
            return export
        need_read = [
            sk for sk in wanted
            if sk not in self._prefetch and self._stat[sk].disk_entries > 0
        ]
        live_entries = self._scan_index(category=CAT_RECOVERY) if need_read else {}
        targets = {sk for sk in need_read if sk in live_entries}
        loaded = (
            self._batch_read(targets, live_entries, category=CAT_RECOVERY)
            if targets
            else {}
        )
        for state_key in wanted:
            key, window = state_key
            stat = self._stat[state_key]
            prefetched = self._prefetch.get(state_key)
            values = list(prefetched) if prefetched else list(loaded.get(state_key, []))
            values.extend(self._buffer.get(state_key, []))
            export.entries.append(
                ExportedEntry(key, window, KIND_LIST, values, ett=stat.ett)
            )
        return export

    # ------------------------------------------------------------------
    def on_watermark(self, timestamp: float) -> None:
        if timestamp > self._event_time:
            self._event_time = timestamp

    def drop_window(self, key: bytes, window: Window) -> None:
        """Discard a (key, window) without reading it."""
        self._check_open()
        state_key = (key, window)
        stat = self._stat.pop(state_key, None)
        if stat is not None and stat.disk_entries > 0:
            self._consumed[(key, window.key_bytes())] = stat.epoch + 1
            self._live_data_bytes -= stat.disk_bytes
        buffered = self._buffer.pop(state_key, None)
        if buffered:
            self._buffer_bytes -= sum(len(key) + len(v) + 16 for v in buffered)
        prefetched = self._prefetch.pop(state_key, None)
        if prefetched:
            self._prefetch_bytes -= sum(len(v) for v in prefetched)

    # ------------------------------------------------------------------
    # checkpointing (§8)
    # ------------------------------------------------------------------
    def snapshot(self, upload_env=None):
        """Flush, then capture logs + Stat/segment metadata.

        The prefetch buffer is deliberately dropped — it is a cache and
        will repopulate through predictive batch reads after recovery.
        With ``upload_env`` the file copies are charged asynchronously to
        that environment (§8); only the flush blocks this store.
        """
        from repro.snapshot import StoreSnapshot, copy_files_out, pack_meta, seal_snapshot

        self._check_open()
        self.flush()
        meta = pack_meta(
            self._env,
            {
                "stat": {
                    key: (stat.ett, stat.disk_bytes, stat.disk_entries, stat.epoch)
                    for key, stat in self._stat.items()
                },
                "consumed": dict(self._consumed),
                "generation": self._generation,
                "segment_counter": self._segment_counter,
                "segments": [
                    (seg.segment_id, seg.file_name, seg.size) for seg in self._segments
                ],
                "total_data_bytes": self._total_data_bytes,
                "live_data_bytes": self._live_data_bytes,
                "event_time": self._event_time,
                "entry_seq": self._entry_seq,
            },
        )
        files = copy_files_out(self._env, self._fs, self._name + "/", upload_env)
        return seal_snapshot(self._env, StoreSnapshot("aur", meta, files))

    def restore(self, snapshot) -> None:
        from repro.errors import StoreRestoreError
        from repro.snapshot import copy_files_in, unpack_meta, verify_snapshot

        self._check_open()
        verify_snapshot(self._env, snapshot)
        if self._buffer or self._stat or self._segments or self._consumed:
            raise StoreRestoreError(f"restore into non-empty aur store {self._name}")
        copy_files_in(self._env, self._fs, snapshot.files)
        state = unpack_meta(self._env, snapshot.meta)
        self._stat = {
            key: _WindowStat(ett=ett, disk_bytes=disk_bytes,
                             disk_entries=entries, epoch=epoch)
            for key, (ett, disk_bytes, entries, epoch) in state["stat"].items()
        }
        self._consumed = dict(state["consumed"])
        self._generation = state["generation"]
        self._segment_counter = state["segment_counter"]
        self._segments = [
            _Segment(seg_id, file_name, size)
            for seg_id, file_name, size in state["segments"]
        ]
        self._total_data_bytes = state["total_data_bytes"]
        self._live_data_bytes = state["live_data_bytes"]
        self._event_time = state["event_time"]
        self._entry_seq = state.get("entry_seq", 0)
        self._buffer.clear()
        self._buffer_bytes = 0
        self._prefetch.clear()
        self._prefetch_bytes = 0

    def close(self) -> None:
        self._closed = True
        self._buffer.clear()
        self._prefetch.clear()
        self._stat.clear()
