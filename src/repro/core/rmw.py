"""Read-Modify-Write (RMW) store (§4.3).

Incremental aggregation reads state on *every* tuple arrival, so read-time
prediction is pointless; what matters is O(1) access without the
synchronization machinery a concurrent store would need.  The store keeps:

* an in-memory **hash write buffer** of hot aggregates (dirty entries),
* an in-memory **hash index** mapping spilled (key, window) pairs to their
  exact (segment, offset, length) in the value log,
* rolling **log segments** on disk, compacted when space amplification
  exceeds the MSA threshold — like hash KV stores, but single-threaded by
  design (no epoch charges).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StoreClosedError
from repro.kvstores.api import KIND_AGG, ExportedEntry, KeyGroupFn, StateExport
from repro.model import Window
from repro.serde.codec import decode_bytes, encode_bytes
from repro.simenv import (
    CAT_COMPACTION,
    CAT_MIGRATION,
    CAT_RECOVERY,
    CAT_STORE_READ,
    CAT_STORE_WRITE,
    SimEnv,
)
from repro.storage.filesystem import SimFileSystem


@dataclass
class _DiskLocation:
    segment: int
    offset: int
    length: int


@dataclass
class _Segment:
    segment_id: int
    file_name: str
    size: int = 0


class RmwStore:
    """One RMW store instance (one of ``m`` per physical operator)."""

    def __init__(
        self,
        env: SimEnv,
        fs: SimFileSystem,
        name: str = "rmw",
        write_buffer_bytes: int = 2 << 20,
        max_space_amplification: float = 1.5,
        data_segment_bytes: int = 4 << 20,
    ) -> None:
        self._env = env
        self._fs = fs
        self._name = name
        self._write_buffer_bytes = write_buffer_bytes
        self._msa = max_space_amplification
        self._segment_bytes = data_segment_bytes

        # Hot aggregates, LRU order (oldest first); values are bytes.
        self._buffer: OrderedDict[tuple[bytes, Window], bytes] = OrderedDict()
        self._buffer_bytes = 0
        # Spilled aggregates: exact on-disk location per (key, window).
        self._index: dict[tuple[bytes, Window], _DiskLocation] = {}
        self._generation = 0
        self._segment_counter = 0
        self._segments: list[_Segment] = []
        self._total_data_bytes = 0
        self._live_data_bytes = 0
        self._closed = False
        self.compaction_count = 0

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        index_bytes = sum(len(k) + 48 for (k, _w) in self._index)
        return self._buffer_bytes + index_bytes

    @property
    def disk_bytes(self) -> int:
        return self._fs.total_bytes(self._name + "/")

    @property
    def space_amplification(self) -> float:
        if self._live_data_bytes <= 0:
            return 1.0 if self._total_data_bytes == 0 else float("inf")
        return self._total_data_bytes / self._live_data_bytes

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"RMW store {self._name} is closed")

    def _new_segment(self) -> _Segment:
        self._segment_counter += 1
        segment = _Segment(
            self._segment_counter,
            f"{self._name}/data_{self._generation:04d}_{self._segment_counter:06d}.log",
        )
        self._segments.append(segment)
        return segment

    def _current_segment(self) -> _Segment:
        if not self._segments or self._segments[-1].size >= self._segment_bytes:
            return self._new_segment()
        return self._segments[-1]

    @staticmethod
    def _entry_bytes(key: bytes, window: Window, value: bytes) -> int:
        return len(key) + 16 + len(value) + 16

    # ------------------------------------------------------------------
    # Listing 1: A Get(K, W)  /  void Put(K, W, A)
    # ------------------------------------------------------------------
    def get(self, key: bytes, window: Window) -> bytes | None:
        """Read the current aggregate (hash probe; disk read if spilled)."""
        self._check_open()
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.hash_probe)
        state_key = (key, window)
        value = self._buffer.get(state_key)
        if value is not None:
            self._buffer.move_to_end(state_key)
            return value
        location = self._index.get(state_key)
        if location is None:
            return None
        value = self._read_location(location, CAT_STORE_READ)
        # Promote to the write buffer (working set).
        self._admit(state_key, value, dirty=False)
        return value

    def put(self, key: bytes, window: Window, aggregate: bytes) -> None:
        """Write back the updated aggregate (in-memory; spilled under pressure)."""
        self._check_open()
        self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.hash_probe)
        self._admit((key, window), aggregate, dirty=True)

    def multi_get(self, cells: list[tuple[bytes, Window]]) -> list[bytes | None]:
        """Batch read: one open-check, then :meth:`get`'s body per cell."""
        self._check_open()
        charge = self._env.charge_cpu
        probe = self._env.cpu.hash_probe
        buffer = self._buffer
        index = self._index
        results: list[bytes | None] = []
        for key, window in cells:
            charge(CAT_STORE_READ, probe)
            state_key = (key, window)
            value = buffer.get(state_key)
            if value is not None:
                buffer.move_to_end(state_key)
                results.append(value)
                continue
            location = index.get(state_key)
            if location is None:
                results.append(None)
                continue
            value = self._read_location(location, CAT_STORE_READ)
            self._admit(state_key, value, dirty=False)
            results.append(value)
        return results

    def multi_put(self, entries: list[tuple[bytes, Window, bytes]]) -> None:
        """Batch write-back: one open-check, then :meth:`put`'s body per
        entry — the per-entry spill check is the modelled behaviour and
        must not depend on batch size."""
        self._check_open()
        charge = self._env.charge_cpu
        probe = self._env.cpu.hash_probe
        admit = self._admit
        for key, window, aggregate in entries:
            charge(CAT_STORE_WRITE, probe)
            admit((key, window), aggregate, dirty=True)

    def remove(self, key: bytes, window: Window) -> bytes | None:
        """Fetch & remove the aggregate (window trigger)."""
        self._check_open()
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.hash_probe)
        state_key = (key, window)
        value = self._buffer.pop(state_key, None)
        if value is not None:
            self._buffer_bytes -= self._entry_bytes(key, window, value)
        location = self._index.pop(state_key, None)
        if location is not None:
            if value is None:
                value = self._read_location(location, CAT_STORE_READ)
            self._live_data_bytes -= location.length
            self._maybe_compact()
        return value

    # ------------------------------------------------------------------
    def _admit(self, state_key: tuple[bytes, Window], value: bytes, dirty: bool) -> None:
        old = self._buffer.pop(state_key, None)
        if old is not None:
            self._buffer_bytes -= self._entry_bytes(state_key[0], state_key[1], old)
        self._buffer[state_key] = value
        self._buffer_bytes += self._entry_bytes(state_key[0], state_key[1], value)
        if dirty and state_key in self._index:
            # The on-disk copy is now stale.
            location = self._index.pop(state_key)
            self._live_data_bytes -= location.length
        if self._buffer_bytes >= self._write_buffer_bytes:
            self._spill()

    def _spill(self, target: int | None = None) -> None:
        """Flush the write buffer down to ``target`` bytes (default: half)."""
        if target is None:
            target = self._write_buffer_bytes // 2
        segment = self._current_segment()
        payload = bytearray()
        spilled: list[tuple[tuple[bytes, Window], int, int]] = []
        while self._buffer and self._buffer_bytes > target:
            state_key, value = self._buffer.popitem(last=False)
            key, window = state_key
            self._buffer_bytes -= self._entry_bytes(key, window, value)
            record = encode_bytes(key) + window.key_bytes() + encode_bytes(value)
            if segment.size + len(payload) + len(record) > self._segment_bytes and payload:
                self._flush_payload(segment, payload, spilled)
                segment = self._new_segment()
                payload = bytearray()
                spilled = []
            spilled.append((state_key, segment.size + len(payload), len(record)))
            payload += record
        if payload:
            self._flush_payload(segment, payload, spilled)
        self._maybe_compact()

    def _flush_payload(
        self,
        segment: _Segment,
        payload: bytearray,
        spilled: list[tuple[tuple[bytes, Window], int, int]],
    ) -> None:
        self._fs.append(segment.file_name, bytes(payload), category=CAT_STORE_WRITE)
        segment.size += len(payload)
        self._total_data_bytes += len(payload)
        for state_key, offset, length in spilled:
            stale = self._index.get(state_key)
            if stale is not None:
                self._live_data_bytes -= stale.length
            self._index[state_key] = _DiskLocation(segment.segment_id, offset, length)
            self._live_data_bytes += length

    def _read_location(self, location: _DiskLocation, category: str) -> bytes:
        segment_files = {seg.segment_id: seg.file_name for seg in self._segments}
        raw = self._fs.read(
            segment_files[location.segment], location.offset, location.length,
            category=category,
        )
        _key, pos = decode_bytes(raw, 0)
        pos += 16  # window bytes
        value, _pos = decode_bytes(raw, pos)
        return value

    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        if self._total_data_bytes <= self._segment_bytes:
            return
        if self.space_amplification > self._msa:
            self._compact()

    def _compact(self) -> None:
        """Rewrite live spilled aggregates into a new generation."""
        self.compaction_count += 1
        self._env.bump("rmw_compactions")
        old_segments = {seg.segment_id: seg for seg in self._segments}
        live = sorted(
            self._index.items(), key=lambda kv: (kv[1].segment, kv[1].offset)
        )
        self._generation += 1
        self._segments = []
        self._total_data_bytes = 0
        self._live_data_bytes = 0
        segment = self._new_segment()
        payload = bytearray()
        pending: list[tuple[tuple[bytes, Window], int, int]] = []
        # Read each old segment sequentially once; slice live records out.
        needed = {loc.segment for _k, loc in live}
        segment_data = {
            seg_id: self._fs.read(old_segments[seg_id].file_name, category=CAT_COMPACTION)
            for seg_id in sorted(needed)
        }
        for state_key, location in live:
            raw = segment_data[location.segment][
                location.offset : location.offset + location.length
            ]
            if segment.size + len(payload) + len(raw) > self._segment_bytes and payload:
                self._commit_compact_payload(segment, payload, pending)
                segment = self._new_segment()
                payload = bytearray()
                pending = []
            pending.append((state_key, segment.size + len(payload), len(raw)))
            payload += raw
        if payload:
            self._commit_compact_payload(segment, payload, pending)
        for seg in old_segments.values():
            if self._fs.exists(seg.file_name):
                self._fs.delete(seg.file_name)

    def _commit_compact_payload(
        self,
        segment: _Segment,
        payload: bytearray,
        pending: list[tuple[tuple[bytes, Window], int, int]],
    ) -> None:
        self._fs.append(segment.file_name, bytes(payload), category=CAT_COMPACTION)
        segment.size += len(payload)
        self._total_data_bytes += len(payload)
        for state_key, offset, length in pending:
            self._index[state_key] = _DiskLocation(segment.segment_id, offset, length)
            self._live_data_bytes += length

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist nothing eagerly — RMW state stays hot in the buffer."""
        self._check_open()

    # ------------------------------------------------------------------
    # elastic rescaling
    # ------------------------------------------------------------------
    def export_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> StateExport:
        """Extract the moved key-groups' aggregates (hot + spilled).

        Hot buffer entries leave directly; spilled ones need one indexed
        read each.  Dead log space left behind is reclaimed by normal
        compaction.
        """
        self._check_open()
        export = StateExport()
        for state_key in [sk for sk in self._buffer if key_group_of(sk[0]) in key_groups]:
            key, window = state_key
            value = self._buffer.pop(state_key)
            self._buffer_bytes -= self._entry_bytes(key, window, value)
            location = self._index.pop(state_key, None)
            if location is not None:
                self._live_data_bytes -= location.length
            export.entries.append(ExportedEntry(key, window, KIND_AGG, [value]))
        for state_key in [sk for sk in self._index if key_group_of(sk[0]) in key_groups]:
            key, window = state_key
            location = self._index.pop(state_key)
            value = self._read_location(location, CAT_MIGRATION)
            self._live_data_bytes -= location.length
            export.entries.append(ExportedEntry(key, window, KIND_AGG, [value]))
        if export.entries:
            self._maybe_compact()
        return export

    def import_state(self, export: StateExport) -> None:
        """Admit migrated aggregates into the write buffer (hot on arrival)."""
        self._check_open()
        for entry in export.entries:
            self._env.charge_cpu(CAT_MIGRATION, self._env.cpu.hash_probe)
            self._admit((entry.key, entry.window), entry.values[0], dirty=True)

    def export_group_state(
        self, key_groups: set[int] | None, key_group_of: KeyGroupFn
    ) -> StateExport:
        """Read — *without removing* — the selected key-groups' aggregates.

        The sharded checkpointer's path: hot buffer values are copied
        out directly; spilled-only aggregates take one indexed read each
        (charged as recovery).  Buffer, index, and log space all stay
        untouched.
        """
        self._check_open()
        export = StateExport()

        def wanted(key: bytes) -> bool:
            return key_groups is None or key_group_of(key) in key_groups

        for state_key, value in self._buffer.items():
            if not wanted(state_key[0]):
                continue
            self._env.charge_cpu(CAT_RECOVERY, self._env.cpu.hash_probe)
            export.entries.append(
                ExportedEntry(state_key[0], state_key[1], KIND_AGG, [value])
            )
        for state_key, location in self._index.items():
            if state_key in self._buffer or not wanted(state_key[0]):
                continue
            value = self._read_location(location, CAT_RECOVERY)
            export.entries.append(
                ExportedEntry(state_key[0], state_key[1], KIND_AGG, [value])
            )
        return export

    # ------------------------------------------------------------------
    # checkpointing (§8)
    # ------------------------------------------------------------------
    def snapshot(self, upload_env=None):
        """Spill every hot aggregate, then capture logs + hash index.

        Spill-first matches the paper's prescription (and Flink's
        RocksDB strategy): on-disk data can then be transferred
        asynchronously while writes continue in memory.
        """
        from repro.snapshot import StoreSnapshot, copy_files_out, pack_meta, seal_snapshot

        self._check_open()
        self._spill(target=0)
        meta = pack_meta(
            self._env,
            {
                "index": {
                    key: (loc.segment, loc.offset, loc.length)
                    for key, loc in self._index.items()
                },
                "generation": self._generation,
                "segment_counter": self._segment_counter,
                "segments": [
                    (seg.segment_id, seg.file_name, seg.size) for seg in self._segments
                ],
                "total_data_bytes": self._total_data_bytes,
                "live_data_bytes": self._live_data_bytes,
            },
        )
        files = copy_files_out(self._env, self._fs, self._name + "/", upload_env)
        return seal_snapshot(self._env, StoreSnapshot("rmw", meta, files))

    def restore(self, snapshot) -> None:
        from repro.errors import StoreRestoreError
        from repro.snapshot import copy_files_in, unpack_meta, verify_snapshot

        self._check_open()
        verify_snapshot(self._env, snapshot)
        if self._buffer or self._index or self._segments:
            raise StoreRestoreError(f"restore into non-empty rmw store {self._name}")
        copy_files_in(self._env, self._fs, snapshot.files)
        state = unpack_meta(self._env, snapshot.meta)
        self._index = {
            key: _DiskLocation(segment, offset, length)
            for key, (segment, offset, length) in state["index"].items()
        }
        self._generation = state["generation"]
        self._segment_counter = state["segment_counter"]
        self._segments = [
            _Segment(seg_id, file_name, size)
            for seg_id, file_name, size in state["segments"]
        ]
        self._total_data_bytes = state["total_data_bytes"]
        self._live_data_bytes = state["live_data_bytes"]
        self._buffer.clear()
        self._buffer_bytes = 0

    def close(self) -> None:
        self._closed = True
        self._buffer.clear()
        self._index.clear()
