"""Store-pattern determination (§3.1).

At application launch FlowKV inspects the window operation's function
signatures:

* aggregate function — implements the incremental-merge interface
  (Flink's ``AggregateFunction``) → **RMW**; requires the full tuple list
  (``ProcessWindowFunction``) → **Append**;
* window function — fixed/sliding create windows at fixed intervals →
  **Aligned Read**; session/count determine boundaries per key →
  **Unaligned Read**; custom functions default to Unaligned, which can
  cover both (§8).

Read alignment is irrelevant for RMW (state is read on every arrival).
"""

from __future__ import annotations

import enum

from repro.errors import PatternError


class StorePattern(enum.Enum):
    """The three customized FlowKV stores."""

    AAR = "append_aligned_read"
    AUR = "append_unaligned_read"
    RMW = "read_modify_write"


class WindowKind(enum.Enum):
    """Window-function families and their read alignment."""

    FIXED = "fixed"
    SLIDING = "sliding"
    SESSION = "session"
    GLOBAL = "global"
    COUNT = "count"
    CUSTOM = "custom"

    @property
    def aligned(self) -> bool:
        """Whether windows of all keys share trigger times."""
        if self in (WindowKind.FIXED, WindowKind.SLIDING, WindowKind.GLOBAL):
            return True
        if self in (WindowKind.SESSION, WindowKind.COUNT, WindowKind.CUSTOM):
            return False
        raise PatternError(f"unknown window kind: {self}")  # pragma: no cover


def determine_pattern(incremental: bool, window_kind: WindowKind) -> StorePattern:
    """Map (aggregate signature, window function) to a store pattern.

    Args:
        incremental: True if the aggregate function merges each tuple into
            an intermediate aggregate (Flink ``AggregateFunction``); False
            if it needs the full tuple list (``ProcessWindowFunction``).
        window_kind: the window-function family.

    Returns:
        The FlowKV store pattern to deploy for this operation.
    """
    if incremental:
        return StorePattern.RMW
    return StorePattern.AAR if window_kind.aligned else StorePattern.AUR
