"""Deterministic fault injection (the robustness harness).

Nothing in a simulator fails by accident, so failures are *scheduled*: a
:class:`FaultPlan` names, ahead of time, exactly which faults fire and
when — at a simulated time, on the Nth device I/O, or on the Nth passage
of a named crash point — and a seed fixes every data-dependent choice
(how much of a torn write survives, which bit flips).  The same plan
therefore produces the same fault times, the same recovery path, and the
same recovery metrics on every run, which is what lets the CI fault
matrix assert recovery *equivalence* instead of merely "it didn't die".

Fault kinds:

* ``error`` — the device read/write raises :class:`DiskIOError`
  (transient by contract; snapshot and migration I/O retry through
  :func:`with_retries`).
* ``torn`` — an append silently loses its tail (power loss mid-write);
  detected later by checkpoint checksums, never at write time.
* ``bitflip`` — one bit of the written payload is flipped (latent media
  corruption); likewise only detectable by checksum.
* crash — :class:`InjectedCrashError` is raised at an instrumented
  crash point (process kill); the :class:`repro.recovery.RecoveryManager`
  restores the latest complete checkpoint and replays.

The injector is shared by every :class:`~repro.simenv.SimEnv` of a job
(operator instances and the checkpoint storage alike), so I/O ordinals
are global and deterministic under the single-threaded simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import (
    DiskIOError,
    InjectedCrashError,
    NodeFailureError,
    RetriesExhaustedError,
)
from repro.simenv.metrics import CAT_RECOVERY

# Canonical crash-point names (the instrumented sites).
CRASH_RUNTIME_RECORD = "runtime.record"  # between two input records
CRASH_RUNTIME_WATERMARK = "runtime.watermark"  # after a watermark broadcast
CRASH_SNAPSHOT_FILE = "snapshot.file"  # between two checkpoint file writes
CRASH_SNAPSHOT_COMMIT = "snapshot.commit"  # after the temp manifest, before the rename
CRASH_MIGRATE_EXPORT = "migrate.export"  # before a source instance exports
CRASH_MIGRATE_IMPORT = "migrate.import"  # before a destination instance imports
CRASH_CHANGELOG_SEAL = "changelog.seal"  # between two changelog segment ships
CRASH_STANDBY_PROMOTE = "standby.promote"  # before a standby instance promotes

CRASH_POINTS = (
    CRASH_RUNTIME_RECORD,
    CRASH_RUNTIME_WATERMARK,
    CRASH_SNAPSHOT_FILE,
    CRASH_SNAPSHOT_COMMIT,
    CRASH_MIGRATE_EXPORT,
    CRASH_MIGRATE_IMPORT,
    CRASH_CHANGELOG_SEAL,
    CRASH_STANDBY_PROMOTE,
)

KIND_ERROR = "error"
KIND_TORN = "torn"
KIND_BITFLIP = "bitflip"
KIND_SLOW = "slow"  # network only: the link transfer takes `factor` x longer


@dataclass
class DiskFault:
    """One scheduled device fault.

    Fires on I/Os matching ``op`` (read/write/any) and ``path_prefix``,
    triggered either by ordinal (``on_io``: the fault is active for the
    ``times`` matching I/Os starting at that 1-based ordinal) or by
    simulated time (``at_time``: the first ``times`` matching I/Os at or
    after that clock reading).
    """

    kind: str  # KIND_ERROR | KIND_TORN | KIND_BITFLIP | KIND_SLOW
    op: str = "any"  # "read" | "write" | "transfer" | "net" | "any"
    on_io: int | None = None
    at_time: float | None = None
    path_prefix: str = ""
    times: int = 1
    factor: float = 1.0  # KIND_SLOW: link-time multiplier
    fired: int = field(default=0, init=False)

    def matches(self, op: str, name: str, io_index: int, now: float) -> bool:
        if self.fired >= self.times:
            return False
        if self.op != "any" and self.op != op:
            return False
        if not name.startswith(self.path_prefix):
            return False
        if self.on_io is not None:
            return self.on_io <= io_index < self.on_io + self.times
        if self.at_time is not None:
            return now >= self.at_time
        return False


@dataclass
class CrashFault:
    """One scheduled process kill at a named crash point.

    Triggered on the ``on_hit``-th passage of ``site`` (1-based, counted
    across restarts — a crash fires exactly once and a replay passing
    the same site again does not re-die), or at the first passage with
    simulated time ``>= at_time``.
    """

    site: str
    on_hit: int | None = None
    at_time: float | None = None
    node: int | None = None  # kills this whole cluster node instead of one process
    fired: bool = field(default=False, init=False)


@dataclass(frozen=True)
class FaultRecord:
    """One fired fault — the determinism witness.

    Two runs of the same :class:`FaultPlan` must produce identical
    record sequences (same targets, same I/O ordinals, same simulated
    fault times).
    """

    kind: str
    target: str
    at_time: float
    io_index: int | None = None
    detail: str = ""


class FaultPlan:
    """A seeded, schedulable set of faults (fluent builder).

    >>> plan = (FaultPlan(seed=7)
    ...         .crash(CRASH_RUNTIME_RECORD, on_hit=500)
    ...         .torn_write(on_io=120, path_prefix="chk/")
    ...         .fail_io(op="write", on_io=80, times=2))
    >>> injector = plan.build()
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.disk_faults: list[DiskFault] = []
        self.crashes: list[CrashFault] = []

    def fail_io(
        self,
        op: str = "any",
        on_io: int | None = None,
        at_time: float | None = None,
        path_prefix: str = "",
        times: int = 1,
    ) -> "FaultPlan":
        """Schedule transient :class:`DiskIOError` on matching I/Os."""
        self.disk_faults.append(
            DiskFault(KIND_ERROR, op, on_io, at_time, path_prefix, times)
        )
        return self

    def torn_write(
        self,
        on_io: int | None = None,
        at_time: float | None = None,
        path_prefix: str = "",
        times: int = 1,
    ) -> "FaultPlan":
        """Schedule a silent tail-truncating append (power-loss tear)."""
        self.disk_faults.append(
            DiskFault(KIND_TORN, "write", on_io, at_time, path_prefix, times)
        )
        return self

    def bit_flip(
        self,
        on_io: int | None = None,
        at_time: float | None = None,
        path_prefix: str = "",
        times: int = 1,
    ) -> "FaultPlan":
        """Schedule a silent one-bit corruption of a written payload."""
        self.disk_faults.append(
            DiskFault(KIND_BITFLIP, "write", on_io, at_time, path_prefix, times)
        )
        return self

    def drop_link(
        self,
        on_io: int | None = None,
        at_time: float | None = None,
        path_prefix: str = "",
        times: int = 1,
    ) -> "FaultPlan":
        """Schedule transient :class:`DiskIOError` on cross-node transfers.

        ``path_prefix`` matches the transfer label (e.g. ``net/migrate``);
        like device faults, a dropped link retries where the caller wraps
        the transfer in :func:`with_retries` and escalates to rollback or
        crash handling once the budget is spent.
        """
        self.disk_faults.append(
            DiskFault(KIND_ERROR, "net", on_io, at_time, path_prefix, times)
        )
        return self

    def slow_link(
        self,
        factor: float,
        on_io: int | None = None,
        at_time: float | None = None,
        path_prefix: str = "",
        times: int = 1,
    ) -> "FaultPlan":
        """Schedule a degraded link: matching transfers take ``factor`` x
        their modelled time (congestion / failing NIC)."""
        if factor < 1.0:
            raise ValueError(f"slow_link factor must be >= 1: {factor}")
        self.disk_faults.append(
            DiskFault(KIND_SLOW, "net", on_io, at_time, path_prefix, times, factor)
        )
        return self

    def crash(
        self, site: str, on_hit: int | None = None, at_time: float | None = None
    ) -> "FaultPlan":
        """Schedule a process kill at a named crash point."""
        if site not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {site!r}; one of {CRASH_POINTS}")
        if on_hit is None and at_time is None:
            raise ValueError("crash fault needs on_hit or at_time")
        self.crashes.append(CrashFault(site, on_hit, at_time))
        return self

    def kill_node(
        self,
        node: int,
        site: str = CRASH_RUNTIME_RECORD,
        on_hit: int | None = None,
        at_time: float | None = None,
    ) -> "FaultPlan":
        """Schedule a whole-node failure (all instances + local disk).

        Raises :class:`~repro.errors.NodeFailureError` at the named crash
        point; cluster-aware recovery drops the node's checkpoint-shard
        replicas before restoring from surviving peers.
        """
        if node < 0:
            raise ValueError(f"node id must be >= 0: {node}")
        if site not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {site!r}; one of {CRASH_POINTS}")
        if on_hit is None and at_time is None:
            raise ValueError("node-kill fault needs on_hit or at_time")
        self.crashes.append(CrashFault(site, on_hit, at_time, node=node))
        return self

    def build(self) -> "FaultInjector":
        self.validate()
        return FaultInjector(self)

    # ------------------------------------------------------------------
    # construction-time validation
    # ------------------------------------------------------------------
    _OP_DOMAINS = {
        "read": frozenset(("read",)),
        "write": frozenset(("write",)),
        "any": frozenset(("read", "write")),
        "transfer": frozenset(("transfer",)),
        "net": frozenset(("net",)),
    }

    def validate(self) -> None:
        """Reject plans that could never fire the way they read.

        Two classes of silent mistake are caught here instead of being
        discovered as a mysteriously fault-free run:

        * crash faults naming an unknown site (nothing instruments it,
          so it never fires) — also possible by appending to
          ``crashes`` directly, bypassing the fluent builder's check;
        * two ordinal-triggered device faults claiming overlapping I/O
          ordinals on intersecting op domains and prefix-compatible
          paths: whichever is listed first wins (or both mutate the
          same write), which is order-dependent and almost always a
          copy-paste error.  Two ``slow_link`` faults may overlap —
          their factors compound multiplicatively by design.
        """
        for fault in self.crashes:
            if fault.site not in CRASH_POINTS:
                raise ValueError(
                    f"unknown crash point {fault.site!r}; valid crash points: "
                    f"{', '.join(CRASH_POINTS)}"
                )
        for fault in self.disk_faults:
            if fault.op not in self._OP_DOMAINS:
                raise ValueError(
                    f"unknown I/O op {fault.op!r}; one of "
                    f"{sorted(self._OP_DOMAINS)}"
                )
        ordinal = [f for f in self.disk_faults if f.on_io is not None]
        for i, a in enumerate(ordinal):
            for b in ordinal[i + 1:]:
                if a.kind == KIND_SLOW and b.kind == KIND_SLOW:
                    continue
                if self._OP_DOMAINS[a.op].isdisjoint(self._OP_DOMAINS[b.op]):
                    continue
                if not (
                    a.path_prefix.startswith(b.path_prefix)
                    or b.path_prefix.startswith(a.path_prefix)
                ):
                    continue
                if a.on_io < b.on_io + b.times and b.on_io < a.on_io + a.times:
                    raise ValueError(
                        f"duplicate I/O ordinals: {a.kind} fault at "
                        f"on_io={a.on_io} (times={a.times}, op={a.op!r}) "
                        f"overlaps {b.kind} fault at on_io={b.on_io} "
                        f"(times={b.times}, op={b.op!r}); give each fault "
                        f"a disjoint ordinal range"
                    )


class FaultInjector:
    """Runtime state of a :class:`FaultPlan`: counters and fired faults.

    Consulted by :class:`~repro.storage.filesystem.SimFileSystem` on
    every data I/O and by the engine/snapshot/migration code at the
    instrumented crash points.  All mutation is deterministic; data-
    dependent choices (tear length, flipped bit) come from a per-fault
    ``random.Random`` derived from ``(seed, fault index)`` so firing
    order cannot perturb them.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self.io_index = 0  # ordinal of the next data I/O (1-based once bumped)
        self.site_hits: dict[str, int] = {}
        self.fired: list[FaultRecord] = []

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def _fault_rng(self, fault: DiskFault) -> random.Random:
        index = self._plan.disk_faults.index(fault)
        return random.Random(f"{self._plan.seed}:{index}:{fault.fired}")

    # ------------------------------------------------------------------
    # device I/O hooks (SimFileSystem)
    # ------------------------------------------------------------------
    def on_write(self, name: str, data: bytes, now: float) -> bytes:
        """Consulted before an append; may raise or silently mutate."""
        self.io_index += 1
        for fault in self._plan.disk_faults:
            if not fault.matches("write", name, self.io_index, now):
                continue
            fault.fired += 1
            rng = self._fault_rng(fault)
            if fault.kind == KIND_ERROR:
                self.fired.append(
                    FaultRecord(KIND_ERROR, name, now, self.io_index, "write failed")
                )
                raise DiskIOError(f"injected write fault on {name}")
            if fault.kind == KIND_TORN and data:
                keep = rng.randrange(len(data))
                self.fired.append(
                    FaultRecord(
                        KIND_TORN, name, now, self.io_index,
                        f"kept {keep}/{len(data)}B",
                    )
                )
                data = data[:keep]
            elif fault.kind == KIND_BITFLIP and data:
                offset = rng.randrange(len(data))
                bit = 1 << rng.randrange(8)
                self.fired.append(
                    FaultRecord(
                        KIND_BITFLIP, name, now, self.io_index,
                        f"byte {offset} ^ {bit:#04x}",
                    )
                )
                mutated = bytearray(data)
                mutated[offset] ^= bit
                data = bytes(mutated)
        return data

    def on_read(self, name: str, now: float) -> None:
        """Consulted before a positional read; may raise DiskIOError."""
        self.io_index += 1
        for fault in self._plan.disk_faults:
            if fault.kind != KIND_ERROR:
                continue
            if not fault.matches("read", name, self.io_index, now):
                continue
            fault.fired += 1
            self.fired.append(
                FaultRecord(KIND_ERROR, name, now, self.io_index, "read failed")
            )
            raise DiskIOError(f"injected read fault on {name}")

    def on_transfer(self, label: str, now: float) -> None:
        """Consulted before a migration state transfer (op=``transfer``)."""
        self.io_index += 1
        for fault in self._plan.disk_faults:
            if fault.kind != KIND_ERROR:
                continue
            if not fault.matches("transfer", label, self.io_index, now):
                continue
            fault.fired += 1
            self.fired.append(
                FaultRecord(KIND_ERROR, label, now, self.io_index, "transfer failed")
            )
            raise DiskIOError(f"injected transfer fault on {label}")

    def on_network(self, label: str, now: float) -> float:
        """Consulted before a cross-node transfer (op ``net``).

        Returns the link-time multiplier (1.0 normally, the fault's
        ``factor`` under an armed ``slow_link``); raises
        :class:`DiskIOError` under an armed ``drop_link``.  Transfers
        share the global I/O ordinal space with device I/O so a plan can
        pin a network fault relative to disk activity.
        """
        self.io_index += 1
        factor = 1.0
        for fault in self._plan.disk_faults:
            if fault.op != "net":
                continue
            if not fault.matches("net", label, self.io_index, now):
                continue
            fault.fired += 1
            if fault.kind == KIND_ERROR:
                self.fired.append(
                    FaultRecord(KIND_ERROR, label, now, self.io_index, "link dropped")
                )
                raise DiskIOError(f"injected link drop on {label}")
            if fault.kind == KIND_SLOW:
                self.fired.append(
                    FaultRecord(
                        KIND_SLOW, label, now, self.io_index, f"x{fault.factor:g}"
                    )
                )
                factor *= fault.factor
        return factor

    # ------------------------------------------------------------------
    # crash points
    # ------------------------------------------------------------------
    def crash_point(self, site: str, now: float = 0.0, now_fn=None) -> None:
        """Raise :class:`InjectedCrashError` if a crash is due at ``site``.

        ``now_fn`` lazily supplies the simulated clock for time-triggered
        crashes, so hot sites (per-record) avoid computing it unless a
        time-based fault is actually armed for them.
        """
        hits = self.site_hits.get(site, 0) + 1
        self.site_hits[site] = hits
        for fault in self._plan.crashes:
            if fault.fired or fault.site != site:
                continue
            if fault.on_hit is not None:
                if hits != fault.on_hit:
                    continue
            elif fault.at_time is not None:
                if now_fn is not None:
                    now = now_fn()
                if now < fault.at_time:
                    continue
            fault.fired = True
            if fault.node is not None:
                self.fired.append(
                    FaultRecord(
                        "node_failure", site, now, None, f"node {fault.node} hit {hits}"
                    )
                )
                raise NodeFailureError(fault.node, site, now)
            self.fired.append(FaultRecord("crash", site, now, None, f"hit {hits}"))
            raise InjectedCrashError(site, now)


def with_retries(
    env,
    fn,
    category: str = CAT_RECOVERY,
    attempts: int = 4,
    base_backoff: float = 0.002,
    max_backoff: float = 0.050,
    max_total_backoff: float = 0.250,
):
    """Run ``fn()``, retrying transient :class:`DiskIOError` faults.

    Backoff is deterministic (exponential, per-step capped at
    ``max_backoff`` and cumulatively at ``max_total_backoff``) and
    *charged to the simulated clock* under ``category`` — a retried
    checkpoint costs recovery time, it doesn't hide it.  Each retry also
    bumps the ``retries`` ledger counter.  Once the attempt budget is
    spent, a typed :class:`~repro.errors.RetriesExhaustedError` carrying
    the per-attempt history propagates (still a :class:`DiskIOError`,
    so crash handling is unchanged).  Only idempotent operations may be
    wrapped: checkpoint file puts/reads and migration transfer charges
    qualify; destructive store calls (export/import) do not.
    """
    delay = base_backoff
    charged = 0.0
    history: list[str] = []
    for attempt in range(attempts):
        try:
            return fn()
        except RetriesExhaustedError:
            raise  # a nested retry loop already spent its budget: don't re-wrap
        except DiskIOError as exc:
            history.append(f"attempt {attempt + 1}: {exc}")
            if attempt == attempts - 1:
                raise RetriesExhaustedError(attempts, history) from exc
            env.bump("retries")
            step = min(delay, max_backoff, max(0.0, max_total_backoff - charged))
            env.charge_cpu(category, step)
            charged += step
            delay *= 2.0
