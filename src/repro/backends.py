"""Backend factories for the four evaluated state stores.

Each factory returns a :data:`~repro.engine.state.BackendFactory` that the
engine calls once per physical window-operator instance.  The same four
names the paper evaluates are registered: ``memory``, ``flowkv``,
``rocksdb`` (the LSM baseline) and ``faster`` (the hash-KV baseline).
"""

from __future__ import annotations

from typing import Any

from repro.core import FlowKVComposite, FlowKVConfig
from repro.core.ett import (
    CountWindowPredictor,
    EttPredictor,
    KnownBoundaryPredictor,
    SessionGapPredictor,
)
from repro.core.patterns import WindowKind
from repro.engine.state import BackendFactory, GenericKVBackend, OperatorInfo
from repro.kvstores.api import WindowStateBackend
from repro.kvstores.hashkv import FasterConfig, FasterStore
from repro.kvstores.lsm import LsmConfig, LsmStore
from repro.kvstores.memory import GcModel, HeapWindowBackend
from repro.model import Serde
from repro.prefetch import PrefetchExecutor
from repro.simenv import SimEnv
from repro.storage.filesystem import SimFileSystem


def predictor_for(info: OperatorInfo) -> EttPredictor:
    """The ETT predictor FlowKV maps to a window function (§4.2).

    Predictors supplied by the window assigner (including §8 user-defined
    estimators for custom windows) take precedence over the kind-based
    mapping.
    """
    if info.ett_predictor is not None:
        return info.ett_predictor
    if info.window_kind is WindowKind.SESSION:
        if info.session_gap is None:
            raise ValueError("session window operator without a session gap")
        return SessionGapPredictor(info.session_gap)
    if info.window_kind in (WindowKind.COUNT, WindowKind.CUSTOM):
        return CountWindowPredictor()
    return KnownBoundaryPredictor()


def flowkv_backend(
    config: FlowKVConfig | None = None, serde: Serde | None = None
) -> BackendFactory:
    """FlowKV: the pattern is chosen from the operator's signatures."""

    def factory(
        env: SimEnv, fs: SimFileSystem, name: str, info: OperatorInfo
    ) -> WindowStateBackend:
        return FlowKVComposite(
            env, fs,
            pattern=info.pattern,
            config=config,
            predictor=predictor_for(info),
            serde=serde,
            name=name,
        )

    return factory


def rocksdb_backend(
    config: LsmConfig | None = None, serde: Serde | None = None
) -> BackendFactory:
    """The LSM (RocksDB-style) baseline behind generic-KV glue."""

    def factory(
        env: SimEnv, fs: SimFileSystem, name: str, info: OperatorInfo
    ) -> WindowStateBackend:
        store = LsmStore(env, fs, name, config)
        if info.prefetch_depth > 0:
            store.enable_prefetch(PrefetchExecutor(env, info.prefetch_depth))
        return GenericKVBackend(env, store, serde, info.pattern)

    return factory


def faster_backend(
    config: FasterConfig | None = None, serde: Serde | None = None
) -> BackendFactory:
    """The hash-KV (Faster-style) baseline behind generic-KV glue."""

    def factory(
        env: SimEnv, fs: SimFileSystem, name: str, info: OperatorInfo
    ) -> WindowStateBackend:
        store = FasterStore(env, fs, name, config)
        if info.prefetch_depth > 0:
            store.enable_prefetch(PrefetchExecutor(env, info.prefetch_depth))
        return GenericKVBackend(env, store, serde, info.pattern)

    return factory


def memory_backend(
    capacity_bytes: int = 512 << 20,
    gc_model: GcModel | None = None,
    sizer: Any = None,
) -> BackendFactory:
    """Flink-style heap state with GC cost model and OOM failure."""

    def factory(
        env: SimEnv, fs: SimFileSystem, name: str, info: OperatorInfo
    ) -> WindowStateBackend:
        return HeapWindowBackend(env, capacity_bytes, gc_model, sizer)

    return factory


BACKENDS = {
    "memory": memory_backend,
    "flowkv": flowkv_backend,
    "rocksdb": rocksdb_backend,
    "faster": faster_backend,
}
