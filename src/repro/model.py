"""Shared primitive types: windows, stream records, serializers.

These sit below both the engine and the stores so that neither needs to
import the other for basic vocabulary.  A window is the paper's
``(start_W, end_W)`` pair; stream records are the timestamped key-value
tuples ``e = (k, v, t)`` of §2.1.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Protocol

# Big-endian IEEE-754 doubles: for non-negative timestamps the raw byte
# order equals numeric order, and the encoding round-trips exactly (no
# quantization — decoded windows compare equal to the originals).
_WINDOW_KEY = struct.Struct(">dd")


@dataclass(frozen=True, order=True)
class Window:
    """A half-open event-time interval ``[start, end)`` in seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"window start must be non-negative: {self.start}")
        if self.end <= self.start:
            raise ValueError(f"window end must exceed start: [{self.start}, {self.end})")

    @property
    def length(self) -> float:
        return self.end - self.start

    @property
    def max_timestamp(self) -> float:
        """The largest timestamp that belongs to this window."""
        return self.end - 1e-3

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end

    def intersects(self, other: "Window") -> bool:
        return self.start < other.end and other.start < self.end

    def cover(self, other: "Window") -> "Window":
        """The smallest window covering both (session merging)."""
        return Window(min(self.start, other.start), max(self.end, other.end))

    def key_bytes(self) -> bytes:
        """16-byte big-endian encoding; sorts by (start, end) like the window.

        Boundaries must be non-negative (event time starts at 0) so that
        the raw IEEE-754 byte order matches numeric order.
        """
        return _WINDOW_KEY.pack(self.start, self.end)

    @staticmethod
    def from_key_bytes(data: bytes, offset: int = 0) -> "Window":
        start, end = _WINDOW_KEY.unpack_from(data, offset)
        return Window(start, end)


GLOBAL_WINDOW = Window(0.0, float(1 << 40))


@dataclass(frozen=True)
class StreamRecord:
    """A timestamped key-value tuple ``e = (k, v, t)``.

    ``key`` is raw bytes (the engine partitions on it); ``value`` is any
    Python object — serialization to store bytes happens at the state
    backend boundary where its cost is charged.
    """

    key: bytes
    value: Any
    timestamp: float


@dataclass(frozen=True)
class Watermark:
    """An event-time watermark: no record with ``t < timestamp`` follows."""

    timestamp: float


class Serde(Protocol):
    """Object <-> bytes codec used at the state-store boundary."""

    def serialize(self, obj: Any) -> bytes: ...

    def deserialize(self, data: bytes) -> Any: ...


class PickleSerde:
    """General-purpose serde; NEXMark provides compact struct-based ones."""

    def serialize(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def deserialize(self, data: bytes) -> Any:
        return pickle.loads(data)


class IdentitySerde:
    """For values that are already bytes (avoids double encoding)."""

    def serialize(self, obj: Any) -> bytes:
        if not isinstance(obj, (bytes, bytearray)):
            raise TypeError(f"IdentitySerde requires bytes, got {type(obj).__name__}")
        return bytes(obj)

    def deserialize(self, data: bytes) -> Any:
        return data
