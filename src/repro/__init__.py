"""FlowKV (EuroSys '23) reproduction.

A semantic-aware composite state store for stream processing engines,
together with everything needed to reproduce the paper's evaluation:

* :mod:`repro.core` — FlowKV itself (AAR / AUR / RMW stores, pattern
  determination, ETT predictors, composite facade),
* :mod:`repro.kvstores` — the baselines (heap state, RocksDB-style LSM,
  Faster-style hash store),
* :mod:`repro.engine` — a miniature stream processing engine,
* :mod:`repro.nexmark` — the NEXMark workload and the eight evaluation
  queries,
* :mod:`repro.bench` — the figure-by-figure benchmark harness,
* :mod:`repro.simenv` / :mod:`repro.storage` — the simulated-time
  substrate (deterministic clock, cost models, simulated SSD).

See README.md for a tour and DESIGN.md / EXPERIMENTS.md for the
reproduction methodology and results.
"""

from repro.backends import BACKENDS, flowkv_backend
from repro.core import FlowKVComposite, FlowKVConfig, StorePattern
from repro.model import StreamRecord, Watermark, Window

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Window",
    "StreamRecord",
    "Watermark",
    "FlowKVComposite",
    "FlowKVConfig",
    "StorePattern",
    "flowkv_backend",
    "BACKENDS",
]
