"""NEXMark event types.

Field sets are trimmed to what the evaluated queries touch while keeping
the paper's average byte-serialized sizes: person and auction tuples
serialize to 16 B, bids to 84 B (§6, Input dataset).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Person:
    """A registering user.  Serializes to 16 B (two u64 fields)."""

    person_id: int
    region: int  # stands in for name/city/state fields

    @property
    def payload_bytes(self) -> int:
        return 16


@dataclass(frozen=True)
class Auction:
    """A newly opened auction.  Serializes to 16 B."""

    auction_id: int
    seller: int

    @property
    def payload_bytes(self) -> int:
        return 16


@dataclass(frozen=True)
class Bid:
    """A bid on an auction.  Serializes to 84 B (ids, price, 60 B extra)."""

    auction: int
    bidder: int
    price: int
    extra: bytes = b"\x00" * 60

    @property
    def payload_bytes(self) -> int:
        return 24 + len(self.extra)
