"""Deterministic NEXMark event generator.

Mirrors the Beam NEXMark generator's behaviour at configurable scale:

* event mix 2% persons / 6% auctions / 92% bids (§6, Input dataset),
* exponential inter-arrival times at ``events_per_second`` (event time),
* bids reference a hot set of recent auctions and active bidders with a
  skewed (80/20-style) popularity distribution,
* fully deterministic for a given seed.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.nexmark.model import Auction, Bid, Person

Event = Person | Auction | Bid


@dataclass(frozen=True)
class GeneratorConfig:
    """Workload shape.

    Attributes:
        events_per_second: mean event rate in event-time seconds.
        duration: total event-time span to generate.
        person_ratio / auction_ratio: event mix (bids take the rest).
        active_people: size of the live bidder population; per-bidder bid
            rate is roughly ``0.92 * events_per_second / active_people``,
            which (with the session gap) controls session lengths.
        active_auctions: size of the hot auction set bids target.
        hot_fraction: probability a bid goes to the hot quartile of
            bidders/auctions (popularity skew).
        seed: RNG seed; identical configs generate identical streams.
    """

    events_per_second: float = 100.0
    duration: float = 1000.0
    person_ratio: float = 0.02
    auction_ratio: float = 0.06
    active_people: int = 200
    active_auctions: int = 50
    hot_fraction: float = 0.5
    seed: int = 20230509

    @property
    def expected_events(self) -> int:
        return int(self.events_per_second * self.duration)


def generate_events(config: GeneratorConfig) -> Iterator[tuple[Event, float]]:
    """Yield ``(event, event_timestamp)`` pairs in timestamp order."""
    rng = random.Random(config.seed)
    timestamp = 0.0
    next_person_id = 0
    next_auction_id = 0
    people: list[int] = []
    auctions: list[Auction] = []

    # Pre-seed the minimum population so the first bids have targets.
    for _ in range(8):
        people.append(next_person_id)
        next_person_id += 1
    for _ in range(4):
        auctions.append(Auction(next_auction_id, rng.choice(people)))
        next_auction_id += 1

    mean_gap = 1.0 / config.events_per_second
    person_cut = config.person_ratio
    auction_cut = config.person_ratio + config.auction_ratio

    while timestamp < config.duration:
        timestamp += rng.expovariate(1.0 / mean_gap)
        if timestamp >= config.duration:
            return
        draw = rng.random()
        if draw < person_cut:
            person = Person(next_person_id, rng.randrange(64))
            next_person_id += 1
            people.append(person.person_id)
            if len(people) > config.active_people:
                people.pop(0)
            yield person, timestamp
        elif draw < auction_cut:
            auction = Auction(next_auction_id, _pick(rng, people, config.hot_fraction))
            next_auction_id += 1
            auctions.append(auction)
            if len(auctions) > config.active_auctions:
                auctions.pop(0)
            yield auction, timestamp
        else:
            auction = auctions[_pick_index(rng, len(auctions), config.hot_fraction)]
            bidder = _pick(rng, people, config.hot_fraction)
            price = 100 + rng.randrange(10_000)
            yield Bid(auction.auction_id, bidder, price), timestamp


def _pick_index(rng: random.Random, n: int, hot_fraction: float) -> int:
    """Skewed index choice: the newest quartile gets ``hot_fraction``."""
    if n <= 1:
        return 0
    if rng.random() < hot_fraction:
        quartile = max(1, n // 4)
        return n - 1 - rng.randrange(quartile)
    return rng.randrange(n)


def _pick(rng: random.Random, population: list[int], hot_fraction: float) -> int:
    return population[_pick_index(rng, len(population), hot_fraction)]
