"""Deterministic NEXMark event generator.

Mirrors the Beam NEXMark generator's behaviour at configurable scale:

* event mix 2% persons / 6% auctions / 92% bids (§6, Input dataset),
* exponential inter-arrival times at ``events_per_second`` (event time),
* bids reference a hot set of recent auctions and active bidders with a
  skewed (80/20-style) popularity distribution,
* fully deterministic for a given seed.

Skew axis (all knobs off by default — the default stream is
byte-identical to the pre-skew generator, pinned by test):

* **Zipf-skewed bidders/sellers** — ``bidder_zipf`` / ``seller_zipf``
  replace the hot-quartile pick with a Zipf(s) draw over the active
  population, rank 0 being the *oldest* member (``people[0]``), so the
  hottest key stays stable while the population slides.  A millions-of-
  users workload is Zipf-distributed; exponent >= 1.2 concentrates
  enough mass on one key to pin a single key-group.
* **Flash crowd** — during ``[flash_start, flash_start +
  flash_duration)`` each bid targets one fixed auction (latched as the
  newest auction when the burst begins) with probability
  ``flash_intensity``: the one-hot-seller scenario.
* **Late-data storm** — bids generated during ``[late_storm_start,
  late_storm_start + late_storm_duration)`` carry timestamps shifted
  *back* by ``late_storm_delay`` seconds (clamped at 0): a burst of
  out-of-order data.  The emission order and RNG draws are unchanged,
  so a storm run differs from its no-storm twin only in those bids'
  timestamps.
"""

from __future__ import annotations

import bisect
import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.nexmark.model import Auction, Bid, Person

Event = Person | Auction | Bid


@dataclass(frozen=True)
class GeneratorConfig:
    """Workload shape.

    Attributes:
        events_per_second: mean event rate in event-time seconds.
        duration: total event-time span to generate.
        person_ratio / auction_ratio: event mix (bids take the rest).
        active_people: size of the live bidder population; per-bidder bid
            rate is roughly ``0.92 * events_per_second / active_people``,
            which (with the session gap) controls session lengths.
        active_auctions: size of the hot auction set bids target.
        hot_fraction: probability a bid goes to the hot quartile of
            bidders/auctions (popularity skew).
        seed: RNG seed; identical configs generate identical streams.
        bidder_zipf: optional Zipf exponent for the bid's bidder pick
            (``None`` keeps the legacy hot-quartile draw, byte-identical).
        seller_zipf: optional Zipf exponent for the auction's seller pick.
        flash_start / flash_duration / flash_intensity: flash-crowd burst
            on one auction (see module docstring); off while
            ``flash_start`` is ``None``.
        late_storm_start / late_storm_duration / late_storm_delay:
            late-data storm — bids in the storm window arrive with
            timestamps ``late_storm_delay`` seconds in the past; off
            while ``late_storm_start`` is ``None``.
    """

    events_per_second: float = 100.0
    duration: float = 1000.0
    person_ratio: float = 0.02
    auction_ratio: float = 0.06
    active_people: int = 200
    active_auctions: int = 50
    hot_fraction: float = 0.5
    seed: int = 20230509
    # --- skew axis (defaults keep the stream byte-identical) ---
    bidder_zipf: float | None = None
    seller_zipf: float | None = None
    flash_start: float | None = None
    flash_duration: float = 0.0
    flash_intensity: float = 0.9
    late_storm_start: float | None = None
    late_storm_duration: float = 0.0
    late_storm_delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("bidder_zipf", "seller_zipf"):
            value = getattr(self, name)
            if value is not None and value <= 0.0:
                raise ValueError(f"{name} must be > 0 when set: {value}")
        if not 0.0 <= self.flash_intensity <= 1.0:
            raise ValueError(f"flash_intensity must be in [0, 1]: {self.flash_intensity}")
        if self.flash_duration < 0.0 or self.late_storm_duration < 0.0:
            raise ValueError("flash/late-storm durations must be >= 0")
        if self.late_storm_delay < 0.0:
            raise ValueError(f"late_storm_delay must be >= 0: {self.late_storm_delay}")

    @property
    def expected_events(self) -> int:
        return int(self.events_per_second * self.duration)


class _ZipfPicker:
    """Zipf(s) index draws over a population of varying size.

    Rank ``r`` (0-based) carries weight ``(r + 1) ** -s``; rank 0 maps
    to the *front* of the population list (its oldest surviving member),
    so the hottest identity is stable until it ages out of the window.
    Cumulative weight tables are cached per population size — sizes only
    ever step by one, so the cache stays tiny.
    """

    def __init__(self, exponent: float) -> None:
        self.exponent = exponent
        self._cdf: dict[int, list[float]] = {}

    def pick(self, rng: random.Random, n: int) -> int:
        if n <= 1:
            return 0
        cdf = self._cdf.get(n)
        if cdf is None:
            total = 0.0
            cdf = []
            for rank in range(n):
                total += (rank + 1) ** -self.exponent
                cdf.append(total)
            self._cdf[n] = cdf
        draw = rng.random() * cdf[-1]
        return bisect.bisect_right(cdf, draw)


def generate_events(config: GeneratorConfig) -> Iterator[tuple[Event, float]]:
    """Yield ``(event, event_timestamp)`` pairs in generation order.

    Without a late-data storm the stream is timestamp-ordered; storm
    bids are emitted at their generation slot but stamped in the past.
    """
    rng = random.Random(config.seed)
    timestamp = 0.0
    next_person_id = 0
    next_auction_id = 0
    people: list[int] = []
    auctions: list[Auction] = []

    # Pre-seed the minimum population so the first bids have targets.
    for _ in range(8):
        people.append(next_person_id)
        next_person_id += 1
    for _ in range(4):
        auctions.append(Auction(next_auction_id, rng.choice(people)))
        next_auction_id += 1

    mean_gap = 1.0 / config.events_per_second
    person_cut = config.person_ratio
    auction_cut = config.person_ratio + config.auction_ratio
    bidder_zipf = (
        _ZipfPicker(config.bidder_zipf) if config.bidder_zipf is not None else None
    )
    seller_zipf = (
        _ZipfPicker(config.seller_zipf) if config.seller_zipf is not None else None
    )
    flash_end = (
        config.flash_start + config.flash_duration
        if config.flash_start is not None
        else None
    )
    flash_auction: Auction | None = None
    storm_end = (
        config.late_storm_start + config.late_storm_duration
        if config.late_storm_start is not None
        else None
    )

    while timestamp < config.duration:
        timestamp += rng.expovariate(1.0 / mean_gap)
        if timestamp >= config.duration:
            return
        draw = rng.random()
        if draw < person_cut:
            person = Person(next_person_id, rng.randrange(64))
            next_person_id += 1
            people.append(person.person_id)
            if len(people) > config.active_people:
                people.pop(0)
            yield person, timestamp
        elif draw < auction_cut:
            if seller_zipf is not None:
                seller = people[seller_zipf.pick(rng, len(people))]
            else:
                seller = _pick(rng, people, config.hot_fraction)
            auction = Auction(next_auction_id, seller)
            next_auction_id += 1
            auctions.append(auction)
            if len(auctions) > config.active_auctions:
                auctions.pop(0)
            yield auction, timestamp
        else:
            auction = None
            if (
                config.flash_start is not None
                and config.flash_start <= timestamp < flash_end
            ):
                if flash_auction is None:
                    # Latch the burst target: the newest auction at the
                    # instant the flash crowd begins.
                    flash_auction = auctions[-1]
                if rng.random() < config.flash_intensity:
                    auction = flash_auction
            if auction is None:
                auction = auctions[_pick_index(rng, len(auctions), config.hot_fraction)]
            if bidder_zipf is not None:
                bidder = people[bidder_zipf.pick(rng, len(people))]
            else:
                bidder = _pick(rng, people, config.hot_fraction)
            price = 100 + rng.randrange(10_000)
            bid_ts = timestamp
            if (
                config.late_storm_start is not None
                and config.late_storm_start <= timestamp < storm_end
            ):
                bid_ts = max(0.0, timestamp - config.late_storm_delay)
            yield Bid(auction.auction_id, bidder, price), bid_ts


def _pick_index(rng: random.Random, n: int, hot_fraction: float) -> int:
    """Skewed index choice: the newest quartile gets ``hot_fraction``."""
    if n <= 1:
        return 0
    if rng.random() < hot_fraction:
        quartile = max(1, n // 4)
        return n - 1 - rng.randrange(quartile)
    return rng.randrange(n)


def _pick(rng: random.Random, population: list[int], hot_fraction: float) -> int:
    return population[_pick_index(rng, len(population), hot_fraction)]
