"""The NEXMark benchmark: data model, generator and the eight queries.

NEXMark emulates an online auction system with three event types —
persons registering, auctions opening, bids arriving — in the 2% / 6% /
92% mix the paper's input dataset uses, with matching average serialized
sizes (16 B person, 16 B auction, 84 B bid).  The queries implemented here
are the paper's evaluation set (§6): Q5, Q5-Append, Q7, Q7-Session, Q8,
Q11, Q11-Median and Q12.
"""

from repro.nexmark.generator import GeneratorConfig, generate_events
from repro.nexmark.model import Auction, Bid, Person
from repro.nexmark.queries import QUERIES, QuerySpec, build_query
from repro.nexmark.serde import NexmarkSerde

__all__ = [
    "Person",
    "Auction",
    "Bid",
    "GeneratorConfig",
    "generate_events",
    "NexmarkSerde",
    "QUERIES",
    "QuerySpec",
    "build_query",
]
