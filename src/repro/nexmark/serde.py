"""Compact struct-based serde for NEXMark values.

Keeps stored bytes at the paper's sizes (16 B / 16 B / 84 B) instead of
pickle overhead.  Non-event values (accumulators, tagged tuples, query
outputs) fall back to pickle with a tag byte.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from repro.nexmark.model import Auction, Bid, Person

_TAG_PERSON = 0
_TAG_AUCTION = 1
_TAG_BID = 2
_TAG_PICKLE = 3
_TAG_INT = 4
_TAG_TAGGED_PERSON = 5  # ("P", Person) join inputs
_TAG_TAGGED_AUCTION = 6  # ("A", Auction)

_TWO_U64 = struct.Struct("<QQ")
_BID_HEAD = struct.Struct("<QQQ")
_I64 = struct.Struct("<q")


class NexmarkSerde:
    """Object <-> bytes codec for NEXMark streams and aggregates."""

    def serialize(self, obj: Any) -> bytes:
        if isinstance(obj, Bid):
            return bytes([_TAG_BID]) + _BID_HEAD.pack(obj.auction, obj.bidder, obj.price) + obj.extra
        if isinstance(obj, Person):
            return bytes([_TAG_PERSON]) + _TWO_U64.pack(obj.person_id, obj.region)
        if isinstance(obj, Auction):
            return bytes([_TAG_AUCTION]) + _TWO_U64.pack(obj.auction_id, obj.seller)
        if isinstance(obj, int) and 0 <= obj.bit_length() <= 62:
            return bytes([_TAG_INT]) + _I64.pack(obj)
        if isinstance(obj, tuple) and len(obj) == 2 and obj[0] == "P" and isinstance(obj[1], Person):
            return bytes([_TAG_TAGGED_PERSON]) + _TWO_U64.pack(obj[1].person_id, obj[1].region)
        if isinstance(obj, tuple) and len(obj) == 2 and obj[0] == "A" and isinstance(obj[1], Auction):
            return bytes([_TAG_TAGGED_AUCTION]) + _TWO_U64.pack(obj[1].auction_id, obj[1].seller)
        return bytes([_TAG_PICKLE]) + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def deserialize(self, data: bytes) -> Any:
        tag = data[0]
        body = data[1:]
        if tag == _TAG_BID:
            auction, bidder, price = _BID_HEAD.unpack_from(body)
            return Bid(auction, bidder, price, bytes(body[24:]))
        if tag == _TAG_PERSON:
            person_id, region = _TWO_U64.unpack_from(body)
            return Person(person_id, region)
        if tag == _TAG_AUCTION:
            auction_id, seller = _TWO_U64.unpack_from(body)
            return Auction(auction_id, seller)
        if tag == _TAG_INT:
            return _I64.unpack_from(body)[0]
        if tag == _TAG_TAGGED_PERSON:
            person_id, region = _TWO_U64.unpack_from(body)
            return ("P", Person(person_id, region))
        if tag == _TAG_TAGGED_AUCTION:
            auction_id, seller = _TWO_U64.unpack_from(body)
            return ("A", Auction(auction_id, seller))
        if tag == _TAG_PICKLE:
            return pickle.loads(body)
        raise ValueError(f"unknown serde tag: {tag}")
