"""The paper's eight NEXMark evaluation queries (§6, Workload).

Each builder wires a :class:`~repro.engine.plan.StreamEnvironment` for one
query at a given window size.  The access patterns per query match the
paper's classification:

=============  ==========================================  ==============
query          shape                                       pattern(s)
=============  ==========================================  ==============
Q5             sliding count per auction -> sliding max    RMW, RMW
Q5-Append      sliding count per auction -> full-list max  RMW, AAR
Q7             max bid per bidder, fixed windows           AAR
Q7-Session     max bid per bidder, session windows         AUR
Q8             new persons joining new auctions, fixed     AAR (join)
Q11            bids per bidder, session windows            RMW
Q11-Median     median bid per bidder, session windows      AUR
Q12            bids per bidder, global window              RMW
=============  ==========================================  ==============

For session queries the paper's "window size" axis maps to the session
gap: ``gap = window_size * SESSION_GAP_FRACTION``, so larger configured
windows mean longer sessions and larger state, as in Figure 8.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any

from repro.engine.functions import (
    CountAggregate,
    MaxAggregate,
    MaxProcessFunction,
    MedianProcessFunction,
    ProcessWindowFunction,
)
from repro.engine.plan import StreamEnvironment
from repro.engine.state import BackendFactory
from repro.engine.windows import (
    GlobalWindowAssigner,
    SessionWindowAssigner,
    SlidingWindowAssigner,
    TumblingWindowAssigner,
)
from repro.model import Window
from repro.nexmark.generator import GeneratorConfig, generate_events
from repro.nexmark.model import Auction, Bid, Person
from repro.simenv import scaled_cost_models

# Default fraction of the configured "window size" used as the session gap.
SESSION_GAP_FRACTION = 0.02

SINK = "results"


def _u64(value: int) -> bytes:
    return value.to_bytes(8, "little")


class JoinNewUsersFunction(ProcessWindowFunction):
    """Q8's windowed join: persons who opened an auction in the window."""

    def process(self, key: bytes, window: Window, values: list[Any]) -> Iterable[Any]:
        persons = [v for tag, v in values if tag == "P"]
        auctions = [v for tag, v in values if tag == "A"]
        if persons and auctions:
            yield (persons[0].person_id, window.start, len(auctions))


@dataclass(frozen=True)
class QuerySpec:
    """Metadata + builder for one evaluation query."""

    name: str
    description: str
    patterns: tuple[str, ...]
    build: Callable[[StreamEnvironment, Any, float, float], None]


def _bids(env: StreamEnvironment, source) -> Any:
    return source.filter(lambda e: isinstance(e, Bid), name="bids")


def _build_q5_stage1(env: StreamEnvironment, source, window_size: float):
    """Sliding count of bids per auction (RMW), emitting window info."""
    return (
        _bids(env, source)
        .key_by(lambda bid: _u64(bid.auction), name="by_auction")
        .window(SlidingWindowAssigner(window_size, window_size / 2))
        .aggregate(CountAggregate(), name="count_per_auction", with_window=True)
    )


def _rekey_by_window(stream):
    return stream.key_by(lambda kwc: kwc[1].key_bytes(), name="by_window")


def build_q5(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    counts = _build_q5_stage1(env, source, window_size)
    (
        _rekey_by_window(counts)
        .window(TumblingWindowAssigner(window_size / 2))
        .aggregate(MaxAggregate(extract=lambda kwc: kwc[2]), name="max_per_window")
        .sink(SINK)
    )


def build_q5_append(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    counts = _build_q5_stage1(env, source, window_size)
    (
        _rekey_by_window(counts)
        .window(TumblingWindowAssigner(window_size / 2))
        .process(MaxProcessFunction(extract=lambda kwc: kwc[2]), name="max_per_window")
        .sink(SINK)
    )


def build_q7(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    (
        _bids(env, source)
        .key_by(lambda bid: _u64(bid.bidder), name="by_bidder")
        .window(TumblingWindowAssigner(window_size))
        .process(MaxProcessFunction(extract=lambda bid: bid.price), name="max_bid")
        .sink(SINK)
    )


def build_q7_session(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    gap = session_gap
    (
        _bids(env, source)
        .key_by(lambda bid: _u64(bid.bidder), name="by_bidder")
        .window(SessionWindowAssigner(gap))
        .process(MaxProcessFunction(extract=lambda bid: bid.price), name="max_bid")
        .sink(SINK)
    )


def build_q8(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    persons = (
        source.filter(lambda e: isinstance(e, Person), name="persons")
        .map(lambda p: ("P", p), name="tag_p")
    )
    auctions = (
        source.filter(lambda e: isinstance(e, Auction), name="auctions")
        .map(lambda a: ("A", a), name="tag_a")
    )
    (
        persons.union(auctions, name="join_input")
        .key_by(lambda tv: _u64(tv[1].person_id if tv[0] == "P" else tv[1].seller),
                name="by_person")
        .window(TumblingWindowAssigner(window_size))
        .process(JoinNewUsersFunction(), name="join_new_users")
        .sink(SINK)
    )


def build_q11(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    gap = session_gap
    (
        _bids(env, source)
        .key_by(lambda bid: _u64(bid.bidder), name="by_bidder")
        .window(SessionWindowAssigner(gap))
        .aggregate(CountAggregate(), name="bids_per_session")
        .sink(SINK)
    )


def build_q11_median(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    gap = session_gap
    (
        _bids(env, source)
        .key_by(lambda bid: _u64(bid.bidder), name="by_bidder")
        .window(SessionWindowAssigner(gap))
        .process(MedianProcessFunction(extract=lambda bid: bid.price), name="median_bid")
        .sink(SINK)
    )


def build_q12(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    (
        _bids(env, source)
        .key_by(lambda bid: _u64(bid.bidder), name="by_bidder")
        .window(GlobalWindowAssigner())
        .aggregate(CountAggregate(), name="bids_per_user")
        .sink(SINK)
    )


def build_q1(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    """Currency conversion — stateless (excluded from the paper's eval)."""
    (
        _bids(env, source)
        .map(lambda bid: Bid(bid.auction, bid.bidder, int(bid.price * 0.908), bid.extra),
             name="to_euros")
        .sink(SINK)
    )


def build_q2(env: StreamEnvironment, source, window_size: float, session_gap: float) -> None:
    """Selection — stateless (excluded from the paper's eval)."""
    (
        _bids(env, source)
        .filter(lambda bid: bid.auction % 123 == 0, name="selection")
        .map(lambda bid: (bid.auction, bid.price), name="project")
        .sink(SINK)
    )


def build_q8_interval(
    env: StreamEnvironment, source, window_size: float, session_gap: float
) -> None:
    """Auctions interval-joined with their bids (stateful on both sides).

    The interval-join variant of Q8: an auction at ``ts`` pairs with
    every bid on it whose timestamp falls in ``[ts - window_size,
    ts + window_size]``.  Both sides key by the auction id, so the join
    buffers are ordinary keyed state that rescales and checkpoints along
    key-group boundaries; the negative lower bound keeps a full window
    of bids buffered (the popularity-skewed bulk of the state).
    """
    auctions = (
        source.filter(lambda e: isinstance(e, Auction), name="auctions")
        .key_by(lambda a: _u64(a.auction_id), name="by_auction_open")
    )
    bids = (
        _bids(env, source)
        .key_by(lambda b: _u64(b.auction), name="by_auction_bid")
    )
    (
        auctions.interval_join(
            bids, -window_size, window_size,
            lambda a, b: (a.auction_id, a.seller, b.bidder, b.price),
            name="auction_bids",
        )
        .sink(SINK)
    )


class AverageProcessFunction(ProcessWindowFunction):
    """Average over the full value list (non-incremental on purpose)."""

    def __init__(self, extract) -> None:
        self._extract = extract

    def process(self, key, window, values):
        if values:
            yield sum(self._extract(v) for v in values) / len(values)


def build_q6_count(
    env: StreamEnvironment, source, window_size: float, session_gap: float
) -> None:
    """Average of the last 10 bid prices per bidder — count windows.

    A stand-in for the paper's excluded Q6 (custom/count windows whose
    trigger times FlowKV cannot predict): exercises the AUR store's
    direct-read fallback for unpredictable windows (§4.2).
    """
    from repro.engine.windows import CountWindowAssigner

    (
        _bids(env, source)
        .key_by(lambda bid: _u64(bid.bidder), name="by_bidder")
        .window(CountWindowAssigner(10))
        .process(AverageProcessFunction(extract=lambda bid: bid.price),
                 name="avg_last_10")
        .sink(SINK)
    )


QUERIES: dict[str, QuerySpec] = {
    "q5": QuerySpec(
        "q5", "most-bid auctions over consecutive sliding windows", ("RMW", "RMW"), build_q5
    ),
    "q5-append": QuerySpec(
        "q5-append", "Q5 with non-incremental second stage", ("RMW", "AAR"), build_q5_append
    ),
    "q7": QuerySpec("q7", "highest bid per bidder, fixed windows", ("AAR",), build_q7),
    "q7-session": QuerySpec(
        "q7-session", "highest bid per bidder, session windows", ("AUR",), build_q7_session
    ),
    "q8": QuerySpec("q8", "persons opening auctions, windowed join", ("AAR",), build_q8),
    "q11": QuerySpec("q11", "bids per bidder, session windows", ("RMW",), build_q11),
    "q11-median": QuerySpec(
        "q11-median", "median bid per bidder, session windows", ("AUR",), build_q11_median
    ),
    "q12": QuerySpec("q12", "bids per bidder, global window", ("RMW",), build_q12),
}

# Queries outside the paper's evaluation set: stateless NEXMark queries
# and an unpredictable-window extension.  Available through build_query
# but not part of the Figure 8 matrix.
EXTRA_QUERIES: dict[str, QuerySpec] = {
    "q1": QuerySpec("q1", "currency conversion (stateless)", (), build_q1),
    "q2": QuerySpec("q2", "selection (stateless)", (), build_q2),
    "q6-count": QuerySpec(
        "q6-count", "average of last 10 bids per bidder (count windows)",
        ("AUR",), build_q6_count,
    ),
    "q8-interval": QuerySpec(
        "q8-interval", "auctions interval-joined with their bids",
        ("JOIN",), build_q8_interval,
    ),
}


def build_query(
    name: str,
    backend_factory: BackendFactory,
    generator_config: GeneratorConfig,
    window_size: float,
    parallelism: int = 2,
    workers: int = 1,
    session_gap: float | None = None,
    cost_scale: float = 1.0,
    faults: Any = None,
    cluster: Any = None,
    batch_records: int = 1,
    batch_bytes: int | None = None,
    prefetch_depth: int = 0,
) -> StreamEnvironment:
    """Construct a ready-to-execute environment for one query.

    Returns an environment whose ``execute()`` runs the query over a
    freshly generated event stream; results land in the ``results`` sink.
    ``session_gap`` (session queries only) defaults to
    ``window_size * SESSION_GAP_FRACTION``.  ``cluster`` (a
    :class:`repro.cluster.ClusterTopology`) spreads the physical
    instances over simulated machines with a network between them.
    ``batch_records`` / ``batch_bytes`` size the columnar record batches
    on the hot path (1 = exact per-tuple execution; simulated charges
    are per-record identical at any size).  ``prefetch_depth`` enables
    semantic state prefetching on the disk backends (0 = off,
    bit-identical to a build without the subsystem).
    """
    key = name.lower()
    spec = QUERIES.get(key) or EXTRA_QUERIES.get(key)
    if spec is None:
        raise KeyError(name)
    cpu = ssd = None
    if cost_scale != 1.0:
        cpu, ssd = scaled_cost_models(cost_scale)
    env = StreamEnvironment(
        parallelism=parallelism, backend_factory=backend_factory, workers=workers,
        cpu=cpu, ssd=ssd, faults=faults, cluster=cluster,
        max_batch_records=batch_records, max_batch_bytes=batch_bytes,
        prefetch_depth=prefetch_depth,
    )
    source = env.from_source(generate_events(generator_config), name="nexmark")
    gap = session_gap if session_gap is not None else window_size * SESSION_GAP_FRACTION
    spec.build(env, source, window_size, gap)
    return env
