"""Semantic asynchronous prefetching: overlap state I/O with operator CPU.

The engine knows what it will read next — watermarks say which windows
trigger at the next boundary, the plan says whether an operator's access
class is AAR (whole-range scans at trigger), AUR (per-key reads) or RMW
(point updates) — so stateful backends can issue the corresponding block
reads *before* the operator demands them (Zapridou & Ailamaki's timely
and accurate prefetching, applied to FlowKV's semantic patterns).

The simulated-time model keeps per-category charges exact:

* a prefetch runs inside :meth:`repro.simenv.SimEnv.prefetch_capture`,
  which books its CPU and device seconds to the ``prefetch`` ledger
  category *without advancing the clock* (it is background work);
* the executor serializes captures on a per-instance device queue:
  ``completion = max(now, device_free) + captured_seconds``;
* when a demand access consumes the prefetched artifact it pays only the
  *residual* ``max(0, completion - now)`` as io_wait
  (:meth:`~repro.simenv.SimEnv.charge_prefetch_wait`) — the rest was
  hidden under the operator CPU that ran between issue and consume.

Accuracy is tracked per executor (one per store instance): ``hit`` means
fully hidden, ``late`` means a residual was paid, ``wasted`` means the
artifact was invalidated (compaction, eviction) before any demand read.
A sliding-window throttle halves the depth budget when the wasted ratio
exceeds :data:`WASTE_THRESHOLD` and recovers one slot per clean window.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.simenv import SimEnv

# Adaptive throttle: outcomes per decision window, and the wasted ratio
# above which the depth budget is halved.
WINDOW = 32
WASTE_THRESHOLD = 0.5


class PrefetchExecutor:
    """Bounded background-I/O issuer for one store instance.

    ``depth`` bounds the number of in-flight prefetched artifacts
    (slabs, blocks, log records); issues beyond the budget are dropped
    and counted.  All outcome counters go through ``env.bump`` so they
    merge into the job's metrics like any other ledger counter:
    ``prefetch_hits`` / ``prefetch_late`` / ``prefetch_wasted`` /
    ``prefetch_dropped`` / ``prefetch_throttled``.
    """

    def __init__(self, env: SimEnv, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        self.env = env
        self.configured_depth = depth
        self.budget = depth
        self._in_flight = 0
        self._device_free = 0.0
        self._outcomes: deque[bool] = deque(maxlen=WINDOW)  # True = wasted

    # -- issue side ----------------------------------------------------
    def has_budget(self) -> bool:
        return self._in_flight < self.budget

    def capture(self, fn: Callable[[], Any]) -> tuple[Any, float] | None:
        """Run ``fn`` as background I/O; return ``(result, completion)``.

        Any failure during the capture — an injected :class:`DiskIOError`,
        a decode error on a corrupted block — drops the prefetch: the
        demand path will retry the access synchronously and surface
        whatever the device really holds, so a faulted prefetch can never
        change job output.  Partial charges stay in the ``prefetch``
        category (no clock was advanced), which is exactly the cost of
        the aborted background attempt.
        """
        if self._in_flight >= self.budget:
            self.env.bump("prefetch_dropped")
            return None
        try:
            with self.env.prefetch_capture() as box:
                result = fn()
        except Exception:
            self.env.bump("prefetch_dropped")
            return None
        completion = max(self.env.now, self._device_free) + box[0]
        self._device_free = completion
        return result, completion

    def register(self) -> None:
        """Count one prefetched artifact against the in-flight budget."""
        self._in_flight += 1

    # -- resolution side ----------------------------------------------
    def consume(self, completion: float) -> None:
        """A demand access absorbed a prefetched artifact."""
        self._in_flight = max(0, self._in_flight - 1)
        residual = completion - self.env.now
        if residual > 0.0:
            self.env.charge_prefetch_wait(residual)
            self.env.bump("prefetch_late")
        else:
            self.env.bump("prefetch_hits")
        self._record(wasted=False)

    def waste(self, n: int = 1) -> None:
        """``n`` prefetched artifacts were invalidated before any use."""
        for _ in range(n):
            self._in_flight = max(0, self._in_flight - 1)
            self.env.bump("prefetch_wasted")
            self._record(wasted=True)

    # -- adaptive throttle --------------------------------------------
    def _record(self, wasted: bool) -> None:
        self._outcomes.append(wasted)
        if len(self._outcomes) < WINDOW:
            return
        ratio = sum(self._outcomes) / len(self._outcomes)
        if ratio > WASTE_THRESHOLD:
            self.budget = max(1, self.budget // 2)
            self.env.bump("prefetch_throttled")
            self._outcomes.clear()
        elif ratio == 0.0 and self.budget < self.configured_depth:
            self.budget += 1
            self._outcomes.clear()
