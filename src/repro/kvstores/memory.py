"""Flink-style heap state backend with a JVM garbage-collection cost model.

The paper's in-memory baseline stores all window state as objects on the
JVM heap.  Two behaviours matter for the evaluation and are modelled here:

* **GC pressure** — collection work grows super-linearly as heap occupancy
  approaches capacity (§6.1: "the in-memory store suffers from the JVM
  garbage collection, which becomes severe as the state size increases"),
  which is why FlowKV sometimes beats the in-memory store.
* **OOM failure** — state that outgrows the heap kills the job (the
  crossed bars of Figure 8 and early failures of Figure 9), surfaced as
  :class:`~repro.errors.StoreOOMError`.

Objects are stored directly (no serde), as Flink's heap backend does.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.errors import StoreClosedError, StoreOOMError
from repro.kvstores.api import (
    CAP_BATCH,
    CAP_INCREMENTAL,
    CAP_RESCALE,
    CAP_SNAPSHOT,
    KIND_AGG,
    KIND_LIST,
    ExportedEntry,
    KeyGroupDirtyTracker,
    KeyGroupFn,
    StateExport,
    WindowStateBackend,
)
from repro.model import PickleSerde, Window
from repro.simenv import (
    CAT_CHANGELOG,
    CAT_GC,
    CAT_MIGRATION,
    CAT_RECOVERY,
    CAT_STORE_READ,
    CAT_STORE_WRITE,
    SimEnv,
)

# Per-object JVM overhead: header + reference + list-node bookkeeping.
OBJECT_OVERHEAD_BYTES = 48


@dataclass(frozen=True)
class GcModel:
    """Amortized garbage-collection cost charged per allocated byte.

    The charge per allocated byte is proportional to
    ``1 / (1 - occupancy)`` (clamped), so a nearly-full heap spends most
    of its time collecting — a standard copying-collector survival-cost
    approximation: each minor collection copies live bytes, and
    collections happen once per young generation's worth of allocation,
    so cost per allocated byte scales with live/free.

    GC is CPU work, so the per-byte cost is expressed as a multiple of
    the environment's ``copy_per_byte`` — it scales with the cost menu
    (important for the uniformly-slowed latency runs).
    """

    copy_cost_multiple: float = 1.4
    max_pressure: float = 50.0

    def cost(self, allocated_bytes: int, occupancy: float, copy_per_byte: float) -> float:
        pressure = min(self.max_pressure, 1.0 / max(1e-9, 1.0 - occupancy))
        return allocated_bytes * copy_per_byte * self.copy_cost_multiple * pressure


class HeapWindowBackend(WindowStateBackend):
    """Dict-of-dicts window state held as live Python objects.

    Layout mirrors Flink's heap keyed state: an outer map per window
    namespace, an inner map per key.  List state and aggregate state are
    kept in separate namespaces like Flink's ListState/ValueState.
    """

    capabilities = frozenset({CAP_SNAPSHOT, CAP_RESCALE, CAP_INCREMENTAL, CAP_BATCH})

    def __init__(
        self,
        env: SimEnv,
        capacity_bytes: int = 512 << 20,
        gc_model: GcModel | None = None,
        sizer: Callable[[Any], int] | None = None,
    ) -> None:
        self._env = env
        self._capacity = capacity_bytes
        self._gc = gc_model or GcModel()
        self._sizer = sizer or _default_sizer
        # window -> key -> list of values (append pattern)
        self._lists: dict[Window, dict[bytes, list[Any]]] = {}
        # window -> key -> aggregate (RMW pattern)
        self._aggs: dict[Window, dict[bytes, Any]] = {}
        self._live_bytes = 0
        self._closed = False
        self._dirty = KeyGroupDirtyTracker()
        self._log_serde = PickleSerde()

    def attach_changelog(self, writer) -> None:
        """Route semantic mutations into a changelog writer (replication)."""
        self._dirty.changelog = writer

    def _log_payload(self, value: Any) -> bytes:
        """Serialize a heap object for the changelog — an extra cost the
        heap backend pays only while replication is on (objects live raw)."""
        data = self._log_serde.serialize(value)
        self._env.charge_cpu(CAT_CHANGELOG, self._env.cpu.serde(len(data)))
        return data

    @property
    def checkpoint_key_groups(self) -> int:
        """Group-space resolution of dirty tracking and checkpoint shards."""
        return self._dirty.max_key_groups

    def dirty_groups(self) -> frozenset[int]:
        return self._dirty.groups()

    def clear_dirty(self) -> None:
        self._dirty.clear()

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        return self._live_bytes

    @property
    def occupancy(self) -> float:
        return self._live_bytes / self._capacity if self._capacity else 1.0

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("heap backend is closed")

    def _allocate(self, payload_bytes: int) -> None:
        """Account an allocation: GC charge, then OOM check."""
        allocated = payload_bytes + OBJECT_OVERHEAD_BYTES
        self._env.charge_cpu(
            CAT_GC, self._gc.cost(allocated, self.occupancy, self._env.cpu.copy_per_byte)
        )
        self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.allocation)
        self._live_bytes += allocated
        if self._live_bytes > self._capacity:
            raise StoreOOMError(
                f"heap state {self._live_bytes}B exceeds capacity {self._capacity}B"
            )

    def _release(self, payload_bytes: int, count: int = 1) -> None:
        self._live_bytes -= payload_bytes + count * OBJECT_OVERHEAD_BYTES
        if self._live_bytes < 0:
            self._live_bytes = 0

    # ------------------------------------------------------------------
    # append pattern
    # ------------------------------------------------------------------
    def append(self, key: bytes, window: Window, value: Any, timestamp: float) -> None:
        self._check_open()
        self._env.charge_cpu(CAT_STORE_WRITE, 2 * self._env.cpu.hash_probe)
        per_key = self._lists.setdefault(window, {})
        per_key.setdefault(key, []).append((value, self._sizer(value)))
        if self._dirty.logging:
            self._dirty.log_append(key, window, KIND_LIST, (self._log_payload(value),))
        else:
            self._dirty.mark_key(key)
        self._allocate(per_key[key][-1][1])

    def multi_append(
        self, entries: list[tuple[bytes, Window, Any, float]]
    ) -> None:
        """Native batch append: one pass, per-entry charges unchanged.

        Amortizes the per-call overhead (open check, attribute lookups)
        while keeping the exact per-entry charge sequence of
        :meth:`append` — GC pressure and the OOM check still evolve with
        heap occupancy entry by entry.
        """
        self._check_open()
        charge = self._env.charge_cpu
        probe2 = 2 * self._env.cpu.hash_probe
        lists = self._lists
        dirty = self._dirty
        logging = dirty.logging
        mark_key = dirty.mark_key
        sizer = self._sizer
        allocate = self._allocate
        for key, window, value, _timestamp in entries:
            charge(CAT_STORE_WRITE, probe2)
            per_key = lists.get(window)
            if per_key is None:
                per_key = lists[window] = {}
            size = sizer(value)
            bucket = per_key.get(key)
            if bucket is None:
                per_key[key] = [(value, size)]
            else:
                bucket.append((value, size))
            if logging:
                dirty.log_append(key, window, KIND_LIST, (self._log_payload(value),))
            else:
                mark_key(key)
            allocate(size)

    def read_window(self, window: Window) -> Iterator[tuple[bytes, list[Any]]]:
        self._check_open()
        per_key = self._lists.pop(window, None)
        if per_key is None:
            return
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.hash_probe)
        for key, sized_values in per_key.items():
            self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.hash_probe)
            values = [v for v, _size in sized_values]
            self._dirty.log_remove(key, window, KIND_LIST)
            self._release(sum(size for _v, size in sized_values), count=len(sized_values))
            yield key, values

    def read_key_window(self, key: bytes, window: Window) -> list[Any]:
        self._check_open()
        self._env.charge_cpu(CAT_STORE_READ, 2 * self._env.cpu.hash_probe)
        per_key = self._lists.get(window)
        if not per_key:
            return []
        sized_values = per_key.pop(key, [])
        if not per_key:
            self._lists.pop(window, None)
        if sized_values:
            self._dirty.log_remove(key, window, KIND_LIST)
        self._release(sum(size for _v, size in sized_values), count=len(sized_values))
        return [v for v, _size in sized_values]

    # ------------------------------------------------------------------
    # RMW pattern
    # ------------------------------------------------------------------
    def rmw_get(self, key: bytes, window: Window) -> Any | None:
        self._check_open()
        self._env.charge_cpu(CAT_STORE_READ, 2 * self._env.cpu.hash_probe)
        per_key = self._aggs.get(window)
        if per_key is None:
            return None
        entry = per_key.get(key)
        return entry[0] if entry is not None else None

    def rmw_put(self, key: bytes, window: Window, aggregate: Any) -> None:
        self._check_open()
        self._env.charge_cpu(CAT_STORE_WRITE, 2 * self._env.cpu.hash_probe)
        per_key = self._aggs.setdefault(window, {})
        new_size = self._sizer(aggregate)
        old = per_key.get(key)
        if old is not None:
            self._release(old[1])
        per_key[key] = (aggregate, new_size)
        if self._dirty.logging:
            self._dirty.log_put(key, window, KIND_AGG, (self._log_payload(aggregate),))
        else:
            self._dirty.mark_key(key)
        self._allocate(new_size)

    def rmw_remove(self, key: bytes, window: Window) -> Any | None:
        self._check_open()
        self._env.charge_cpu(CAT_STORE_READ, 2 * self._env.cpu.hash_probe)
        per_key = self._aggs.get(window)
        if per_key is None:
            return None
        entry = per_key.pop(key, None)
        if not per_key:
            self._aggs.pop(window, None)
        if entry is None:
            return None
        self._dirty.log_remove(key, window, KIND_AGG)
        self._release(entry[1])
        return entry[0]

    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._check_open()

    def snapshot(self):
        """Full heap capture (Flink's heap backend snapshots everything)."""
        from repro.snapshot import StoreSnapshot, pack_meta, seal_snapshot

        self._check_open()
        meta = pack_meta(
            self._env,
            {"lists": self._lists, "aggs": self._aggs, "live_bytes": self._live_bytes},
        )
        return seal_snapshot(self._env, StoreSnapshot("heap", meta))

    def restore(self, snapshot) -> None:
        from repro.errors import StoreRestoreError
        from repro.snapshot import unpack_meta, verify_snapshot

        self._check_open()
        verify_snapshot(self._env, snapshot)
        if self._lists or self._aggs:
            raise StoreRestoreError("restore into non-empty heap store")
        state = unpack_meta(self._env, snapshot.meta)
        self._lists = state["lists"]
        self._aggs = state["aggs"]
        self._live_bytes = state["live_bytes"]
        if self._live_bytes > self._capacity:
            raise StoreOOMError(
                f"restored state {self._live_bytes}B exceeds capacity {self._capacity}B"
            )

    # ------------------------------------------------------------------
    # elastic rescaling
    # ------------------------------------------------------------------
    def export_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> StateExport:
        """Serialize & evict the moved key-groups (heap objects must be
        pickled to cross the instance boundary, charged as migration)."""
        self._check_open()
        serde = PickleSerde()
        export = StateExport()
        for window in list(self._lists):
            per_key = self._lists[window]
            for key in [k for k in per_key if key_group_of(k) in key_groups]:
                sized_values = per_key.pop(key)
                values: list[bytes] = []
                for value, _size in sized_values:
                    data = serde.serialize(value)
                    self._env.charge_cpu(CAT_MIGRATION, self._env.cpu.serde(len(data)))
                    values.append(data)
                self._dirty.log_remove(key, window, KIND_LIST)
                self._release(
                    sum(size for _v, size in sized_values), count=len(sized_values)
                )
                export.entries.append(ExportedEntry(key, window, KIND_LIST, values))
            if not per_key:
                del self._lists[window]
        for window in list(self._aggs):
            per_key = self._aggs[window]
            for key in [k for k in per_key if key_group_of(k) in key_groups]:
                agg, size = per_key.pop(key)
                data = serde.serialize(agg)
                self._env.charge_cpu(CAT_MIGRATION, self._env.cpu.serde(len(data)))
                self._dirty.log_remove(key, window, KIND_AGG)
                self._release(size)
                export.entries.append(ExportedEntry(key, window, KIND_AGG, [data]))
            if not per_key:
                del self._aggs[window]
        return export

    def export_group_state(
        self, key_groups: set[int] | None, key_group_of: KeyGroupFn
    ) -> StateExport:
        """Serialize the selected key-groups *without evicting them* —
        the sharded checkpointer's read path (charged as recovery)."""
        self._check_open()
        serde = PickleSerde()
        export = StateExport()

        def wanted(key: bytes) -> bool:
            return key_groups is None or key_group_of(key) in key_groups

        for window, per_key in self._lists.items():
            for key, sized_values in per_key.items():
                if not wanted(key):
                    continue
                self._env.charge_cpu(CAT_RECOVERY, self._env.cpu.hash_probe)
                values: list[bytes] = []
                for value, _size in sized_values:
                    data = serde.serialize(value)
                    self._env.charge_cpu(CAT_RECOVERY, self._env.cpu.serde(len(data)))
                    values.append(data)
                export.entries.append(ExportedEntry(key, window, KIND_LIST, values))
        for window, per_key in self._aggs.items():
            for key, (agg, _size) in per_key.items():
                if not wanted(key):
                    continue
                self._env.charge_cpu(CAT_RECOVERY, self._env.cpu.hash_probe)
                data = serde.serialize(agg)
                self._env.charge_cpu(CAT_RECOVERY, self._env.cpu.serde(len(data)))
                export.entries.append(ExportedEntry(key, window, KIND_AGG, [data]))
        return export

    def import_state(self, export: StateExport) -> None:
        self._check_open()
        serde = PickleSerde()
        for entry in export.entries:
            self._dirty.log_merge(entry.key, entry.window, entry.kind, entry.values)
            if entry.kind == KIND_LIST:
                bucket = self._lists.setdefault(entry.window, {}).setdefault(entry.key, [])
                for data in entry.values:
                    self._env.charge_cpu(CAT_MIGRATION, self._env.cpu.serde(len(data)))
                    value = serde.deserialize(data)
                    size = self._sizer(value)
                    bucket.append((value, size))
                    self._allocate(size)
            else:
                data = entry.values[0]
                self._env.charge_cpu(CAT_MIGRATION, self._env.cpu.serde(len(data)))
                agg = serde.deserialize(data)
                size = self._sizer(agg)
                per_key = self._aggs.setdefault(entry.window, {})
                old = per_key.get(entry.key)
                if old is not None:
                    self._release(old[1])
                per_key[entry.key] = (agg, size)
                self._allocate(size)

    def close(self) -> None:
        self._closed = True
        self._lists.clear()
        self._aggs.clear()
        self._live_bytes = 0


def _default_sizer(value: Any) -> int:
    """Cheap payload-size estimate for common value shapes."""
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, tuple):
        return 8 + sum(_default_sizer(v) for v in value)
    if isinstance(value, dict):
        return 16 + sum(_default_sizer(k) + _default_sizer(v) for k, v in value.items())
    if hasattr(value, "payload_bytes"):
        return int(value.payload_bytes)
    return 64
