"""Store interfaces.

Two layers:

* :class:`KVStore` — the generic byte-oriented KV API that existing
  persistent stores expose (Get/Put/Append-merge/Scan/Delete).  The LSM and
  hash-KV baselines implement it; Flink-style glue maps window state onto
  it with composite ``window || key`` keys, exactly as §2.2 describes.
* :class:`WindowStateBackend` — what a window operator actually needs from
  state: append a tuple to a window, read a whole window (aligned trigger),
  read one key's window (unaligned trigger), and read-modify-write an
  aggregate.  FlowKV implements this natively with its semantic API;
  baselines are adapted through :class:`repro.engine.state.GenericKVBackend`.
"""

from __future__ import annotations

import warnings
import zlib
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.errors import UnsupportedOperationError
from repro.model import Window

# Entry kinds crossing the migration boundary (elastic rescaling).
KIND_LIST = "list"  # append-pattern list state (AAR / AUR / ListState)
KIND_AGG = "agg"  # read-modify-write aggregate state (RMW / ValueState)
KIND_JOIN_LEFT = "joinL"  # interval-join left side buffer (MapState analogue)
KIND_JOIN_RIGHT = "joinR"  # interval-join right side buffer

# Optional-capability names a backend may advertise (``capabilities``).
#
# * ``CAP_SNAPSHOT`` — the backend implements ``snapshot()``/``restore()``
#   and can be checkpointed.
# * ``CAP_RESCALE`` — the backend implements ``export_state()``/
#   ``import_state()`` and its key-groups can migrate between instances.
# * ``CAP_INCREMENTAL`` — the backend tracks per-key-group dirtiness
#   (``dirty_groups()``/``export_group_state()``) so checkpoints can write
#   deltas and changelog replication can tail its mutations.
# * ``CAP_BATCH`` — the backend *natively* implements the batched hot-path
#   surface (``multi_get``/``multi_append``/``write_batch``) with one
#   amortized call per batch.  Every backend still accepts the batch API —
#   the base classes provide loop-over-per-tuple defaults — so CAP_BATCH
#   is a performance statement, not a correctness gate: callers may use
#   it to pick batch sizes, never to refuse service.  Batched calls must
#   charge the simulated ledger identically to the per-tuple loop they
#   replace (charge parity is what keeps batch size a pure real-time knob).
CAP_SNAPSHOT = "snapshot"  # snapshot() / restore() — checkpointing
CAP_RESCALE = "rescale"  # export_state() / import_state() — key-group migration
CAP_INCREMENTAL = "incremental"  # dirty_groups() / export_group_state() — delta checkpoints
CAP_BATCH = "batch"  # native multi_get() / multi_append() / write_batch()

# Default per-chunk byte budget of a live state transfer.
DEFAULT_CHUNK_BYTES = 64 << 10

# Number of key-groups keyed state hashes into, absent a plan override.
# Canonical here (the lowest layer that needs it); ``repro.rescale.
# keygroups`` re-exports it together with the ownership-range helpers.
DEFAULT_MAX_KEY_GROUPS = 128


def key_group_of(key: bytes, max_key_groups: int = DEFAULT_MAX_KEY_GROUPS) -> int:
    """The key-group a key hashes to (fixed for the lifetime of the job)."""
    return zlib.crc32(key) % max_key_groups


def require_capability(backend: Any, capability: str, operation: str = "") -> None:
    """Fail fast with an actionable error if ``backend`` lacks ``capability``.

    Callers on the checkpoint and rescale paths call this *before*
    starting multi-step work, so a missing capability surfaces as one
    typed :class:`~repro.errors.UnsupportedOperationError` up front
    rather than a mid-migration surprise.
    """
    advertised = getattr(backend, "capabilities", frozenset())
    if capability not in advertised:
        raise UnsupportedOperationError(
            type(backend).__name__, capability, operation, advertised=advertised
        )


@dataclass
class ExportedEntry:
    """One (key, window) state cell extracted from a backend for migration.

    Values cross the migration boundary *serialized* (``bytes``), so the
    transfer volume is measurable and chargeable; the importing backend
    keeps or decodes them as its representation requires.  ``ett`` carries
    the AUR Stat-table estimate so a migrated window keeps its predictive
    batch-read eligibility on the new owner.
    """

    key: bytes
    window: Window
    kind: str  # KIND_LIST or KIND_AGG
    values: list[bytes]
    ett: float | None = None

    @property
    def payload_bytes(self) -> int:
        return len(self.key) + 16 + sum(len(v) for v in self.values)


@dataclass
class StateExport:
    """All state of a set of key-groups, extracted from one backend."""

    entries: list[ExportedEntry] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(entry.payload_bytes for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


# Maps a key to its key-group (bound to the job's max_key_groups).
KeyGroupFn = Callable[[bytes], int]


# Changelog operation tags.  Defined here (not in repro.changelog) so the
# dirty tracker can emit records without importing the changelog package.
LOG_APPEND = "append"  # extend the cell's value list
LOG_PUT = "put"  # replace the cell's value list (aggregate upsert)
LOG_REMOVE = "remove"  # drop the cell (fetch-and-remove read, export)
LOG_TRIM = "trim"  # join expiry: drop the key's pairs below a cut timestamp
LOG_MERGE = "merge"  # import merge: extend list/join cells, replace agg cells


class KeyGroupDirtyTracker:
    """Per-key-group dirty bookkeeping shared by incremental backends.

    A backend that advertises :data:`CAP_INCREMENTAL` owns one of these
    and marks the key-group of every *semantic* mutation (appends,
    aggregate writes, fetch-and-remove reads, imports).  Cost-only
    internal movement — compaction, prefetch promotion, spills — does
    not change what a checkpoint would capture and must not mark.

    The same semantic-vs-internal rule feeds changelog replication:
    when a :class:`repro.changelog.ChangelogWriter` is attached
    (``changelog`` attribute), the ``log_*`` variants additionally
    append an op record for the standby to tail.  With no writer
    attached they degrade to exactly the matching ``mark_*`` call, so
    single-node runs with replication off are charge-identical.
    """

    __slots__ = ("max_key_groups", "_dirty", "changelog")

    def __init__(self, max_key_groups: int = DEFAULT_MAX_KEY_GROUPS) -> None:
        self.max_key_groups = max_key_groups
        self._dirty: set[int] = set()
        self.changelog = None  # optional repro.changelog.ChangelogWriter

    @property
    def logging(self) -> bool:
        """True when a changelog writer is attached (payloads needed)."""
        return self.changelog is not None

    def mark_key(self, key: bytes) -> None:
        self._dirty.add(key_group_of(key, self.max_key_groups))

    def mark_group(self, group: int) -> None:
        self._dirty.add(group)

    def log_append(self, key: bytes, window, kind: str, values) -> None:
        """A value was appended to (key, window); ``values`` are the
        serialized payload(s) appended."""
        group = key_group_of(key, self.max_key_groups)
        self._dirty.add(group)
        if self.changelog is not None:
            self.changelog.record(group, LOG_APPEND, key, window, kind, values)

    def log_put(self, key: bytes, window, kind: str, values) -> None:
        """The cell at (key, window) was replaced wholesale."""
        group = key_group_of(key, self.max_key_groups)
        self._dirty.add(group)
        if self.changelog is not None:
            self.changelog.record(group, LOG_PUT, key, window, kind, values)

    def log_remove(self, key: bytes, window, kind: str) -> None:
        """The cell at (key, window) was consumed (fetch-and-remove,
        rmw_remove hit, or a destructive export vacated it)."""
        group = key_group_of(key, self.max_key_groups)
        self._dirty.add(group)
        if self.changelog is not None:
            self.changelog.record(group, LOG_REMOVE, key, window, kind, ())

    def log_trim(self, key: bytes, kind: str, cut: float) -> None:
        """Join expiry dropped (key, side) pairs with timestamp < cut."""
        group = key_group_of(key, self.max_key_groups)
        self._dirty.add(group)
        if self.changelog is not None:
            self.changelog.record(group, LOG_TRIM, key, None, kind, (cut,))

    def log_merge(self, key: bytes, window, kind: str, values) -> None:
        """An import landed at (key, window): merge into any existing
        cell (extend for list/join kinds, replace for aggregates)."""
        group = key_group_of(key, self.max_key_groups)
        self._dirty.add(group)
        if self.changelog is not None:
            self.changelog.record(group, LOG_MERGE, key, window, kind, values)

    def groups(self) -> frozenset[int]:
        return frozenset(self._dirty)

    def clear(self) -> None:
        self._dirty.clear()


@dataclass
class StateChunk:
    """One bounded slice of a single key-group's migrating state.

    A live rescale moves state as a sequence of chunks so the transfer
    can interleave with record processing; ``last`` marks the chunk that
    completes its key-group (the new owner imports the group — and cuts
    it over — only once its last chunk has landed).
    """

    key_group: int
    seq: int  # chunk ordinal within the key-group, from 0
    entries: list[ExportedEntry]
    last: bool

    @property
    def total_bytes(self) -> int:
        return sum(entry.payload_bytes for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class StateExportStream:
    """Chunked, resumable, per-key-group export of one backend.

    Construction is the *drain*: one bulk :meth:`WindowStateBackend.
    export_state` call extracts every moved key-group from the backend
    (state leaves the store immediately, exactly as in the stop-the-world
    path, so no split-brain window exists where old and new owner both
    hold a group).  The staged entries are then served as per-key-group
    :class:`StateChunk`\\ s under a byte budget — the transfer itself is
    charged to the ``migration`` ledger as chunks move on the simulated
    clock, by whoever moves them.

    The stream retains a full copy of every group's entries until the
    group is :meth:`commit`\\ ted (its cutover completed), so a
    mid-transfer fault can :meth:`rollback_entries` — re-import the
    group at its old owner — without touching groups that already cut
    over.
    """

    def __init__(
        self,
        backend: "WindowStateBackend",
        key_groups: set[int],
        key_group_of: KeyGroupFn,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        require_capability(backend, CAP_RESCALE, "export_state")
        self._chunk_bytes = max(1, chunk_bytes)
        self._staged: dict[int, list[ExportedEntry]] = {
            group: [] for group in sorted(key_groups)
        }
        for entry in backend.export_state(set(key_groups), key_group_of).entries:
            self._staged[key_group_of(entry.key)].append(entry)
        self._cursor: dict[int, int] = dict.fromkeys(self._staged, 0)
        self._seq: dict[int, int] = dict.fromkeys(self._staged, 0)
        self._done: set[int] = set()

    def groups(self) -> list[int]:
        """The key-groups this stream is transferring, ascending."""
        return list(self._staged)

    def entries_of(self, group: int) -> list[ExportedEntry]:
        return self._staged[group]

    def has_more(self, group: int) -> bool:
        """Whether ``group`` still has chunks to send (every group sends
        at least one — possibly empty — final chunk)."""
        return group in self._staged and group not in self._done

    def next_chunk(self, group: int) -> StateChunk:
        """The next chunk of ``group`` under the byte budget."""
        if not self.has_more(group):
            raise ValueError(f"key-group {group} has no chunks left to send")
        entries = self._staged[group]
        start = self._cursor[group]
        end = start
        size = 0
        while end < len(entries) and (size == 0 or size < self._chunk_bytes):
            size += entries[end].payload_bytes
            end += 1
        self._cursor[group] = end
        seq = self._seq[group]
        self._seq[group] = seq + 1
        last = end >= len(entries)
        if last:
            self._done.add(group)
        return StateChunk(group, seq, entries[start:end], last)

    def skip_transfer(self, group: int) -> None:
        """Mark ``group`` transferred without sending any chunks.

        Used by the checkpoint-seeded rescale path: the destination is
        seeded from the latest checkpoint's shard, so no live bytes move
        — but the rollback copy is kept until :meth:`commit` exactly as
        for a chunked transfer, so an abort can still re-import the
        group at its old owner.
        """
        if group in self._staged:
            self._cursor[group] = len(self._staged[group])
            self._done.add(group)

    def commit(self, group: int) -> None:
        """Drop the rollback copy of a cut-over group."""
        self._staged.pop(group, None)

    def rollback_entries(self, group: int) -> list[ExportedEntry]:
        """All entries of a not-yet-committed group, for re-import at the
        old owner (sent-but-not-cut-over chunks included)."""
        entries = self._staged.pop(group, [])
        self._done.add(group)
        return entries


class WriteBatch:
    """Accumulate-then-commit mutation batch for a :class:`KVStore`.

    The plyvel/RocksDB ``WriteBatch`` idiom: ops are buffered in this
    object and *nothing* reaches the store until :meth:`commit` hands the
    whole ordered op list to the store's ``apply_write_batch`` in one
    call.  That gives the batch its atomicity story: no device write can
    land mid-batch (a torn write cannot leave a prefix of the batch on
    disk), and a batch abandoned before commit — including via an
    exception inside the ``with`` block — applies nothing at all.

    Usable as a context manager; a clean exit commits, an exception
    discards the buffered ops and re-raises.
    """

    __slots__ = ("_target", "_ops", "_committed")

    def __init__(self, target: Any) -> None:
        self._target = target
        self._ops: list[tuple[str, bytes, bytes | None]] = []
        self._committed = False

    def __len__(self) -> int:
        return len(self._ops)

    def put(self, key: bytes, value: bytes) -> None:
        self._ops.append(("put", key, value))

    def append(self, key: bytes, value: bytes) -> None:
        self._ops.append(("append", key, value))

    def delete(self, key: bytes) -> None:
        self._ops.append(("delete", key, None))

    def commit(self) -> None:
        """Apply every buffered op, in order, in one store call."""
        if self._committed:
            return
        self._committed = True
        ops, self._ops = self._ops, []
        if ops:
            self._target.apply_write_batch(ops)

    def discard(self) -> None:
        """Drop the buffered ops without applying them."""
        self._committed = True
        self._ops = []

    def __enter__(self) -> "WriteBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.discard()


class WindowWriteBatch:
    """Accumulate-then-commit batch for a :class:`WindowStateBackend`.

    Same contract as :class:`WriteBatch`, with window-state ops:
    ``append(key, window, value, timestamp)``, ``rmw_put`` and
    ``rmw_remove``.  Commit hands the ordered op list to the backend's
    ``apply_write_batch``; the default implementation funnels append runs
    through :meth:`WindowStateBackend.multi_append` so even non-CAP_BATCH
    backends take the batched path.
    """

    __slots__ = ("_target", "_ops", "_committed")

    def __init__(self, target: "WindowStateBackend") -> None:
        self._target = target
        self._ops: list[tuple] = []
        self._committed = False

    def __len__(self) -> int:
        return len(self._ops)

    def append(self, key: bytes, window: Window, value: Any, timestamp: float) -> None:
        self._ops.append(("append", key, window, value, timestamp))

    def rmw_put(self, key: bytes, window: Window, aggregate: Any) -> None:
        self._ops.append(("rmw_put", key, window, aggregate))

    def rmw_remove(self, key: bytes, window: Window) -> None:
        self._ops.append(("rmw_remove", key, window))

    def commit(self) -> None:
        if self._committed:
            return
        self._committed = True
        ops, self._ops = self._ops, []
        if ops:
            self._target.apply_write_batch(ops)

    def discard(self) -> None:
        self._committed = True
        self._ops = []

    def __enter__(self) -> "WindowWriteBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.discard()


def warn_per_tuple(operation: str) -> None:
    """Emit the hot-path per-tuple deprecation warning.

    Engine-side call sites must route state mutation through the batch
    API (``multi_append`` / ``write_batch``), at batch size 1 where a
    pattern genuinely needs per-record ordering.  Direct ``put``/
    ``append`` calls outside backends and tests go through this shim so
    stragglers surface as :class:`DeprecationWarning` without behavior
    change.
    """
    warnings.warn(
        f"direct per-tuple {operation}() on the hot path is deprecated; "
        f"use multi_{operation}() or write_batch() (batch size 1 is "
        f"charge-identical)",
        DeprecationWarning,
        stacklevel=3,
    )


class PerTupleShim:
    """Proxy that deprecation-warns on direct per-tuple mutation.

    Wrap a store or backend whose callers have not migrated yet: every
    attribute is forwarded unchanged, but ``put``/``append``/``delete``/
    ``rmw_put`` first emit a :class:`DeprecationWarning` through
    :func:`warn_per_tuple`.  The batched surface (``multi_*``,
    ``write_batch``) passes through silently.
    """

    _WARNED = frozenset({"put", "append", "delete", "rmw_put"})

    def __init__(self, target: Any) -> None:
        object.__setattr__(self, "_target", target)

    def __getattr__(self, name: str):
        attr = getattr(object.__getattribute__(self, "_target"), name)
        if name in self._WARNED and callable(attr):
            def shimmed(*args, _attr=attr, _name=name, **kwargs):
                warn_per_tuple(_name)
                return _attr(*args, **kwargs)

            return shimmed
        return attr


class KVStore(ABC):
    """Generic persistent KV store interface (byte keys, byte values)."""

    @abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Return the (fully merged) value for ``key``, or None."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""

    @abstractmethod
    def append(self, key: bytes, value: bytes) -> None:
        """Append ``value`` to the list of values stored under ``key``.

        For the LSM store this is a RocksDB-style merge operand (lazy
        merging); for the hash store it is a read-modify-write of the whole
        list (the paper's Faster I/O-amplification failure mode).
        """

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove ``key`` (tombstone for log-structured stores)."""

    @abstractmethod
    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all live ``(key, merged_value)`` pairs with ``prefix``,
        in key order for sorted stores."""

    @abstractmethod
    def flush(self) -> None:
        """Persist buffered writes."""

    @abstractmethod
    def close(self) -> None:
        """Release resources; the store must not be used afterwards."""

    @property
    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate bytes of live in-memory structures."""

    @property
    def disk_bytes(self) -> int:
        """Approximate bytes of on-disk structures (0 for pure-memory)."""
        return 0

    @property
    def capabilities(self) -> frozenset[str]:
        """Optional features this store implements (``CAP_*`` names)."""
        return frozenset()

    # --- semantic prefetching (optional) --------------------------------
    # True when appends internally *read* existing state (the hash store's
    # RCU read of the old value list); such stores benefit from prefetching
    # the keys a batch is about to append to.  LSM appends are blind merge
    # operands, so the default is False.
    append_reads = False

    @property
    def prefetch_active(self) -> bool:
        """True when a prefetch executor is attached to this store."""
        return False

    def prefetch_scan(self, prefix: bytes) -> None:
        """Hint: a prefix scan over ``prefix`` is imminent (AAR trigger).

        Disk stores with an attached :class:`repro.prefetch.
        PrefetchExecutor` override this to pre-read the blocks the scan
        will touch; the default is a no-op.  Hints are advisory — they
        may not change store contents or job output in any way.
        """

    def prefetch_get(self, keys: list[bytes]) -> None:
        """Hint: point reads of ``keys`` are imminent (RMW/AUR trigger)."""

    # --- batched hot path -----------------------------------------------
    # Default implementations loop over the per-tuple methods, so every
    # store accepts the batch API unchanged; stores advertising
    # :data:`CAP_BATCH` override with one amortized internal pass.  Both
    # shapes must charge the ledger identically to the per-tuple loop.
    def multi_get(self, keys: list[bytes]) -> list[bytes | None]:
        """Batched :meth:`get`: one merged value (or None) per key, in
        key order."""
        return [self.get(key) for key in keys]

    def multi_append(self, entries: list[tuple[bytes, bytes]]) -> None:
        """Batched :meth:`append` of ``(key, value)`` entries, in order."""
        for key, value in entries:
            self.append(key, value)

    def write_batch(self) -> WriteBatch:
        """An accumulate-then-commit :class:`WriteBatch` bound to this
        store.  No device write happens until the batch commits."""
        return WriteBatch(self)

    def apply_write_batch(self, ops: list[tuple[str, bytes, bytes | None]]) -> None:
        """Apply a committed :class:`WriteBatch`'s ordered op list.

        The default dispatches per op; CAP_BATCH stores override to stage
        every op in memory before any flush-threshold check runs, so the
        batch reaches the device as a unit (never a torn prefix).
        """
        for op, key, value in ops:
            if op == "put":
                self.put(key, value)
            elif op == "append":
                self.append(key, value)
            elif op == "delete":
                self.delete(key)
            else:
                raise ValueError(f"unknown write-batch op {op!r}")

    # --- incremental checkpointing (optional) ---------------------------
    def dirty_groups(self) -> frozenset[int]:
        """Key-groups mutated since the last :meth:`clear_dirty`.

        Requires :data:`CAP_INCREMENTAL`.
        """
        raise UnsupportedOperationError(
            type(self).__name__, CAP_INCREMENTAL, "dirty_groups"
        )

    def clear_dirty(self) -> None:
        """Reset dirty tracking (called after a checkpoint epoch commits)."""
        raise UnsupportedOperationError(
            type(self).__name__, CAP_INCREMENTAL, "clear_dirty"
        )


class WindowStateBackend(ABC):
    """Window-operator-facing state interface.

    Values and aggregates cross this boundary as Python objects; backends
    that persist to the simulated device serialize them (and charge serde
    time), the heap backend stores them directly (as Flink's heap state
    does).  ``read_window`` / ``read_key_window`` / ``rmw_remove`` are
    *fetch-and-remove*, matching Listing 1 in the paper.
    """

    # --- append-pattern (list state) -----------------------------------
    @abstractmethod
    def append(self, key: bytes, window: Window, value: Any, timestamp: float) -> None:
        """Add ``value`` to the list state of ``(key, window)``."""

    @abstractmethod
    def read_window(self, window: Window) -> Iterator[tuple[bytes, list[Any]]]:
        """Fetch & remove all keys of ``window`` (aligned trigger).

        Yields ``(key, values)`` pairs; backends may load gradually so
        only a partition of the window is resident at once (FlowKV §4.1).
        """

    @abstractmethod
    def read_key_window(self, key: bytes, window: Window) -> list[Any]:
        """Fetch & remove the values of one ``(key, window)`` (unaligned)."""

    # --- read-modify-write pattern (aggregate state) --------------------
    @abstractmethod
    def rmw_get(self, key: bytes, window: Window) -> Any | None:
        """Read the current aggregate of ``(key, window)`` (no removal)."""

    @abstractmethod
    def rmw_put(self, key: bytes, window: Window, aggregate: Any) -> None:
        """Write back the updated aggregate of ``(key, window)``."""

    @abstractmethod
    def rmw_remove(self, key: bytes, window: Window) -> Any | None:
        """Fetch & remove the aggregate of ``(key, window)`` (trigger)."""

    # --- batched hot path -----------------------------------------------
    # The engine's only mutation surface: operators hand the backend
    # per-batch entry lists (size 1 where a pattern needs per-record
    # ordering).  Defaults loop over the per-tuple methods; CAP_BATCH
    # backends override with one amortized pass that must stay
    # charge-identical to the loop.
    def multi_append(
        self, entries: list[tuple[bytes, Window, Any, float]]
    ) -> None:
        """Batched :meth:`append` of ``(key, window, value, timestamp)``
        entries, in order."""
        for key, window, value, timestamp in entries:
            self.append(key, window, value, timestamp)

    def multi_get(self, cells: list[tuple[bytes, Window]]) -> list[Any | None]:
        """Batched non-destructive point read: the current aggregate of
        each ``(key, window)`` cell (:meth:`rmw_get`), in cell order."""
        return [self.rmw_get(key, window) for key, window in cells]

    def write_batch(self) -> WindowWriteBatch:
        """An accumulate-then-commit :class:`WindowWriteBatch` bound to
        this backend."""
        return WindowWriteBatch(self)

    def apply_write_batch(self, ops: list[tuple]) -> None:
        """Apply a committed :class:`WindowWriteBatch`'s ordered op list.

        Consecutive append runs are funneled through :meth:`multi_append`
        so even the default implementation takes the batched path; RMW
        ops dispatch singly (their read-modify-write ordering is the
        semantics).
        """
        run: list[tuple[bytes, Window, Any, float]] = []
        for op in ops:
            if op[0] == "append":
                run.append((op[1], op[2], op[3], op[4]))
                continue
            if run:
                self.multi_append(run)
                run = []
            if op[0] == "rmw_put":
                self.rmw_put(op[1], op[2], op[3])
            elif op[0] == "rmw_remove":
                self.rmw_remove(op[1], op[2])
            else:
                raise ValueError(f"unknown write-batch op {op[0]!r}")
        if run:
            self.multi_append(run)

    # --- lifecycle ------------------------------------------------------
    @abstractmethod
    def flush(self) -> None: ...

    @abstractmethod
    def close(self) -> None: ...

    @property
    @abstractmethod
    def memory_bytes(self) -> int: ...

    def on_watermark(self, timestamp: float) -> None:
        """Advance the backend's notion of time (enables prefetching)."""

    # --- semantic prefetching (optional) --------------------------------
    # Operators emit advisory hints about imminent state accesses; a
    # backend whose store has a prefetch executor attached translates
    # them into background block reads.  Defaults: disabled, no-ops.
    @property
    def prefetch_enabled(self) -> bool:
        """True when hints reach an attached prefetch executor."""
        return False

    def prefetch_window(self, window: Window) -> None:
        """Hint: an aligned trigger will scan all keys of ``window``."""

    def prefetch_keys(self, window: Window, keys: list[bytes]) -> None:
        """Hint: per-key reads of ``(key, window)`` cells are imminent."""

    def prefetch_write_keys(
        self, entries: list[tuple[bytes, Window]]
    ) -> None:
        """Hint: appends to these ``(key, window)`` cells are imminent
        (useful only for stores whose appends read old state)."""

    # --- optional capabilities ------------------------------------------
    @property
    def capabilities(self) -> frozenset[str]:
        """Optional features this backend implements (``CAP_*`` names).

        A backend that overrides :meth:`snapshot`/:meth:`restore` must
        advertise :data:`CAP_SNAPSHOT`; one that overrides
        :meth:`export_state`/:meth:`import_state` must advertise
        :data:`CAP_RESCALE`.  Callers (the recovery manager, the rescale
        executor, the bench harness) check the set up front via
        :func:`require_capability` instead of catching exceptions mid-run.
        """
        return frozenset()

    # --- checkpointing (§8, Fault Tolerance) ----------------------------
    def snapshot(self):
        """Capture a :class:`repro.snapshot.StoreSnapshot` of this backend.

        Implementations flush in-memory buffers first so the bulk of the
        snapshot is on-disk files that an SPE can upload asynchronously.
        Requires :data:`CAP_SNAPSHOT`.
        """
        raise UnsupportedOperationError(type(self).__name__, CAP_SNAPSHOT, "snapshot")

    def restore(self, snapshot) -> None:
        """Load a snapshot into this (freshly constructed) backend."""
        raise UnsupportedOperationError(type(self).__name__, CAP_SNAPSHOT, "restore")

    # --- elastic rescaling (key-group migration) ------------------------
    def export_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> StateExport:
        """Extract *and remove* all state of ``key_groups``.

        Implementations flush buffered writes first, read the moved state
        back (charging the reads to the ``migration`` ledger category
        where the backend controls the charge), and leave the remaining
        key-groups untouched.  The returned export is what a rescale
        transfers to the new owner.  Requires :data:`CAP_RESCALE`.
        """
        raise UnsupportedOperationError(
            type(self).__name__, CAP_RESCALE, "export_state"
        )

    def import_state(self, export: StateExport) -> None:
        """Load a :class:`StateExport` produced by a peer instance."""
        raise UnsupportedOperationError(
            type(self).__name__, CAP_RESCALE, "import_state"
        )

    # --- incremental checkpointing (per-key-group dirty tracking) -------
    def dirty_groups(self) -> frozenset[int]:
        """Key-groups semantically mutated since the last :meth:`clear_dirty`.

        The incremental checkpointer writes only these groups' shards per
        epoch and references the previous epoch's shards for the rest;
        the seeded rescale path trusts a clean group's checkpoint shard
        to equal its live state.  Requires :data:`CAP_INCREMENTAL`.
        """
        raise UnsupportedOperationError(
            type(self).__name__, CAP_INCREMENTAL, "dirty_groups"
        )

    def clear_dirty(self) -> None:
        """Reset dirty tracking (called once a checkpoint epoch commits)."""
        raise UnsupportedOperationError(
            type(self).__name__, CAP_INCREMENTAL, "clear_dirty"
        )

    def export_group_state(
        self, key_groups: set[int] | None, key_group_of: KeyGroupFn
    ) -> StateExport:
        """Extract — *without removing* — all state of ``key_groups``.

        The non-destructive sibling of :meth:`export_state`: the sharded
        checkpointer reads state out through this to write per-group
        shard files while the backend keeps serving.  ``key_groups`` of
        ``None`` means every group (a full snapshot epoch).  Reads are
        charged to the ``recovery`` ledger category.  Requires
        :data:`CAP_INCREMENTAL`.
        """
        raise UnsupportedOperationError(
            type(self).__name__, CAP_INCREMENTAL, "export_group_state"
        )


def composite_key(window: Window, key: bytes) -> bytes:
    """``window || key`` composite encoding used by generic-KV glue.

    The window comes first so that a sorted store clusters all keys of one
    window together and an aligned trigger becomes a prefix scan — this is
    how Flink lays out window state in RocksDB.
    """
    return window.key_bytes() + key


def split_composite_key(data: bytes) -> tuple[Window, bytes]:
    """Inverse of :func:`composite_key`."""
    return Window.from_key_bytes(data), bytes(data[16:])
