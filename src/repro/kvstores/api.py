"""Store interfaces.

Two layers:

* :class:`KVStore` — the generic byte-oriented KV API that existing
  persistent stores expose (Get/Put/Append-merge/Scan/Delete).  The LSM and
  hash-KV baselines implement it; Flink-style glue maps window state onto
  it with composite ``window || key`` keys, exactly as §2.2 describes.
* :class:`WindowStateBackend` — what a window operator actually needs from
  state: append a tuple to a window, read a whole window (aligned trigger),
  read one key's window (unaligned trigger), and read-modify-write an
  aggregate.  FlowKV implements this natively with its semantic API;
  baselines are adapted through :class:`repro.engine.state.GenericKVBackend`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.model import Window

# Entry kinds crossing the migration boundary (elastic rescaling).
KIND_LIST = "list"  # append-pattern list state (AAR / AUR / ListState)
KIND_AGG = "agg"  # read-modify-write aggregate state (RMW / ValueState)


@dataclass
class ExportedEntry:
    """One (key, window) state cell extracted from a backend for migration.

    Values cross the migration boundary *serialized* (``bytes``), so the
    transfer volume is measurable and chargeable; the importing backend
    keeps or decodes them as its representation requires.  ``ett`` carries
    the AUR Stat-table estimate so a migrated window keeps its predictive
    batch-read eligibility on the new owner.
    """

    key: bytes
    window: Window
    kind: str  # KIND_LIST or KIND_AGG
    values: list[bytes]
    ett: float | None = None

    @property
    def payload_bytes(self) -> int:
        return len(self.key) + 16 + sum(len(v) for v in self.values)


@dataclass
class StateExport:
    """All state of a set of key-groups, extracted from one backend."""

    entries: list[ExportedEntry] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(entry.payload_bytes for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


# Maps a key to its key-group (bound to the job's max_key_groups).
KeyGroupFn = Callable[[bytes], int]


class KVStore(ABC):
    """Generic persistent KV store interface (byte keys, byte values)."""

    @abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Return the (fully merged) value for ``key``, or None."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""

    @abstractmethod
    def append(self, key: bytes, value: bytes) -> None:
        """Append ``value`` to the list of values stored under ``key``.

        For the LSM store this is a RocksDB-style merge operand (lazy
        merging); for the hash store it is a read-modify-write of the whole
        list (the paper's Faster I/O-amplification failure mode).
        """

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove ``key`` (tombstone for log-structured stores)."""

    @abstractmethod
    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all live ``(key, merged_value)`` pairs with ``prefix``,
        in key order for sorted stores."""

    @abstractmethod
    def flush(self) -> None:
        """Persist buffered writes."""

    @abstractmethod
    def close(self) -> None:
        """Release resources; the store must not be used afterwards."""

    @property
    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate bytes of live in-memory structures."""

    @property
    def disk_bytes(self) -> int:
        """Approximate bytes of on-disk structures (0 for pure-memory)."""
        return 0


class WindowStateBackend(ABC):
    """Window-operator-facing state interface.

    Values and aggregates cross this boundary as Python objects; backends
    that persist to the simulated device serialize them (and charge serde
    time), the heap backend stores them directly (as Flink's heap state
    does).  ``read_window`` / ``read_key_window`` / ``rmw_remove`` are
    *fetch-and-remove*, matching Listing 1 in the paper.
    """

    # --- append-pattern (list state) -----------------------------------
    @abstractmethod
    def append(self, key: bytes, window: Window, value: Any, timestamp: float) -> None:
        """Add ``value`` to the list state of ``(key, window)``."""

    @abstractmethod
    def read_window(self, window: Window) -> Iterator[tuple[bytes, list[Any]]]:
        """Fetch & remove all keys of ``window`` (aligned trigger).

        Yields ``(key, values)`` pairs; backends may load gradually so
        only a partition of the window is resident at once (FlowKV §4.1).
        """

    @abstractmethod
    def read_key_window(self, key: bytes, window: Window) -> list[Any]:
        """Fetch & remove the values of one ``(key, window)`` (unaligned)."""

    # --- read-modify-write pattern (aggregate state) --------------------
    @abstractmethod
    def rmw_get(self, key: bytes, window: Window) -> Any | None:
        """Read the current aggregate of ``(key, window)`` (no removal)."""

    @abstractmethod
    def rmw_put(self, key: bytes, window: Window, aggregate: Any) -> None:
        """Write back the updated aggregate of ``(key, window)``."""

    @abstractmethod
    def rmw_remove(self, key: bytes, window: Window) -> Any | None:
        """Fetch & remove the aggregate of ``(key, window)`` (trigger)."""

    # --- lifecycle ------------------------------------------------------
    @abstractmethod
    def flush(self) -> None: ...

    @abstractmethod
    def close(self) -> None: ...

    @property
    @abstractmethod
    def memory_bytes(self) -> int: ...

    def on_watermark(self, timestamp: float) -> None:
        """Advance the backend's notion of time (enables prefetching)."""

    # --- checkpointing (§8, Fault Tolerance) ----------------------------
    def snapshot(self):
        """Capture a :class:`repro.snapshot.StoreSnapshot` of this backend.

        Implementations flush in-memory buffers first so the bulk of the
        snapshot is on-disk files that an SPE can upload asynchronously.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support snapshots")

    def restore(self, snapshot) -> None:
        """Load a snapshot into this (freshly constructed) backend."""
        raise NotImplementedError(f"{type(self).__name__} does not support snapshots")

    # --- elastic rescaling (key-group migration) ------------------------
    def export_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> StateExport:
        """Extract *and remove* all state of ``key_groups``.

        Implementations flush buffered writes first, read the moved state
        back (charging the reads to the ``migration`` ledger category
        where the backend controls the charge), and leave the remaining
        key-groups untouched.  The returned export is what a rescale
        transfers to the new owner.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support rescaling")

    def import_state(self, export: StateExport) -> None:
        """Load a :class:`StateExport` produced by a peer instance."""
        raise NotImplementedError(f"{type(self).__name__} does not support rescaling")


def composite_key(window: Window, key: bytes) -> bytes:
    """``window || key`` composite encoding used by generic-KV glue.

    The window comes first so that a sorted store clusters all keys of one
    window together and an aligned trigger becomes a prefix scan — this is
    how Flink lays out window state in RocksDB.
    """
    return window.key_bytes() + key


def split_composite_key(data: bytes) -> tuple[Window, bytes]:
    """Inverse of :func:`composite_key`."""
    return Window.from_key_bytes(data), bytes(data[16:])
