"""SSTable writer and reader.

Layout (all little-endian):

```
[data block 0][data block 1]...[index block][bloom block][footer]
```

* data blocks: concatenated encoded entries, key-sorted, ~``block_bytes``
  each; a key's versions never straddle a block boundary,
* index block: per block ``(first_key, offset, length)``,
* bloom block: serialized :class:`BloomFilter` over all keys,
* footer: fixed-size offsets of the index and bloom blocks.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from collections.abc import Iterable, Iterator

from repro.errors import StoreError
from repro.kvstores.lsm.blockcache import BlockCache
from repro.kvstores.lsm.bloom import BloomFilter
from repro.kvstores.lsm.format import Entry, decode_entry, encode_entry
from repro.serde.codec import decode_bytes, encode_bytes
from repro.simenv import CAT_STORE_READ, SimEnv
from repro.storage.filesystem import SimFileSystem

_FOOTER = struct.Struct("<QIQIQI")  # index_off, index_len, bloom_off, bloom_len, n_entries, magic
_MAGIC = 0x5354414C  # "STAL"


class SSTableWriter:
    """Builds one SSTable from a key-sorted entry stream and writes it."""

    def __init__(
        self,
        env: SimEnv,
        fs: SimFileSystem,
        name: str,
        block_bytes: int = 4096,
        bloom_bits_per_key: int = 10,
        category: str = "store_write",
    ) -> None:
        self._env = env
        self._fs = fs
        self._name = name
        self._block_bytes = block_bytes
        self._bloom_bits = bloom_bits_per_key
        self._category = category

    def write(self, entries: Iterable[Entry]) -> "SSTableReader | None":
        """Write all entries; returns a reader, or None if empty."""
        blocks: list[bytes] = []
        index: list[tuple[bytes, int, int]] = []  # first_key, offset, length
        current = bytearray()
        current_first: bytes | None = None
        last_key: bytes | None = None
        keys: list[bytes] = []
        n_entries = 0
        offset = 0

        def close_block() -> None:
            nonlocal current, current_first, offset
            if not current:
                return
            index.append((current_first or b"", offset, len(current)))
            offset += len(current)
            blocks.append(bytes(current))
            current = bytearray()
            current_first = None

        for entry in entries:
            if last_key is not None and entry.key < last_key:
                raise StoreError(
                    f"entries out of order writing {self._name}: {entry.key!r} < {last_key!r}"
                )
            # Only split blocks at key boundaries so one key's versions
            # always live in a single block.
            if len(current) >= self._block_bytes and entry.key != last_key:
                close_block()
            if current_first is None:
                current_first = entry.key
            if entry.key != last_key:
                keys.append(entry.key)
            current += encode_entry(entry)
            last_key = entry.key
            n_entries += 1
        close_block()

        if n_entries == 0:
            return None

        bloom = BloomFilter(len(keys), self._bloom_bits)
        for key in keys:
            bloom.add(key)
            self._env.charge_cpu(self._category, self._env.cpu.bloom_check)

        index_block = bytearray()
        for first_key, block_off, block_len in index:
            index_block += encode_bytes(first_key)
            index_block += struct.pack("<QI", block_off, block_len)
        bloom_block = bloom.to_bytes()

        data_len = offset
        payload = b"".join(blocks) + bytes(index_block) + bloom_block
        footer = _FOOTER.pack(
            data_len, len(index_block), data_len + len(index_block), len(bloom_block),
            n_entries, _MAGIC,
        )
        # One sequential device write for the whole table.
        self._fs.append(self._name, payload + footer, category=self._category)
        return SSTableReader(self._env, self._fs, self._name, category=self._category)


class SSTableReader:
    """Opens an SSTable; index and bloom filter stay pinned in memory."""

    def __init__(
        self,
        env: SimEnv,
        fs: SimFileSystem,
        name: str,
        category: str = "store_read",
    ) -> None:
        self._env = env
        self._fs = fs
        self.name = name
        file_size = fs.size(name)
        footer = fs.read(name, file_size - _FOOTER.size, _FOOTER.size, category=category)
        index_off, index_len, bloom_off, bloom_len, n_entries, magic = _FOOTER.unpack(footer)
        if magic != _MAGIC:
            raise StoreError(f"bad SSTable magic in {name}")
        self.entry_count = n_entries
        index_raw = fs.read(name, index_off, index_len, category=category)
        self._block_first_keys: list[bytes] = []
        self._block_offsets: list[tuple[int, int]] = []
        pos = 0
        while pos < len(index_raw):
            first_key, pos = decode_bytes(index_raw, pos)
            block_off, block_len = struct.unpack_from("<QI", index_raw, pos)
            pos += 12
            self._block_first_keys.append(first_key)
            self._block_offsets.append((block_off, block_len))
        bloom_raw = fs.read(name, bloom_off, bloom_len, category=category)
        self._bloom = BloomFilter.from_bytes(bloom_raw)
        self._data_len = index_off
        self._index_bytes = index_len + bloom_len
        self.smallest_key = self._block_first_keys[0] if self._block_first_keys else b""
        self.largest_key = self._find_largest_key(category)

    def _find_largest_key(self, category: str) -> bytes:
        if not self._block_offsets:
            return b""
        entries = self._decode_block_raw(len(self._block_offsets) - 1, category)
        return entries[-1].key if entries else b""

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Pinned index + bloom memory."""
        return self._index_bytes + sum(len(k) for k in self._block_first_keys)

    @property
    def data_bytes(self) -> int:
        return self._data_len

    def file_size(self) -> int:
        return self._fs.size(self.name)

    def may_contain(self, key: bytes) -> bool:
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.bloom_check)
        self._env.bump("lsm_bloom_checks")
        hit = self._bloom.may_contain(key)
        if not hit:
            self._env.bump("lsm_bloom_negatives")
        return hit

    # ------------------------------------------------------------------
    def _decode_block_raw(self, block_idx: int, category: str = CAT_STORE_READ) -> list[Entry]:
        """Read and decode one block from the device (no cache)."""
        block_off, block_len = self._block_offsets[block_idx]
        raw = self._fs.read(self.name, block_off, block_len, category=category)
        self._env.charge_cpu(category, block_len * self._env.cpu.block_decode_per_byte)
        entries: list[Entry] = []
        pos = 0
        while pos < len(raw):
            entry, pos = decode_entry(raw, pos)
            entries.append(entry)
        return entries

    def _load_block(self, block_idx: int, cache: BlockCache | None) -> list[Entry]:
        block_off, block_len = self._block_offsets[block_idx]
        if cache is not None:
            cached = cache.get(self.name, block_off)
            if cached is not None:
                return cached
        entries = self._decode_block_raw(block_idx)
        if cache is not None:
            cache.insert(self.name, block_off, entries, block_len)
        return entries

    def locate_block(self, key: bytes) -> int | None:
        """Index of the data block a point read of ``key`` would load.

        Charges the same bloom check and index search as the lookup path
        of :meth:`get_versions`; the prefetcher calls this under capture
        so the cost books as background work.
        """
        if not self._block_offsets or not self.may_contain(key):
            return None
        self._env.charge_cpu(
            CAT_STORE_READ, self._env.cpu.sorted_search(len(self._block_offsets))
        )
        block_idx = bisect_right(self._block_first_keys, key) - 1
        return block_idx if block_idx >= 0 else None

    def block_span(self, block_idx: int) -> tuple[int, int]:
        """``(offset, length)`` of a data block."""
        return self._block_offsets[block_idx]

    def get_versions(self, key: bytes, cache: BlockCache | None = None) -> list[Entry]:
        """All versions of ``key`` in this table, newest first."""
        if not self._block_offsets or not self.may_contain(key):
            return []
        self._env.charge_cpu(
            CAT_STORE_READ, self._env.cpu.sorted_search(len(self._block_offsets))
        )
        block_idx = bisect_right(self._block_first_keys, key) - 1
        if block_idx < 0:
            return []
        entries = self._load_block(block_idx, cache)
        # Binary search within the block, then collect the key's run.
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.sorted_search(len(entries)))
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid].key < key:
                lo = mid + 1
            else:
                hi = mid
        versions: list[Entry] = []
        while lo < len(entries) and entries[lo].key == key:
            versions.append(entries[lo])
            lo += 1
        return versions

    def plan_slabs(
        self,
        start_key: bytes | None = None,
        stop_prefix: bytes | None = None,
        readahead_bytes: int = 1 << 20,
    ) -> list[tuple[int, int]]:
        """The ``(offset, length)`` slab sequence :meth:`iter_entries`
        would read for a scan from ``start_key``.

        Pure index arithmetic — no device access, no charges — so a
        prefetcher can issue exactly the reads the demand scan will make.
        With ``stop_prefix`` the plan ends at the slab covering the first
        block whose keys left the prefix (where a prefix scan stops).
        """
        if not self._block_offsets:
            return []
        first = 0
        if start_key is not None:
            first = max(0, bisect_right(self._block_first_keys, start_key) - 1)
        slabs: list[tuple[int, int]] = []
        slab_start = 0
        slab_len = 0
        for block_idx in range(first, len(self._block_offsets)):
            block_off, block_len = self._block_offsets[block_idx]
            if block_off + block_len > slab_start + slab_len:
                slab_start = block_off
                slab_len = min(
                    max(readahead_bytes, block_len), self._data_len - slab_start
                )
                slabs.append((slab_start, slab_len))
            if stop_prefix is not None and block_idx > first:
                first_key = self._block_first_keys[block_idx]
                if not first_key.startswith(stop_prefix) and first_key > stop_prefix:
                    break
        return slabs

    def iter_entries(
        self,
        start_key: bytes | None = None,
        category: str = CAT_STORE_READ,
        readahead_bytes: int = 1 << 20,
        prefetcher=None,
    ) -> Iterator[Entry]:
        """Sequential scan of all entries with key >= ``start_key``.

        Bypasses the block cache and reads the data region in
        ``readahead_bytes`` slabs — compaction and range scans are
        sequential with readahead, as in RocksDB.  When a ``prefetcher``
        (an object with ``take_slab(name, offset, length)``) is supplied,
        slabs it has already read in the background are consumed instead
        of re-read, paying only the residual wait.
        """
        if not self._block_offsets:
            return
        first = 0
        if start_key is not None:
            first = max(0, bisect_right(self._block_first_keys, start_key) - 1)
        slab = b""
        slab_start = 0
        for block_idx in range(first, len(self._block_offsets)):
            block_off, block_len = self._block_offsets[block_idx]
            if block_off + block_len > slab_start + len(slab):
                slab_start = block_off
                length = min(
                    max(readahead_bytes, block_len), self._data_len - slab_start
                )
                slab = None
                if prefetcher is not None:
                    slab = prefetcher.take_slab(self.name, slab_start, length)
                if slab is None:
                    slab = self._fs.read(
                        self.name, slab_start, length, category=category
                    )
            raw = slab[block_off - slab_start : block_off - slab_start + block_len]
            self._env.charge_cpu(category, block_len * self._env.cpu.block_decode_per_byte)
            pos = 0
            while pos < len(raw):
                entry, pos = decode_entry(raw, pos)
                if start_key is not None and entry.key < start_key:
                    continue
                self._env.charge_cpu(category, self._env.cpu.branch_step)
                yield entry

    def overlaps(self, smallest: bytes, largest: bytes) -> bool:
        """Whether this table's key range intersects ``[smallest, largest]``."""
        return not (self.largest_key < smallest or largest < self.smallest_key)
