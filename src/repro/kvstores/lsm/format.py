"""On-disk entry and value-list encodings shared across the LSM store.

An *entry* is ``(key, seq, kind, value)``.  Kinds:

* ``PUT`` — a full value,
* ``MERGE`` — one merge operand (an appended list element),
* ``DELETE`` — a tombstone.

List values (the Append access pattern) are represented as a
concatenation of length-prefixed elements, so merging operands is pure
byte concatenation — exactly RocksDB's ``StringAppendOperator`` shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serde.codec import decode_bytes, decode_varint, encode_bytes, encode_varint

KIND_PUT = 0
KIND_MERGE = 1
KIND_DELETE = 2

_KIND_NAMES = {KIND_PUT: "PUT", KIND_MERGE: "MERGE", KIND_DELETE: "DELETE"}


@dataclass(frozen=True)
class Entry:
    """One versioned KV record inside a memtable or SSTable."""

    key: bytes
    seq: int
    kind: int
    value: bytes = b""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Entry({self.key!r}, seq={self.seq}, {_KIND_NAMES[self.kind]}, {len(self.value)}B)"


def encode_entry(entry: Entry) -> bytes:
    """Serialize one entry."""
    return (
        encode_bytes(entry.key)
        + encode_varint(entry.seq)
        + bytes([entry.kind])
        + encode_bytes(entry.value)
    )


def decode_entry(data: bytes, offset: int = 0) -> tuple[Entry, int]:
    """Deserialize one entry; returns ``(entry, next_offset)``."""
    key, pos = decode_bytes(data, offset)
    seq, pos = decode_varint(data, pos)
    kind = data[pos]
    pos += 1
    value, pos = decode_bytes(data, pos)
    return Entry(key, seq, kind, value), pos


def pack_list_value(elements: list[bytes]) -> bytes:
    """Concatenate length-prefixed list elements (merged Append value)."""
    out = bytearray()
    for element in elements:
        out += encode_bytes(element)
    return bytes(out)


def unpack_list_value(data: bytes) -> list[bytes]:
    """Split a merged Append value back into its elements."""
    elements: list[bytes] = []
    pos = 0
    while pos < len(data):
        element, pos = decode_bytes(data, pos)
        elements.append(element)
    return elements


def merge_entries(entries: list[Entry]) -> Entry | None:
    """Collapse all versions of one key into a single logical entry.

    ``entries`` must be newest-first.  Returns the surviving entry (a PUT
    with merged value, or a DELETE tombstone) or None if the key never
    existed.  Merge operands newer than a base PUT are appended after it;
    operands above a DELETE (or with no base) form a bare list.
    """
    if not entries:
        return None
    operands: list[bytes] = []  # newest-first merge operands
    for entry in entries:
        if entry.kind == KIND_MERGE:
            operands.append(entry.value)
            continue
        if entry.kind == KIND_DELETE:
            if not operands:
                return Entry(entries[0].key, entries[0].seq, KIND_DELETE)
            base = b""
        else:
            base = entry.value
        merged = base + b"".join(reversed(operands))
        return Entry(entries[0].key, entries[0].seq, KIND_PUT, merged)
    # Only merge operands, no base record.
    merged = b"".join(reversed(operands))
    return Entry(entries[0].key, entries[0].seq, KIND_PUT, merged)
