"""Sorted-merge machinery for LSM compaction and scans.

The k-way merge here is the CPU cost center the paper attributes RocksDB's
append-workload overhead to (§2.2: lazy merging defers work into
compactions that must re-sort and re-merge every operand).  Every heap pop
charges a merge step and key comparisons.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator

from repro.kvstores.lsm.format import (
    KIND_DELETE,
    KIND_MERGE,
    KIND_PUT,
    Entry,
    merge_entries,
)
from repro.simenv import SimEnv


def merge_sorted_entries(
    env: SimEnv, sources: list[Iterable[Entry]], category: str
) -> Iterator[Entry]:
    """K-way merge of key-sorted entry streams into one stream.

    Within a key, newer sources must be listed first; output preserves
    newest-first order per key via the source index tiebreak.
    """
    heap: list[tuple[bytes, int, int, Entry, Iterator[Entry]]] = []
    for src_idx, source in enumerate(sources):
        iterator = iter(source)
        first = next(iterator, None)
        if first is not None:
            heap.append((first.key, -first.seq, src_idx, first, iterator))
    heapq.heapify(heap)
    n_sources = max(1, len(heap))
    while heap:
        key, neg_seq, src_idx, entry, iterator = heapq.heappop(heap)
        env.charge_cpu(
            category,
            env.cpu.merge_per_entry + env.cpu.sorted_search(n_sources),
        )
        yield entry
        nxt = next(iterator, None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.key, -nxt.seq, src_idx, nxt, iterator))


def collapse_versions(
    env: SimEnv,
    merged: Iterable[Entry],
    category: str,
    bottom_level: bool,
) -> Iterator[Entry]:
    """Collapse per-key version runs from a newest-first merged stream.

    * a PUT/DELETE base absorbs every newer merge operand into one PUT,
    * bare merge operands (no base in the inputs) stay a single combined
      MERGE entry — deeper levels may still hold the base,
    * tombstones are dropped only at the bottom level.
    """
    run: list[Entry] = []
    current_key: bytes | None = None

    def emit(run: list[Entry]) -> Iterator[Entry]:
        env.charge_cpu(category, len(run) * env.cpu.merge_per_entry)
        has_base = any(e.kind in (KIND_PUT, KIND_DELETE) for e in run)
        if has_base:
            collapsed = merge_entries(run)
            if collapsed is None:
                return
            if collapsed.kind == KIND_DELETE and bottom_level:
                return
            yield collapsed
        else:
            # newest-first operands -> oldest-first on disk order
            combined = b"".join(e.value for e in reversed(run))
            yield Entry(run[0].key, run[0].seq, KIND_MERGE, combined)

    for entry in merged:
        if entry.key != current_key:
            if run:
                yield from emit(run)
            run = []
            current_key = entry.key
        run.append(entry)
    if run:
        yield from emit(run)
