"""LRU block cache shared by all SSTables of one LSM store instance."""

from __future__ import annotations

from collections import OrderedDict

from repro.kvstores.lsm.format import Entry
from repro.simenv import CAT_STORE_READ, SimEnv


class BlockCache:
    """Caches decoded data blocks keyed by ``(file, offset)``.

    A hit costs one hash probe; a miss is paid by the caller (device read
    plus block decode) and inserted with :meth:`insert`.
    """

    def __init__(self, env: SimEnv, capacity_bytes: int) -> None:
        self._env = env
        self._capacity = capacity_bytes
        self._blocks: OrderedDict[tuple[str, int], tuple[list[Entry], int]] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, file_name: str, offset: int) -> list[Entry] | None:
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.hash_probe)
        cached = self._blocks.get((file_name, offset))
        if cached is None:
            self.misses += 1
            self._env.bump("lsm_cache_misses")
            return None
        self.hits += 1
        self._env.bump("lsm_cache_hits")
        self._blocks.move_to_end((file_name, offset))
        return cached[0]

    def insert(self, file_name: str, offset: int, entries: list[Entry], size: int) -> None:
        key = (file_name, offset)
        if key in self._blocks:
            _, old_size = self._blocks.pop(key)
            self._used -= old_size
        self._blocks[key] = (entries, size)
        self._used += size
        while self._used > self._capacity and self._blocks:
            _, (_, evicted_size) = self._blocks.popitem(last=False)
            self._used -= evicted_size

    def drop_file(self, file_name: str) -> None:
        """Remove all blocks of a deleted SSTable."""
        stale = [key for key in self._blocks if key[0] == file_name]
        for key in stale:
            _, size = self._blocks.pop(key)
            self._used -= size
