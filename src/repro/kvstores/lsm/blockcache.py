"""LRU block cache shared by all SSTables of one LSM store instance."""

from __future__ import annotations

from collections import OrderedDict

from repro.kvstores.lsm.format import Entry
from repro.simenv import CAT_STORE_READ, SimEnv

# Upper bound on simultaneously pinned blocks.  Pins protect blocks a
# demand read is about to touch from being evicted by prefetch inserts;
# the bound keeps the worst-case cache overflow (all-but-pinned evicted,
# pinned blocks retained past capacity) small and predictable.
DEFAULT_MAX_PINS = 32


class BlockCache:
    """Caches decoded data blocks keyed by ``(file, offset)``.

    A hit costs one hash probe; a miss is paid by the caller (device read
    plus block decode) and inserted with :meth:`insert`.

    Prefetch integration: blocks inserted with ``prefetched=True`` carry
    their background completion time; the first demand :meth:`get` settles
    them with the attached executor (residual wait), and eviction or file
    drop before any demand read counts them wasted.  :meth:`pin` marks
    blocks an imminent demand read will touch so prefetch inserts can
    never evict them first (bounded by ``max_pins``).
    """

    def __init__(
        self, env: SimEnv, capacity_bytes: int, max_pins: int = DEFAULT_MAX_PINS
    ) -> None:
        self._env = env
        self._capacity = capacity_bytes
        self._blocks: OrderedDict[tuple[str, int], tuple[list[Entry], int]] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.prefetcher = None  # optional repro.prefetch.PrefetchExecutor
        self._prefetched: dict[tuple[str, int], float] = {}  # key -> completion
        self._pinned: set[tuple[str, int]] = set()
        self._max_pins = max_pins

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, file_name: str, offset: int) -> list[Entry] | None:
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.hash_probe)
        key = (file_name, offset)
        cached = self._blocks.get(key)
        if cached is None:
            self.misses += 1
            self._env.bump("lsm_cache_misses")
            return None
        self.hits += 1
        self._env.bump("lsm_cache_hits")
        self._blocks.move_to_end(key)
        self._pinned.discard(key)
        completion = self._prefetched.pop(key, None)
        if completion is not None and self.prefetcher is not None:
            # First demand read of a prefetched block: pay the residual.
            self.prefetcher.consume(completion)
        return cached[0]

    def peek(self, file_name: str, offset: int) -> bool:
        """Presence test that leaves LRU order and hit/miss stats alone."""
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.hash_probe)
        return (file_name, offset) in self._blocks

    def pin(self, file_name: str, offset: int) -> bool:
        """Protect a cached block from eviction until its demand read.

        Returns False when the block is absent or the pin budget is
        exhausted (the hint is then simply not protected).
        """
        key = (file_name, offset)
        if key not in self._blocks or len(self._pinned) >= self._max_pins:
            return False
        self._pinned.add(key)
        return True

    def insert(
        self,
        file_name: str,
        offset: int,
        entries: list[Entry],
        size: int,
        prefetched: bool = False,
        completion: float = 0.0,
    ) -> None:
        key = (file_name, offset)
        if key in self._blocks:
            _, old_size = self._blocks.pop(key)
            self._used -= old_size
            self._settle_wasted(key)
        self._blocks[key] = (entries, size)
        self._used += size
        if prefetched:
            self._prefetched[key] = completion
        while self._used > self._capacity and self._blocks:
            victim = None
            for candidate in self._blocks:  # oldest first
                if candidate not in self._pinned:
                    victim = candidate
                    break
            if victim is None:
                break  # everything left is pinned: bounded overflow
            _, evicted_size = self._blocks.pop(victim)
            self._used -= evicted_size
            self._settle_wasted(victim)

    def drop_file(self, file_name: str) -> None:
        """Remove all blocks of a deleted SSTable."""
        stale = [key for key in self._blocks if key[0] == file_name]
        for key in stale:
            _, size = self._blocks.pop(key)
            self._used -= size
            self._pinned.discard(key)
            self._settle_wasted(key)

    def _settle_wasted(self, key: tuple[str, int]) -> None:
        """A prefetched block left the cache without any demand read."""
        completion = self._prefetched.pop(key, None)
        if completion is not None and self.prefetcher is not None:
            self.prefetcher.waste()
