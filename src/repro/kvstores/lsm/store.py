"""The leveled LSM store (RocksDB-style baseline)."""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import StoreClosedError
from repro.kvstores.api import CAP_BATCH, CAP_SNAPSHOT, KVStore
from repro.kvstores.lsm.blockcache import BlockCache
from repro.kvstores.lsm.compaction import collapse_versions, merge_sorted_entries
from repro.kvstores.lsm.format import (
    KIND_DELETE,
    KIND_MERGE,
    KIND_PUT,
    Entry,
    merge_entries,
)
from repro.kvstores.lsm.memtable import MemTable
from repro.kvstores.lsm.sstable import SSTableReader, SSTableWriter
from repro.serde.codec import encode_bytes
from repro.simenv import (
    CAT_COMPACTION,
    CAT_STORE_READ,
    CAT_STORE_WRITE,
    SimEnv,
)
from repro.storage.filesystem import SimFileSystem


@dataclass(frozen=True)
class LsmConfig:
    """Tuning knobs, mirroring the RocksDB options the paper configures.

    Attributes:
        write_buffer_bytes: memtable flush threshold (paper: 2048 MB at
            400 GB scale; default here is proportionally scaled down).
        block_bytes: data block size.
        block_cache_bytes: LRU cache capacity.
        l0_compaction_trigger: number of L0 files that triggers L0->L1.
        level1_bytes: target size of L1; deeper levels multiply.
        level_multiplier: growth factor between levels.
        max_file_bytes: compaction output file size.
        bloom_bits_per_key: bloom filter density.
        max_levels: number of levels below L0.
    """

    write_buffer_bytes: int = 4 << 20
    block_bytes: int = 4096
    block_cache_bytes: int = 16 << 20
    l0_compaction_trigger: int = 4
    level1_bytes: int = 32 << 20
    level_multiplier: int = 10
    max_file_bytes: int = 8 << 20
    bloom_bits_per_key: int = 10
    max_levels: int = 5


class LsmStore(KVStore):
    """A leveled LSM tree over the simulated filesystem.

    Supports RocksDB-style merge operands for the Append pattern, prefix
    scans with full multi-level merge, and leveled compaction; reads go
    memtable -> L0 (newest first) -> L1..Ln with bloom filters and a block
    cache on the way.
    """

    capabilities = frozenset({CAP_SNAPSHOT, CAP_BATCH})

    def __init__(
        self,
        env: SimEnv,
        fs: SimFileSystem,
        name: str = "lsm",
        config: LsmConfig | None = None,
    ) -> None:
        self._env = env
        self._fs = fs
        self._name = name
        self._config = config or LsmConfig()
        self._memtable = MemTable(env)
        self._cache = BlockCache(env, self._config.block_cache_bytes)
        # levels[0] is newest-first and may overlap; deeper levels are
        # key-ordered and disjoint.
        self._levels: list[list[SSTableReader]] = [[] for _ in range(self._config.max_levels + 1)]
        self._seq = 0
        self._file_counter = 0
        self._closed = False
        self.compaction_count = 0
        # Semantic prefetching (attached via enable_prefetch): background
        # readahead slabs for scans, keyed (file, slab_offset) ->
        # (raw_bytes, completion_time); point-read blocks go straight
        # into the block cache as prefetched inserts.
        self._prefetcher = None
        self._slabs: dict[tuple[str, int], tuple[bytes, float]] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"LSM store {self._name} is closed")

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _next_file_name(self) -> str:
        self._file_counter += 1
        return f"{self._name}/sst_{self._file_counter:08d}.sst"

    def _maybe_flush(self) -> None:
        if self._memtable.approximate_bytes >= self._config.write_buffer_bytes:
            self.flush()

    # ------------------------------------------------------------------
    # KVStore API
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._memtable.put(key, self._next_seq(), value)
        self._maybe_flush()

    def append(self, key: bytes, value: bytes) -> None:
        """Lazy merge: record an operand without reading the old value.

        The operand is framed so that merged values remain parseable with
        :func:`repro.kvstores.lsm.format.unpack_list_value` after pure
        byte concatenation (RocksDB string-append semantics).
        """
        self._check_open()
        self._memtable.merge(key, self._next_seq(), encode_bytes(value))
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        self._check_open()
        self._memtable.delete(key, self._next_seq())
        self._maybe_flush()

    def multi_append(self, entries: list[tuple[bytes, bytes]]) -> None:
        """Native batch merge: one open check, per-entry charges unchanged.

        The per-entry memtable flush check stays — SSTable boundaries and
        compaction charges must not depend on batch size.
        """
        self._check_open()
        for key, value in entries:
            self._memtable.merge(key, self._next_seq(), encode_bytes(value))
            self._maybe_flush()

    def multi_get(self, keys: list[bytes]) -> list[bytes | None]:
        """Batched point reads (one open check; per-key read path unchanged)."""
        self._check_open()
        get = self.get
        return [get(key) for key in keys]

    def apply_write_batch(self, ops: list[tuple[str, bytes, bytes | None]]) -> None:
        """Atomic staged commit: every op lands in the memtable before the
        single flush-threshold check at the end.

        This is what makes a :class:`~repro.kvstores.api.WriteBatch`
        tear-safe on this store: the batch reaches the device only as part
        of one whole-memtable flush, never as a partial-prefix write — a
        torn write can only hit a flush that carries the entire batch (and
        a failed flush leaves all ops readable from the memtable).  The
        price is slightly later flush timing than the per-op path, which
        is the documented write_batch contract.
        """
        self._check_open()
        for op, key, value in ops:
            if op == "put":
                self._memtable.put(key, self._next_seq(), value)
            elif op == "append":
                self._memtable.merge(key, self._next_seq(), encode_bytes(value))
            elif op == "delete":
                self._memtable.delete(key, self._next_seq())
            else:
                raise ValueError(f"unknown write-batch op {op!r}")
        self._maybe_flush()

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        versions: list[Entry] = []
        for entry in self._memtable.get_versions(key):
            versions.append(entry)
            if entry.kind != KIND_MERGE:
                return self._finish_get(versions)
        for table in self._levels[0]:
            for entry in table.get_versions(key, self._cache):
                versions.append(entry)
                if entry.kind != KIND_MERGE:
                    return self._finish_get(versions)
        for level in self._levels[1:]:
            table = self._find_level_file(level, key)
            if table is None:
                continue
            for entry in table.get_versions(key, self._cache):
                versions.append(entry)
                if entry.kind != KIND_MERGE:
                    return self._finish_get(versions)
        return self._finish_get(versions)

    def _finish_get(self, versions: list[Entry]) -> bytes | None:
        if not versions:
            return None
        self._env.charge_cpu(CAT_STORE_READ, len(versions) * self._env.cpu.merge_per_entry)
        merged = merge_entries(versions)
        if merged is None or merged.kind == KIND_DELETE:
            return None
        return merged.value

    def _find_level_file(self, level: list[SSTableReader], key: bytes) -> SSTableReader | None:
        if not level:
            return None
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.sorted_search(len(level)))
        idx = bisect_right([t.smallest_key for t in level], key) - 1
        if idx < 0:
            return None
        table = level[idx]
        return table if key <= table.largest_key else None

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Merged, key-ordered iteration over all live keys with ``prefix``."""
        self._check_open()
        pf = self if self._prefetcher is not None else None
        sources: list = [
            [e for e in self._memtable.iter_sorted() if e.key.startswith(prefix) or e.key > prefix]
        ]
        for table in self._levels[0]:
            sources.append(table.iter_entries(start_key=prefix, prefetcher=pf))
        for level in self._levels[1:]:
            if not level:
                continue

            def level_iter(tables: list[SSTableReader] = level) -> Iterator[Entry]:
                start = max(0, bisect_right([t.smallest_key for t in tables], prefix) - 1)
                for table in tables[start:]:
                    if table.largest_key < prefix:
                        continue
                    yield from table.iter_entries(start_key=prefix, prefetcher=pf)

            sources.append(level_iter())
        merged = merge_sorted_entries(self._env, sources, CAT_STORE_READ)
        run: list[Entry] = []
        current: bytes | None = None
        for entry in merged:
            if not entry.key.startswith(prefix):
                if entry.key > prefix:
                    break
                continue
            if entry.key != current:
                yield from self._emit_scan_run(run)
                run = []
                current = entry.key
            run.append(entry)
        yield from self._emit_scan_run(run)

    def _emit_scan_run(self, run: list[Entry]) -> Iterator[tuple[bytes, bytes]]:
        if not run:
            return
        self._env.charge_cpu(CAT_STORE_READ, len(run) * self._env.cpu.merge_per_entry)
        merged = merge_entries(run)
        if merged is not None and merged.kind == KIND_PUT:
            yield merged.key, merged.value

    # ------------------------------------------------------------------
    # flush & compaction
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush the memtable to a new L0 SSTable and maybe compact."""
        self._check_open()
        if self._memtable.is_empty():
            return
        writer = SSTableWriter(
            self._env,
            self._fs,
            self._next_file_name(),
            block_bytes=self._config.block_bytes,
            bloom_bits_per_key=self._config.bloom_bits_per_key,
            category=CAT_STORE_WRITE,
        )
        reader = writer.write(self._memtable.iter_sorted())
        if reader is not None:
            self._levels[0].insert(0, reader)
        self._memtable = MemTable(self._env)
        self._maybe_compact()

    def _level_target_bytes(self, level_idx: int) -> int:
        return self._config.level1_bytes * (self._config.level_multiplier ** (level_idx - 1))

    def _maybe_compact(self) -> None:
        if len(self._levels[0]) >= self._config.l0_compaction_trigger:
            self._compact_level0()
        for level_idx in range(1, len(self._levels) - 1):
            level_bytes = sum(t.file_size() for t in self._levels[level_idx])
            if level_bytes > self._level_target_bytes(level_idx):
                self._compact_level(level_idx)

    def _compact_level0(self) -> None:
        inputs = list(self._levels[0])
        if not inputs:
            return
        smallest = min(t.smallest_key for t in inputs)
        largest = max(t.largest_key for t in inputs)
        overlapping = [t for t in self._levels[1] if t.overlaps(smallest, largest)]
        self._run_compaction(inputs, overlapping, output_level=1)
        self._levels[0] = []
        self._levels[1] = sorted(
            [t for t in self._levels[1] if t not in overlapping] + self._new_outputs,
            key=lambda t: t.smallest_key,
        )
        self._drop_tables(inputs + overlapping)

    def _compact_level(self, level_idx: int) -> None:
        level = self._levels[level_idx]
        if not level:
            return
        # Pick the oldest (first) file; merge into the next level.
        victim = level[0]
        overlapping = [
            t for t in self._levels[level_idx + 1]
            if t.overlaps(victim.smallest_key, victim.largest_key)
        ]
        self._run_compaction([victim], overlapping, output_level=level_idx + 1)
        self._levels[level_idx] = level[1:]
        self._levels[level_idx + 1] = sorted(
            [t for t in self._levels[level_idx + 1] if t not in overlapping] + self._new_outputs,
            key=lambda t: t.smallest_key,
        )
        self._drop_tables([victim] + overlapping)

    def _run_compaction(
        self,
        upper: list[SSTableReader],
        lower: list[SSTableReader],
        output_level: int,
    ) -> None:
        """Merge ``upper`` (newer) and ``lower`` tables into ``output_level``."""
        self.compaction_count += 1
        self._env.bump("lsm_compactions")
        bottom = output_level >= len(self._levels) - 1 or all(
            not self._levels[deeper] for deeper in range(output_level + 1, len(self._levels))
        )
        sources = [t.iter_entries(category=CAT_COMPACTION) for t in upper]
        sources += [t.iter_entries(category=CAT_COMPACTION) for t in lower]
        merged = merge_sorted_entries(self._env, sources, CAT_COMPACTION)
        collapsed = collapse_versions(self._env, merged, CAT_COMPACTION, bottom_level=bottom)

        self._new_outputs: list[SSTableReader] = []
        batch: list[Entry] = []
        batch_bytes = 0
        last_key: bytes | None = None

        def flush_batch() -> None:
            nonlocal batch, batch_bytes
            if not batch:
                return
            writer = SSTableWriter(
                self._env,
                self._fs,
                self._next_file_name(),
                block_bytes=self._config.block_bytes,
                bloom_bits_per_key=self._config.bloom_bits_per_key,
                category=CAT_COMPACTION,
            )
            reader = writer.write(batch)
            if reader is not None:
                self._new_outputs.append(reader)
            batch = []
            batch_bytes = 0

        for entry in collapsed:
            if batch_bytes >= self._config.max_file_bytes and entry.key != last_key:
                flush_batch()
            batch.append(entry)
            batch_bytes += len(entry.key) + len(entry.value) + 16
            last_key = entry.key
        flush_batch()

    def _drop_tables(self, tables: list[SSTableReader]) -> None:
        for table in tables:
            self._cache.drop_file(table.name)
            if self._slabs:
                stale = [k for k in self._slabs if k[0] == table.name]
                for k in stale:
                    del self._slabs[k]
                if stale and self._prefetcher is not None:
                    self._prefetcher.waste(len(stale))
            if self._fs.exists(table.name):
                self._fs.delete(table.name)

    # ------------------------------------------------------------------
    # semantic prefetching
    # ------------------------------------------------------------------
    def enable_prefetch(self, executor) -> None:
        """Attach a :class:`repro.prefetch.PrefetchExecutor`."""
        self._prefetcher = executor
        self._cache.prefetcher = executor

    @property
    def prefetch_active(self) -> bool:
        return self._prefetcher is not None

    def prefetch_scan(self, prefix: bytes) -> None:
        """Pre-read the readahead slabs a prefix scan will stream through.

        Issues exactly the ``(offset, length)`` reads
        :meth:`~repro.kvstores.lsm.sstable.SSTableReader.iter_entries`
        would make (via ``plan_slabs``) for every table the scan touches;
        the demand scan later consumes them through :meth:`take_slab`,
        paying only residual wait.  Tables compacted away before the scan
        invalidate their slabs (counted wasted in ``_drop_tables``).
        """
        ex = self._prefetcher
        if ex is None or self._closed:
            return
        for table in self._scan_tables(prefix):
            for slab_start, length in table.plan_slabs(
                start_key=prefix, stop_prefix=prefix
            ):
                if (table.name, slab_start) in self._slabs:
                    continue
                if not ex.has_budget():
                    return
                issued = ex.capture(
                    lambda t=table, s=slab_start, n=length: self._fs.read(
                        t.name, s, n, category=CAT_STORE_READ
                    )
                )
                if issued is None:
                    continue
                ex.register()
                self._slabs[(table.name, slab_start)] = issued

    def _scan_tables(self, prefix: bytes) -> Iterator[SSTableReader]:
        """The tables :meth:`scan_prefix` would open for ``prefix``."""
        yield from self._levels[0]
        for level in self._levels[1:]:
            if not level:
                continue
            start = max(0, bisect_right([t.smallest_key for t in level], prefix) - 1)
            for table in level[start:]:
                if table.largest_key < prefix:
                    continue
                yield table

    def take_slab(self, name: str, slab_start: int, length: int) -> bytes | None:
        """Hand a prefetched slab to the demand scan, settling accounting."""
        entry = self._slabs.pop((name, slab_start), None)
        if entry is None:
            return None
        data, completion = entry
        ex = self._prefetcher
        if len(data) != length:
            if ex is not None:
                ex.waste()
            return None
        if ex is not None:
            ex.consume(completion)
        return data

    def prefetch_get(self, keys: list[bytes]) -> None:
        """Pre-load the data blocks point reads of ``keys`` would touch.

        Blocks land in the block cache as prefetched inserts; candidate
        blocks already cached are pinned instead, so prefetch inserts
        cannot evict a block the imminent demand read needs.
        """
        ex = self._prefetcher
        if ex is None or self._closed:
            return
        for key in keys:
            if not ex.has_budget():
                return
            issued = ex.capture(lambda k=key: self._prefetch_point(k))
            if issued is None:
                continue
            blocks, completion = issued
            for table_name, block_off, entries, block_len in blocks:
                if not ex.has_budget():
                    break
                ex.register()
                self._cache.insert(
                    table_name, block_off, entries, block_len,
                    prefetched=True, completion=completion,
                )

    def _prefetch_point(self, key: bytes) -> list[tuple[str, int, list[Entry], int]]:
        """Locate and read the blocks a point :meth:`get` of ``key`` would
        load.  Runs under prefetch capture; mirrors the demand walk —
        memtable, L0 newest-first, then one candidate file per level —
        and stops where the demand read would (first non-merge version).
        """
        for entry in self._memtable.get_versions(key):
            if entry.kind != KIND_MERGE:
                return []  # resolves in memory; no disk read coming
        blocks: list[tuple[str, int, list[Entry], int]] = []

        def visit(table: SSTableReader) -> bool:
            """Load/pin the candidate block; True if the walk stops here."""
            idx = table.locate_block(key)
            if idx is None:
                return False
            block_off, block_len = table.block_span(idx)
            if self._cache.peek(table.name, block_off):
                self._cache.pin(table.name, block_off)
                return False  # contents unknown without a demand get
            entries = table._decode_block_raw(idx)
            blocks.append((table.name, block_off, entries, block_len))
            return any(
                e.key == key and e.kind != KIND_MERGE for e in entries
            )

        for table in self._levels[0]:
            if visit(table):
                return blocks
        for level in self._levels[1:]:
            table = self._find_level_file(level, key)
            if table is not None and visit(table):
                return blocks
        return blocks

    # ------------------------------------------------------------------
    # checkpointing (§8): Flink forces the memtable to disk before the
    # snapshot so that SSTables can be uploaded asynchronously.
    # ------------------------------------------------------------------
    def snapshot(self, base=None, upload_env=None):
        """Checkpoint the store; incremental against ``base`` if given.

        SSTables are immutable, so an incremental checkpoint (Flink's
        incremental checkpointing on RocksDB, which the paper §8 points
        to) only copies files absent from the base snapshot and records
        the names it re-uses — recovery resolves them from the base.
        """
        from repro.snapshot import StoreSnapshot, copy_files_out, pack_meta, seal_snapshot

        self._check_open()
        self.flush()
        live_names = [[t.name for t in level] for level in self._levels]
        if base is not None:
            # Only new files are read and uploaded; unchanged SSTables are
            # referenced by name (no local read — the incremental saving).
            current = self._fs.list_files(self._name + "/")
            reused = [name for name in current if name in base.files]
            files = {
                name: self._fs.read(name)
                for name in current
                if name not in base.files
            }
        else:
            reused = []
            files = copy_files_out(self._env, self._fs, self._name + "/", upload_env)
        meta = pack_meta(
            self._env,
            {
                "seq": self._seq,
                "file_counter": self._file_counter,
                "levels": live_names,
                "reused": reused,
            },
        )
        return seal_snapshot(self._env, StoreSnapshot("lsm", meta, files))

    def restore(self, snapshot, base=None) -> None:
        """Load a (possibly incremental) snapshot into this fresh store."""
        from repro.errors import StoreRestoreError
        from repro.snapshot import copy_files_in, unpack_meta, verify_snapshot

        self._check_open()
        verify_snapshot(self._env, snapshot)
        if self._memtable.entry_count or any(self._levels):
            raise StoreRestoreError(f"restore into non-empty lsm store {self._name}")
        state = unpack_meta(self._env, snapshot.meta)
        files = dict(snapshot.files)
        for name in state.get("reused", []):
            if name in files:
                continue
            if base is None or name not in base.files:
                raise StoreClosedError(
                    f"incremental snapshot references {name} but no base "
                    "snapshot provides it"
                )
            files[name] = base.files[name]
        copy_files_in(self._env, self._fs, files)
        self._seq = state["seq"]
        self._file_counter = state["file_counter"]
        # Re-open every SSTable: recovery pays the footer/index/bloom reads.
        self._levels = [
            [SSTableReader(self._env, self._fs, name) for name in level]
            for level in state["levels"]
        ]
        self._memtable = MemTable(self._env)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._slabs.clear()
        for level in self._levels:
            level.clear()

    @property
    def memory_bytes(self) -> int:
        pinned = sum(t.memory_bytes for level in self._levels for t in level)
        return self._memtable.approximate_bytes + self._cache.used_bytes + pinned

    @property
    def disk_bytes(self) -> int:
        return self._fs.total_bytes(self._name + "/")

    @property
    def level_file_counts(self) -> list[int]:
        return [len(level) for level in self._levels]
