"""A simple double-hashing bloom filter for SSTable key membership."""

from __future__ import annotations

import hashlib


def _hash_pair(key: bytes) -> tuple[int, int]:
    digest = hashlib.blake2b(key, digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little") | 1,  # odd step avoids cycles
    )


class BloomFilter:
    """Fixed-size bloom filter with Kirsch-Mitzenmacher double hashing."""

    def __init__(self, n_keys: int, bits_per_key: int = 10) -> None:
        # Round up to a whole byte so serialization round-trips exactly
        # (n_bits is recovered from the byte length on load).
        self._n_bits = (max(64, n_keys * bits_per_key) + 7) // 8 * 8
        self._n_hashes = max(1, min(12, int(round(bits_per_key * 0.69))))
        self._bits = bytearray((self._n_bits + 7) // 8)

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    @property
    def n_hashes(self) -> int:
        return self._n_hashes

    def add(self, key: bytes) -> None:
        h1, h2 = _hash_pair(key)
        for i in range(self._n_hashes):
            bit = (h1 + i * h2) % self._n_bits
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def may_contain(self, key: bytes) -> bool:
        h1, h2 = _hash_pair(key)
        for i in range(self._n_hashes):
            bit = (h1 + i * h2) % self._n_bits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def to_bytes(self) -> bytes:
        return bytes([self._n_hashes]) + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        filt = cls.__new__(cls)
        filt._n_hashes = data[0]
        filt._bits = bytearray(data[1:])
        filt._n_bits = len(filt._bits) * 8
        return filt
