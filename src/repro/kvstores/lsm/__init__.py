"""A RocksDB-style log-structured merge-tree KV store.

Reproduces the behaviours of the paper's RocksDB baseline:

* a sorted memtable with **merge operands** (lazy append merging §2.2:
  "RocksDB adopts lazy merging, which first appends values to log files
  without reading existing values that then get merged later"),
* SSTables with data blocks, an index block and a bloom filter,
* an LRU block cache,
* L0 + leveled compaction whose sorted merges are the CPU overhead the
  paper's Figure 4/10 attribute RocksDB's losses to,
* key-sorted search (memtable -> L0 files -> levels) whose comparison
  costs explain the RMW losses against hash stores.
"""

from repro.kvstores.lsm.store import LsmConfig, LsmStore

__all__ = ["LsmStore", "LsmConfig"]
