"""Sorted memtable with merge-operand support.

Physically a dict of per-key entry lists plus a lazily sorted key view;
cost-wise each insert charges the O(log n) comparisons a skiplist would
perform, so the simulated CPU profile matches RocksDB's memtable while the
Python implementation stays O(1) per insert.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.kvstores.lsm.format import (
    KIND_DELETE,
    KIND_MERGE,
    KIND_PUT,
    Entry,
    merge_entries,
)
from repro.simenv import CAT_STORE_READ, CAT_STORE_WRITE, SimEnv

_ENTRY_OVERHEAD = 32  # per-entry node/pointer overhead in the skiplist


class MemTable:
    """An in-memory, logically sorted write buffer of versioned entries."""

    def __init__(self, env: SimEnv) -> None:
        self._env = env
        self._entries: dict[bytes, list[Entry]] = {}  # newest last per key
        self._bytes = 0
        self._count = 0

    @property
    def approximate_bytes(self) -> int:
        return self._bytes

    @property
    def entry_count(self) -> int:
        return self._count

    def __len__(self) -> int:
        return self._count

    def _charge_insert(self, entry: Entry) -> None:
        # A skiplist insert costs ~log2(n) comparisons plus node allocation.
        self._env.charge_cpu(
            CAT_STORE_WRITE,
            self._env.cpu.sorted_search(max(1, self._count)) + self._env.cpu.allocation,
        )
        self._bytes += len(entry.key) + len(entry.value) + _ENTRY_OVERHEAD

    def add(self, entry: Entry) -> None:
        self._charge_insert(entry)
        self._entries.setdefault(entry.key, []).append(entry)
        self._count += 1

    def put(self, key: bytes, seq: int, value: bytes) -> None:
        self.add(Entry(key, seq, KIND_PUT, value))

    def merge(self, key: bytes, seq: int, operand: bytes) -> None:
        self.add(Entry(key, seq, KIND_MERGE, operand))

    def delete(self, key: bytes, seq: int) -> None:
        self.add(Entry(key, seq, KIND_DELETE))

    def get_versions(self, key: bytes) -> list[Entry]:
        """All versions of ``key``, newest first (search cost charged)."""
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.sorted_search(max(1, self._count)))
        versions = self._entries.get(key, [])
        return list(reversed(versions))

    def get_merged(self, key: bytes) -> Entry | None:
        """The collapsed view of ``key`` within this memtable only."""
        versions = self.get_versions(key)
        if not versions:
            return None
        self._env.charge_cpu(CAT_STORE_READ, len(versions) * self._env.cpu.merge_per_entry)
        return merge_entries(versions)

    def iter_sorted(self) -> Iterator[Entry]:
        """All entries in (key, seq-descending) order, for flush/scan.

        Sorting cost was already charged per insert (skiplist model), so
        iteration charges only the per-entry visit cost.
        """
        for key in sorted(self._entries):
            versions = self._entries[key]
            self._env.charge_cpu(CAT_STORE_READ, len(versions) * self._env.cpu.branch_step)
            yield from reversed(versions)

    def is_empty(self) -> bool:
        return self._count == 0
