"""Faster-style hash KV store over a hybrid log."""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import StoreClosedError
from repro.kvstores.api import CAP_BATCH, CAP_SNAPSHOT, KVStore
from repro.serde.codec import decode_bytes, encode_bytes
from repro.simenv import (
    CAT_COMPACTION,
    CAT_STORE_READ,
    CAT_STORE_WRITE,
    CAT_SYNC,
    SimEnv,
)
from repro.storage.filesystem import SimFileSystem


@dataclass(frozen=True)
class FasterConfig:
    """Tuning knobs, mirroring the Faster options the paper configures.

    Attributes:
        memory_log_bytes: size of the in-memory portion of the hybrid log
            (paper: 1 GB per instance; scale down proportionally).
        mutable_fraction: fraction of the in-memory region that allows
            in-place updates.
        spill_chunk_bytes: how much of the log head is spilled to disk at
            once when memory fills.
        max_space_amplification: log-size/live-size ratio that triggers a
            log compaction.
    """

    memory_log_bytes: int = 4 << 20
    mutable_fraction: float = 0.9
    spill_chunk_bytes: int = 1 << 20
    max_space_amplification: float = 3.0


@dataclass
class _Record:
    key: bytes
    value: bytes
    address: int
    length: int  # serialized length in the log


class FasterStore(KVStore):
    """Hash index + hybrid log (mutable / read-only / on-disk regions).

    Addresses are byte offsets in one logical append-only log.  Records at
    ``address >= head`` live in the in-memory region; older records have
    been spilled to the on-disk log file at the same offsets (the disk file
    holds the exact serialized bytes).  Record objects retain their value
    as a decode cache — every logical disk access is still charged a random
    read of the record's bytes.

    Every public operation pays one epoch-protection synchronization
    charge, as Faster's thread-safe design requires even under a
    single-threaded SPE worker (§6.3).
    """

    capabilities = frozenset({CAP_SNAPSHOT, CAP_BATCH})
    # Appends are read-copy-update: they read the old value list first,
    # so write-key hints let the prefetcher hide that read's I/O.
    append_reads = True

    def __init__(
        self,
        env: SimEnv,
        fs: SimFileSystem,
        name: str = "faster",
        config: FasterConfig | None = None,
    ) -> None:
        self._env = env
        self._fs = fs
        self._name = name
        self._config = config or FasterConfig()
        self._index: dict[bytes, _Record] = {}
        self._resident: deque[_Record] = deque()  # in-memory records, oldest first
        self._tail = 0  # next log address
        self._head = 0  # lowest in-memory address
        self._memory_bytes_used = 0
        self._live_bytes = 0
        self._dead_resident: set[int] = set()  # deleted addresses awaiting spill skip
        self._disk_generation = 0
        self._closed = False
        self.compaction_count = 0
        # Semantic prefetching: raw spilled-record bytes keyed by
        # (disk_generation, address) -> (raw, completion_time).  The
        # generation key makes compaction invalidation trivial — a new
        # generation renumbers every address.
        self._prefetcher = None
        self._prefetched: dict[tuple[int, int], tuple[bytes, float]] = {}

    # ------------------------------------------------------------------
    @property
    def _log_file(self) -> str:
        return f"{self._name}/hlog_{self._disk_generation:04d}.log"

    @property
    def _readonly_boundary(self) -> int:
        mutable = int(self._config.memory_log_bytes * self._config.mutable_fraction)
        return max(self._head, self._tail - mutable)

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"Faster store {self._name} is closed")

    def _charge_sync(self) -> None:
        self._env.charge_cpu(CAT_SYNC, self._env.cpu.sync_op)

    @staticmethod
    def _record_length(key: bytes, value: bytes) -> int:
        return len(encode_bytes(key)) + len(encode_bytes(value))

    # ------------------------------------------------------------------
    # hybrid log management
    # ------------------------------------------------------------------
    def _append_record(self, key: bytes, value: bytes, category: str) -> _Record:
        length = self._record_length(key, value)
        record = _Record(key, value, self._tail, length)
        self._resident.append(record)
        self._tail += length
        self._memory_bytes_used += length
        self._env.charge_cpu(
            category, self._env.cpu.allocation + length * self._env.cpu.copy_per_byte
        )
        if self._memory_bytes_used > self._config.memory_log_bytes:
            self._spill_head(category)
        return record

    def _spill_head(self, category: str) -> None:
        """Flush the oldest in-memory records to the on-disk log."""
        payload = bytearray()
        spilled_through = self._head
        while self._resident and len(payload) < self._config.spill_chunk_bytes:
            record = self._resident[0]
            if record.address + record.length > self._readonly_boundary:
                break  # never spill the mutable region
            self._resident.popleft()
            # Deleted records still occupy their log range; their bytes are
            # written so that on-disk offsets stay equal to addresses.
            payload += encode_bytes(record.key)
            payload += encode_bytes(record.value)
            spilled_through = record.address + record.length
            self._memory_bytes_used -= record.length
            self._dead_resident.discard(record.address)
        if not payload:
            return
        self._fs.append(self._log_file, bytes(payload), category=category)
        self._head = spilled_through

    def _read_record_value(self, record: _Record, category: str) -> bytes:
        """Fetch a record's value; charges a random disk read if spilled."""
        if record.address >= self._head:
            self._env.charge_cpu(category, len(record.value) * self._env.cpu.copy_per_byte)
            return record.value
        if self._prefetched:
            hit = self._prefetched.pop(
                (self._disk_generation, record.address), None
            )
            if hit is not None:
                raw, completion = hit
                if self._prefetcher is not None:
                    self._prefetcher.consume(completion)
                _key, pos = decode_bytes(raw, 0)
                value, _pos = decode_bytes(raw, pos)
                return value
        raw = self._fs.read(self._log_file, record.address, record.length, category=category)
        key, pos = decode_bytes(raw, 0)
        value, _pos = decode_bytes(raw, pos)
        return value

    # ------------------------------------------------------------------
    # semantic prefetching
    # ------------------------------------------------------------------
    def enable_prefetch(self, executor) -> None:
        """Attach a :class:`repro.prefetch.PrefetchExecutor`."""
        self._prefetcher = executor

    @property
    def prefetch_active(self) -> bool:
        return self._prefetcher is not None

    def prefetch_get(self, keys: list[bytes]) -> None:
        """Pre-read the spilled log records point accesses will fetch.

        Only records below ``head`` (the on-disk read region) are worth
        prefetching; resident records are free.  Applies equally to
        imminent gets and to RCU appends, which read the old value.
        """
        ex = self._prefetcher
        if ex is None or self._closed:
            return
        for key in keys:
            record = self._index.get(key)
            if record is None or record.address >= self._head:
                continue
            pkey = (self._disk_generation, record.address)
            if pkey in self._prefetched:
                continue
            if not ex.has_budget():
                return
            issued = ex.capture(
                lambda r=record: self._fs.read(
                    self._log_file, r.address, r.length, category=CAT_STORE_READ
                )
            )
            if issued is None:
                continue
            ex.register()
            self._prefetched[pkey] = issued

    def prefetch_scan(self, prefix: bytes) -> None:
        """A prefix scan probes every matching key; pre-read the spilled ones."""
        if self._prefetcher is None or self._closed:
            return
        spilled = [
            key
            for key, record in self._index.items()
            if record.address < self._head and key.startswith(prefix)
        ]
        spilled.sort()
        self.prefetch_get(spilled)

    def _drop_prefetched(self, record: _Record) -> None:
        """A record was superseded/deleted before its prefetch was used."""
        if not self._prefetched:
            return
        entry = self._prefetched.pop(
            (self._disk_generation, record.address), None
        )
        if entry is not None and self._prefetcher is not None:
            self._prefetcher.waste()

    # ------------------------------------------------------------------
    # KVStore API
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self._charge_sync()
        self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.hash_probe)
        record = self._index.get(key)
        if record is None:
            return None
        return self._read_record_value(record, CAT_STORE_READ)

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._charge_sync()
        self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.hash_probe)
        record = self._index.get(key)
        if (
            record is not None
            and record.address >= self._readonly_boundary
            and len(value) == len(record.value)
        ):
            # Equal length keeps spilled file offsets aligned to addresses.
            # In-place update in the mutable region (Faster's RMW strength).
            self._env.charge_cpu(CAT_STORE_WRITE, len(value) * self._env.cpu.copy_per_byte)
            record.value = value
            return
        new_length = self._record_length(key, value)
        self._live_bytes += new_length - (record.length if record is not None else 0)
        if record is not None:
            self._drop_prefetched(record)
        self._index[key] = self._append_record(key, value, CAT_STORE_WRITE)
        self._maybe_compact()

    def append(self, key: bytes, value: bytes) -> None:
        """Read-copy-update of the whole value list (Faster's weakness).

        Faster has no merge operator: appending to a list means reading
        every previously appended element and writing the grown list back
        — the I/O amplification of §2.2 that makes append workloads time
        out in Figures 4, 8 and 9.
        """
        self._check_open()
        self._append_one(key, value)

    def _append_one(self, key: bytes, value: bytes) -> None:
        self._charge_sync()
        self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.hash_probe)
        record = self._index.get(key)
        old = b"" if record is None else self._read_record_value(record, CAT_STORE_WRITE)
        new_value = old + encode_bytes(value)
        new_length = self._record_length(key, new_value)
        self._live_bytes += new_length - (record.length if record is not None else 0)
        self._index[key] = self._append_record(key, new_value, CAT_STORE_WRITE)
        self._maybe_compact()

    def multi_append(self, entries: list[tuple[bytes, bytes]]) -> None:
        """Native batch append: one open check, one loop.

        Every entry still pays its own epoch-protection sync and its
        read-copy-update — Faster's per-record amplification is the
        modelled behaviour and must not shrink with batch size.
        """
        self._check_open()
        append_one = self._append_one
        for key, value in entries:
            append_one(key, value)

    def multi_get(self, keys: list[bytes]) -> list[bytes | None]:
        """Batched point reads (one open check; per-key charges unchanged)."""
        self._check_open()
        out: list[bytes | None] = []
        charge = self._env.charge_cpu
        probe = self._env.cpu.hash_probe
        index_get = self._index.get
        for key in keys:
            self._charge_sync()
            charge(CAT_STORE_READ, probe)
            record = index_get(key)
            out.append(
                None if record is None
                else self._read_record_value(record, CAT_STORE_READ)
            )
        return out

    def apply_write_batch(self, ops: list[tuple[str, bytes, bytes | None]]) -> None:
        """Staged commit over the hybrid log.

        New records always land in the mutable tail region, which is never
        spilled — a mid-commit head spill only evicts *older* records, so
        the batch itself cannot reach the device as a partial prefix.
        """
        self._check_open()
        for op, key, value in ops:
            if op == "put":
                self.put(key, value)
            elif op == "append":
                self._append_one(key, value)
            elif op == "delete":
                self.delete(key)
            else:
                raise ValueError(f"unknown write-batch op {op!r}")

    def delete(self, key: bytes) -> None:
        self._check_open()
        self._charge_sync()
        self._env.charge_cpu(CAT_STORE_WRITE, self._env.cpu.hash_probe)
        record = self._index.pop(key, None)
        if record is not None:
            self._live_bytes -= record.length
            self._drop_prefetched(record)
            if record.address >= self._head:
                self._dead_resident.add(record.address)

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Unsorted store: scanning means probing every live key."""
        self._check_open()
        self._charge_sync()
        matches = []
        for key in self._index:
            self._env.charge_cpu(CAT_STORE_READ, self._env.cpu.key_compare)
            if key.startswith(prefix):
                matches.append(key)
        matches.sort()  # deterministic order for callers
        self._env.charge_cpu(
            CAT_STORE_READ,
            len(matches) * self._env.cpu.key_compare * max(1, len(matches)).bit_length(),
        )
        for key in matches:
            record = self._index.get(key)
            if record is None:
                continue
            yield key, self._read_record_value(record, CAT_STORE_READ)

    # ------------------------------------------------------------------
    # log compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        if self._live_bytes <= 0 or self._tail <= self._config.memory_log_bytes:
            return
        if self._tail / max(1, self._live_bytes) > self._config.max_space_amplification:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the log with only live records into a new generation."""
        self.compaction_count += 1
        self._env.bump("faster_compactions")
        if self._prefetched:
            # The generation bump renumbers every address: all in-flight
            # prefetches are stale.
            if self._prefetcher is not None:
                self._prefetcher.waste(len(self._prefetched))
            self._prefetched.clear()
        live = sorted(self._index.items(), key=lambda kv: kv[1].address)
        old_file = self._log_file
        old_head = self._head
        # Charge reads for spilled live records (sequential-ish batch read).
        spilled_bytes = sum(r.length for _k, r in live if r.address < old_head)
        if spilled_bytes and self._fs.exists(old_file):
            self._env.charge_cpu(CAT_COMPACTION, self._env.cpu.syscall)
            self._env.charge_read(spilled_bytes)
        self._disk_generation += 1
        self._resident = deque()
        self._dead_resident = set()
        self._tail = 0
        self._head = 0
        self._memory_bytes_used = 0
        self._live_bytes = 0
        for key, record in live:
            self._live_bytes += record.length
            self._index[key] = self._append_record(key, record.value, CAT_COMPACTION)
        if self._fs.exists(old_file):
            self._fs.delete(old_file)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._check_open()

    # ------------------------------------------------------------------
    # checkpointing (§8): index + resident tail captured in meta, the
    # spilled log file copied byte-exact.
    # ------------------------------------------------------------------
    def snapshot(self, upload_env=None):
        from repro.snapshot import StoreSnapshot, copy_files_out, pack_meta, seal_snapshot

        self._check_open()
        # Pickling index and resident records together preserves the
        # object identity between the two structures.
        meta = pack_meta(
            self._env,
            {
                "index": self._index,
                "resident": list(self._resident),
                "tail": self._tail,
                "head": self._head,
                "memory_bytes_used": self._memory_bytes_used,
                "live_bytes": self._live_bytes,
                "dead_resident": set(self._dead_resident),
                "disk_generation": self._disk_generation,
            },
        )
        files = copy_files_out(self._env, self._fs, self._name + "/", upload_env)
        return seal_snapshot(self._env, StoreSnapshot("faster", meta, files))

    def restore(self, snapshot) -> None:
        from repro.errors import StoreRestoreError
        from repro.snapshot import copy_files_in, unpack_meta, verify_snapshot

        self._check_open()
        verify_snapshot(self._env, snapshot)
        if self._index or self._resident:
            raise StoreRestoreError(f"restore into non-empty faster store {self._name}")
        copy_files_in(self._env, self._fs, snapshot.files)
        state = unpack_meta(self._env, snapshot.meta)
        self._index = state["index"]
        self._resident = deque(state["resident"])
        self._tail = state["tail"]
        self._head = state["head"]
        self._memory_bytes_used = state["memory_bytes_used"]
        self._live_bytes = state["live_bytes"]
        self._dead_resident = state["dead_resident"]
        self._disk_generation = state["disk_generation"]

    def close(self) -> None:
        self._closed = True
        self._index.clear()
        self._resident.clear()
        self._prefetched.clear()

    @property
    def memory_bytes(self) -> int:
        index_bytes = sum(len(k) + 48 for k in self._index)
        return self._memory_bytes_used + index_bytes

    @property
    def disk_bytes(self) -> int:
        return self._fs.total_bytes(self._name + "/")
