"""A Faster-style hash KV store with a hybrid log.

Reproduces the behaviours of the paper's Faster baseline:

* O(1) hash-index access with in-place updates in the mutable log region
  (why it beats RocksDB on RMW, §2.2),
* per-operation epoch-protection synchronization charges — the overhead
  FlowKV's single-threaded-by-design stores avoid (§6.3),
* read-copy-update appends that read and rewrite the *entire* value list
  on every ``Append()``, the I/O amplification that makes Faster time out
  on append patterns (Figures 4, 8 and 9),
* no ordered scans: prefix scans walk the whole index.
"""

from repro.kvstores.hashkv.store import FasterConfig, FasterStore

__all__ = ["FasterStore", "FasterConfig"]
