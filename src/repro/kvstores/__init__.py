"""State-store backends.

This package holds the generic KV-store interface used by the baselines,
plus the three baseline stores the paper evaluates against:

* :mod:`repro.kvstores.memory` — Flink-style heap state with a GC cost
  model and OOM failure,
* :mod:`repro.kvstores.lsm` — a RocksDB-style LSM tree (memtable, merge
  operator, SSTables, bloom filters, block cache, leveled compaction),
* :mod:`repro.kvstores.hashkv` — a Faster-style hash store (hash index,
  hybrid log, in-place updates, epoch-synchronization charges).

The FlowKV stores themselves live in :mod:`repro.core`.
"""

from repro.kvstores.api import KVStore, WindowStateBackend

__all__ = ["KVStore", "WindowStateBackend"]
