"""Byte-level encoding helpers shared by all on-disk formats."""

from repro.serde.codec import (
    decode_bytes,
    decode_u32,
    decode_u64,
    decode_varint,
    encode_bytes,
    encode_u32,
    encode_u64,
    encode_varint,
)

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_bytes",
    "decode_bytes",
    "encode_u32",
    "decode_u32",
    "encode_u64",
    "decode_u64",
]
