"""Primitive codecs: varints, fixed-width integers, length-prefixed bytes.

These are the building blocks of every on-disk format in the package
(SSTable blocks, FlowKV data/index logs, hybrid-log records).  They are
pure functions over ``bytes`` — cost accounting happens at the store layer
which knows how many bytes it is encoding and why.
"""

from __future__ import annotations

import struct

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varint must be non-negative: {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 varint; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_bytes(payload: bytes) -> bytes:
    """Length-prefixed byte string."""
    return encode_varint(len(payload)) + payload


def decode_bytes(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode a length-prefixed byte string; returns ``(payload, next_offset)``."""
    length, pos = decode_varint(data, offset)
    end = pos + length
    if end > len(data):
        raise ValueError("truncated byte string")
    return bytes(data[pos:end]), end


def encode_u32(value: int) -> bytes:
    return _U32.pack(value)


def decode_u32(data: bytes, offset: int = 0) -> tuple[int, int]:
    return _U32.unpack_from(data, offset)[0], offset + 4


def encode_u64(value: int) -> bytes:
    return _U64.pack(value)


def decode_u64(data: bytes, offset: int = 0) -> tuple[int, int]:
    return _U64.unpack_from(data, offset)[0], offset + 8


def encode_i64(value: int) -> bytes:
    return _I64.pack(value)


def decode_i64(data: bytes, offset: int = 0) -> tuple[int, int]:
    return _I64.unpack_from(data, offset)[0], offset + 8
