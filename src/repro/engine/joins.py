"""Interval joins (§8, Join Operations).

The paper's windowed joins (Q8) fall out of window state naturally; it
names *interval joins* — ``right.ts in [left.ts + lower, left.ts + upper]``
per key — as the interesting extension.  Flink implements them with
per-key MapState buffers on both sides, cleaned up by watermark; this
operator does the same, holding the buffers as engine-managed state (the
horizon-bounded working set Flink would keep hot) and charging engine CPU
for probes and scans.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.model import StreamRecord
from repro.simenv import CAT_ENGINE, CAT_QUERY, SimEnv

Collector = Callable[[StreamRecord], None]

LEFT = "L"
RIGHT = "R"


@dataclass
class _SideBuffer:
    """Timestamp-sorted records of one side of one key."""

    entries: list[tuple[float, Any]] = field(default_factory=list)

    def add(self, timestamp: float, value: Any) -> None:
        insort(self.entries, (timestamp, value), key=lambda e: e[0])

    def range(self, low: float, high: float) -> list[tuple[float, Any]]:
        """Entries with ``low <= ts <= high``."""
        lo = bisect_left(self.entries, low, key=lambda e: e[0])
        hi = bisect_right(self.entries, high, key=lambda e: e[0])
        return self.entries[lo:hi]

    def expire_before(self, timestamp: float) -> int:
        """Drop entries with ``ts < timestamp``; returns how many."""
        cut = bisect_left(self.entries, timestamp, key=lambda e: e[0])
        if cut:
            del self.entries[:cut]
        return cut


@dataclass
class IntervalJoinOperator:
    """One physical instance of a keyed interval join.

    Inputs arrive tagged ``(side, value)`` where side is ``"L"``/``"R"``.
    For every new record the opposite buffer is probed for partners whose
    timestamps satisfy the interval; matches emit ``join_fn(left, right)``
    with the later timestamp.  Watermarks expire buffer entries that can
    no longer join anything.
    """

    lower: float
    upper: float
    join_fn: Callable[[Any, Any], Any]
    name: str = "interval_join"

    env: SimEnv = field(init=False, default=None)
    backend: Any = field(init=False, default=None)  # unused: state is engine-managed
    collector: Collector = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"interval lower {self.lower} > upper {self.upper}")
        self._left: dict[bytes, _SideBuffer] = {}
        self._right: dict[bytes, _SideBuffer] = {}
        self.results_emitted = 0

    def open(self, env: SimEnv, backend: Any, collector: Collector) -> None:
        self.env = env
        self.backend = backend
        self.collector = collector

    @property
    def memory_entries(self) -> int:
        return sum(len(b.entries) for b in self._left.values()) + sum(
            len(b.entries) for b in self._right.values()
        )

    # ------------------------------------------------------------------
    def process(self, record: StreamRecord) -> None:
        self.env.charge_cpu(CAT_ENGINE, self.env.cpu.function_call)
        side, value = record.value
        if side == LEFT:
            own, other = self._left, self._right
            low = record.timestamp + self.lower
            high = record.timestamp + self.upper
        elif side == RIGHT:
            own, other = self._right, self._left
            # right.ts in [left.ts + lower, left.ts + upper]  <=>
            # left.ts in [right.ts - upper, right.ts - lower]
            low = record.timestamp - self.upper
            high = record.timestamp - self.lower
        else:
            raise ValueError(f"interval join record without side tag: {record.value!r}")
        self.env.charge_cpu(CAT_ENGINE, 2 * self.env.cpu.hash_probe)
        partners = other.get(record.key)
        if partners is not None:
            matches = partners.range(low, high)
            self.env.charge_cpu(
                CAT_ENGINE,
                self.env.cpu.sorted_search(max(1, len(partners.entries)))
                + len(matches) * self.env.cpu.branch_step,
            )
            for partner_ts, partner_value in matches:
                self.env.charge_cpu(CAT_QUERY, self.env.cpu.function_call)
                if side == LEFT:
                    output = self.join_fn(value, partner_value)
                else:
                    output = self.join_fn(partner_value, value)
                self.results_emitted += 1
                self.collector(
                    StreamRecord(record.key, output, max(record.timestamp, partner_ts))
                )
        buffer = own.setdefault(record.key, _SideBuffer())
        buffer.add(record.timestamp, value)

    def on_watermark(self, watermark: float) -> None:
        """Expire entries that can no longer find a partner.

        A left record at ``ts`` can still match right records up to
        ``ts + upper``; once the watermark passes that, it is dead.
        Symmetrically for the right side.
        """
        left_cut = watermark - self.upper
        right_cut = watermark + self.lower
        for buffers, cut in ((self._left, left_cut), (self._right, right_cut)):
            dead_keys = []
            for key, buffer in buffers.items():
                expired = buffer.expire_before(cut)
                if expired:
                    self.env.charge_cpu(CAT_ENGINE, expired * self.env.cpu.branch_step)
                if not buffer.entries:
                    dead_keys.append(key)
            for key in dead_keys:
                del buffers[key]

    def finish(self) -> None:
        self._left.clear()
        self._right.clear()
