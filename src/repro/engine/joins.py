"""Interval joins (§8, Join Operations).

The paper's windowed joins (Q8) fall out of window state naturally; it
names *interval joins* — ``right.ts in [left.ts + lower, left.ts + upper]``
per key — as the interesting extension.  Flink implements them with
per-key MapState buffers on both sides, cleaned up by watermark; this
operator does the same, holding the buffers in a
:class:`JoinStateBackend` (the horizon-bounded working set Flink would
keep hot) and charging engine CPU for probes and scans.

The backend side makes join state a first-class citizen of the
key-group machinery: the per-key side buffers export/import along
key-group boundaries exactly like window state (``crc32 %
max_key_groups``), serialize one blob per (key, side) for measurable
transfer volume charged to the ``migration`` ledger, snapshot/restore
whole for legacy
checkpoints, and shard incrementally with
:class:`~repro.kvstores.api.KeyGroupDirtyTracker` dirty marking.
Dirty-tracking rule: *semantic* mutations mark — inserts, imports, and
watermark expiry (an expired group's checkpoint shard must be rewritten
or dropped, or a restore would resurrect dead entries) — while probes
(reads) do not.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.errors import StoreClosedError
from repro.kvstores.api import (
    CAP_BATCH,
    CAP_INCREMENTAL,
    CAP_RESCALE,
    CAP_SNAPSHOT,
    DEFAULT_MAX_KEY_GROUPS,
    KIND_JOIN_LEFT,
    KIND_JOIN_RIGHT,
    ExportedEntry,
    KeyGroupDirtyTracker,
    KeyGroupFn,
    StateExport,
)
from repro.model import PickleSerde, StreamRecord, Window
from repro.simenv import (
    CAT_CHANGELOG,
    CAT_ENGINE,
    CAT_MIGRATION,
    CAT_QUERY,
    CAT_RECOVERY,
    SimEnv,
)

Collector = Callable[[StreamRecord], None]

LEFT = "L"
RIGHT = "R"

# Join buffers have no window namespace; exported entries carry this
# sentinel so they pack into the same per-group shard rows as window
# state (the side lives in the entry kind, the timestamps in the values).
_JOIN_WINDOW = Window(0.0, 1.0)

_SIDE_KIND = {LEFT: KIND_JOIN_LEFT, RIGHT: KIND_JOIN_RIGHT}
_KIND_SIDE = {KIND_JOIN_LEFT: LEFT, KIND_JOIN_RIGHT: RIGHT}


@dataclass
class _SideBuffer:
    """Timestamp-sorted records of one side of one key."""

    entries: list[tuple[float, Any]] = field(default_factory=list)

    def add(self, timestamp: float, value: Any) -> None:
        insort(self.entries, (timestamp, value), key=lambda e: e[0])

    def range(self, low: float, high: float) -> list[tuple[float, Any]]:
        """Entries with ``low <= ts <= high``."""
        lo = bisect_left(self.entries, low, key=lambda e: e[0])
        hi = bisect_right(self.entries, high, key=lambda e: e[0])
        return self.entries[lo:hi]

    def expire_before(self, timestamp: float) -> int:
        """Drop entries with ``ts < timestamp``; returns how many."""
        cut = bisect_left(self.entries, timestamp, key=lambda e: e[0])
        if cut:
            del self.entries[:cut]
        return cut


def _estimate_bytes(value: Any) -> int:
    """Cheap payload-size estimate (mirrors the heap backend's sizer)."""
    if hasattr(value, "payload_bytes"):
        return int(value.payload_bytes)
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, tuple):
        return 8 + sum(_estimate_bytes(v) for v in value)
    return 64


class JoinStateBackend:
    """Keyed interval-join buffer state with the backend protocol surface.

    Holds both sides' per-key :class:`_SideBuffer`\\ s and implements the
    same optional-capability API as the window-state backends, so the
    rescale executors (stop-the-world and live), the sharded checkpointer
    and the recovery restore path move join state through the exact code
    paths window state takes:

    * ``export_state`` / ``import_state`` — destructive key-group
      migration, per-entry serialization charged to ``migration``;
    * ``export_group_state`` — non-destructive sharded checkpoint reads,
      charged to ``recovery``;
    * ``snapshot`` / ``restore`` — sealed whole-store capture for
      non-incremental epochs;
    * ``dirty_groups`` / ``clear_dirty`` — inserts, imports *and
      watermark expiry* mark a key-group dirty (probes do not), so a
      delta epoch re-shards exactly the groups whose buffers changed and
      an expired-empty group's stale shard ref is dropped.
    """

    capabilities = frozenset({CAP_SNAPSHOT, CAP_RESCALE, CAP_INCREMENTAL, CAP_BATCH})

    def __init__(self, env: SimEnv, max_key_groups: int = DEFAULT_MAX_KEY_GROUPS) -> None:
        self._env = env
        self._sides: dict[str, dict[bytes, _SideBuffer]] = {LEFT: {}, RIGHT: {}}
        self._dirty = KeyGroupDirtyTracker(max_key_groups)
        self._closed = False
        self._log_serde = PickleSerde()

    def attach_changelog(self, writer) -> None:
        """Route semantic mutations into a changelog writer (replication)."""
        self._dirty.changelog = writer

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("join state backend is closed")

    # --- operator-facing buffer access ---------------------------------
    def buffer(self, side: str, key: bytes) -> _SideBuffer | None:
        """The side buffer of ``key`` (a probe — does not dirty)."""
        return self._sides[side].get(key)

    # --- semantic prefetching ------------------------------------------
    @property
    def prefetch_enabled(self) -> bool:
        """Join buffers are memory-resident: nothing to prefetch (yet).

        The hint surface exists so a spilling join backend can overlap
        buffer loads with probe compute the way window state does.
        """
        return False

    def prefetch_probe_keys(self, side: str, keys: list[bytes]) -> None:
        """Advisory hint: ``keys`` on ``side`` are about to be probed."""

    def insert(self, side: str, key: bytes, timestamp: float, value: Any) -> None:
        self._check_open()
        self._sides[side].setdefault(key, _SideBuffer()).add(timestamp, value)
        if self._dirty.logging:
            # Buffers live as raw objects; the (ts, value) pair is only
            # serialized for the changelog while replication is on.
            data = self._log_serde.serialize((timestamp, value))
            self._env.charge_cpu(CAT_CHANGELOG, self._env.cpu.serde(len(data)))
            self._dirty.log_append(key, _JOIN_WINDOW, _SIDE_KIND[side], (data,))
        else:
            self._dirty.mark_key(key)

    def multi_insert(
        self, entries: list[tuple[str, bytes, float, Any]]
    ) -> None:
        """Batch insert: one open-check, then :meth:`insert`'s body per
        entry.  Changelog/dirty charges stay per-entry identical; hot
        attributes are hoisted to amortize real Python overhead only."""
        self._check_open()
        sides = self._sides
        dirty = self._dirty
        logging = dirty.logging
        serialize = self._log_serde.serialize
        charge = self._env.charge_cpu
        serde_cost = self._env.cpu.serde
        for side, key, timestamp, value in entries:
            sides[side].setdefault(key, _SideBuffer()).add(timestamp, value)
            if logging:
                data = serialize((timestamp, value))
                charge(CAT_CHANGELOG, serde_cost(len(data)))
                dirty.log_append(key, _JOIN_WINDOW, _SIDE_KIND[side], (data,))
            else:
                dirty.mark_key(key)

    def expire(self, left_cut: float, right_cut: float) -> int:
        """Drop entries no watermark-respecting record can join anymore.

        Expiry is a semantic mutation: every key-group that lost entries
        is marked dirty so the next delta epoch rewrites (or, once empty,
        drops) its shard — otherwise a restore or checkpoint-seeded
        rescale would resurrect the expired entries.
        """
        self._check_open()
        total = 0
        for side, cut in ((LEFT, left_cut), (RIGHT, right_cut)):
            buffers = self._sides[side]
            dead_keys = []
            for key, buffer in buffers.items():
                expired = buffer.expire_before(cut)
                if expired:
                    total += expired
                    self._dirty.log_trim(key, _SIDE_KIND[side], cut)
                if not buffer.entries:
                    dead_keys.append(key)
            for key in dead_keys:
                del buffers[key]
        return total

    def drop_all(self) -> None:
        """Discard every buffer (end-of-input teardown, no dirty marks)."""
        self._sides[LEFT].clear()
        self._sides[RIGHT].clear()

    # --- accounting -----------------------------------------------------
    @property
    def memory_entries(self) -> int:
        return sum(
            len(buffer.entries)
            for buffers in self._sides.values()
            for buffer in buffers.values()
        )

    @property
    def memory_bytes(self) -> int:
        return sum(
            len(key) + sum(16 + _estimate_bytes(value) for _ts, value in buffer.entries)
            for buffers in self._sides.values()
            for key, buffer in buffers.items()
        )

    # --- incremental checkpointing --------------------------------------
    @property
    def checkpoint_key_groups(self) -> int:
        """Group-space resolution of dirty tracking and checkpoint shards."""
        return self._dirty.max_key_groups

    def dirty_groups(self) -> frozenset[int]:
        return self._dirty.groups()

    def clear_dirty(self) -> None:
        self._dirty.clear()

    # --- checkpointing (whole-store) -------------------------------------
    def snapshot(self):
        """Sealed capture of both sides' buffers (non-incremental epochs)."""
        from repro.snapshot import StoreSnapshot, pack_meta, seal_snapshot

        self._check_open()
        meta = pack_meta(
            self._env,
            {
                side: {key: list(buffer.entries) for key, buffer in buffers.items()}
                for side, buffers in self._sides.items()
            },
        )
        return seal_snapshot(self._env, StoreSnapshot("join", meta))

    def restore(self, snapshot) -> None:
        from repro.errors import StoreRestoreError
        from repro.snapshot import unpack_meta, verify_snapshot

        self._check_open()
        verify_snapshot(self._env, snapshot)
        if self._sides[LEFT] or self._sides[RIGHT]:
            raise StoreRestoreError("restore into non-empty join state backend")
        state = unpack_meta(self._env, snapshot.meta)
        for side in (LEFT, RIGHT):
            self._sides[side] = {
                key: _SideBuffer(list(entries)) for key, entries in state[side].items()
            }

    # --- elastic rescaling (key-group migration) -------------------------
    def export_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> StateExport:
        """Serialize & evict the moved key-groups' buffers (both sides).

        One :class:`ExportedEntry` per (key, side): the entry kind
        carries the side and the single value blob is the buffer's
        ``(ts, value)`` list serialized whole (timestamp order
        preserved, pickle memoization shared across entries), so
        transfer volume is measurable and charged to ``migration``.
        Vacated keys are marked dirty — the old owner's next delta epoch
        must drop their stale shards.
        """
        self._check_open()
        serde = PickleSerde()
        export = StateExport()
        for side in (LEFT, RIGHT):
            buffers = self._sides[side]
            for key in [k for k in buffers if key_group_of(k) in key_groups]:
                buffer = buffers.pop(key)
                data = serde.serialize(buffer.entries)
                self._env.charge_cpu(CAT_MIGRATION, self._env.cpu.serde(len(data)))
                self._dirty.log_remove(key, _JOIN_WINDOW, _SIDE_KIND[side])
                export.entries.append(
                    ExportedEntry(key, _JOIN_WINDOW, _SIDE_KIND[side], [data])
                )
        return export

    def export_group_state(
        self, key_groups: set[int] | None, key_group_of: KeyGroupFn
    ) -> StateExport:
        """Serialize the selected key-groups *without evicting them* —
        the sharded checkpointer's read path (charged as recovery).
        ``None`` means every group (a full snapshot epoch)."""
        self._check_open()
        serde = PickleSerde()
        export = StateExport()
        for side in (LEFT, RIGHT):
            for key, buffer in self._sides[side].items():
                if key_groups is not None and key_group_of(key) not in key_groups:
                    continue
                self._env.charge_cpu(CAT_RECOVERY, self._env.cpu.hash_probe)
                data = serde.serialize(buffer.entries)
                self._env.charge_cpu(CAT_RECOVERY, self._env.cpu.serde(len(data)))
                export.entries.append(
                    ExportedEntry(key, _JOIN_WINDOW, _SIDE_KIND[side], [data])
                )
        return export

    def import_state(self, export: StateExport) -> None:
        self._check_open()
        serde = PickleSerde()
        for entry in export.entries:
            side = _KIND_SIDE.get(entry.kind)
            if side is None:
                raise ValueError(f"not a join state entry kind: {entry.kind!r}")
            self._dirty.log_merge(entry.key, entry.window, entry.kind, entry.values)
            buffers = self._sides[side]
            buffer = buffers.get(entry.key)
            decoded: list[tuple[float, Any]] = []
            for data in entry.values:
                self._env.charge_cpu(CAT_MIGRATION, self._env.cpu.serde(len(data)))
                decoded.extend(serde.deserialize(data))
            if buffer is None:
                # Exported in timestamp order; lands sorted as-is.
                buffers[entry.key] = _SideBuffer(decoded)
            else:
                for timestamp, value in decoded:
                    buffer.add(timestamp, value)

    # --- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        self._check_open()

    def close(self) -> None:
        self._closed = True
        self._sides[LEFT].clear()
        self._sides[RIGHT].clear()


@dataclass
class IntervalJoinOperator:
    """One physical instance of a keyed interval join.

    Inputs arrive tagged ``(side, value)`` where side is ``"L"``/``"R"``.
    For every new record the opposite buffer is probed for partners whose
    timestamps satisfy the interval; matches emit ``join_fn(left, right)``
    with the later timestamp.  Watermarks expire buffer entries that can
    no longer join anything.

    State lives in a :class:`JoinStateBackend` (self-created on ``open``
    when none is supplied), which carries the export/import, snapshot and
    dirty-tracking surface the rescale and recovery subsystems drive.
    """

    lower: float
    upper: float
    join_fn: Callable[[Any, Any], Any]
    name: str = "interval_join"

    env: SimEnv = field(init=False, default=None)
    backend: JoinStateBackend = field(init=False, default=None)
    collector: Collector = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"interval lower {self.lower} > upper {self.upper}")
        self.results_emitted = 0

    def open(self, env: SimEnv, backend: JoinStateBackend | None, collector: Collector) -> None:
        self.env = env
        self.backend = backend if backend is not None else JoinStateBackend(env)
        self.collector = collector

    @property
    def memory_entries(self) -> int:
        return self.backend.memory_entries if self.backend is not None else 0

    # ------------------------------------------------------------------
    def process(self, record: StreamRecord) -> None:
        self.env.charge_cpu(CAT_ENGINE, self.env.cpu.function_call)
        side, value = record.value
        if side == LEFT:
            other = RIGHT
            low = record.timestamp + self.lower
            high = record.timestamp + self.upper
        elif side == RIGHT:
            other = LEFT
            # right.ts in [left.ts + lower, left.ts + upper]  <=>
            # left.ts in [right.ts - upper, right.ts - lower]
            low = record.timestamp - self.upper
            high = record.timestamp - self.lower
        else:
            raise ValueError(f"interval join record without side tag: {record.value!r}")
        self.env.charge_cpu(CAT_ENGINE, 2 * self.env.cpu.hash_probe)
        partners = self.backend.buffer(other, record.key)
        if partners is not None:
            matches = partners.range(low, high)
            self.env.charge_cpu(
                CAT_ENGINE,
                self.env.cpu.sorted_search(max(1, len(partners.entries)))
                + len(matches) * self.env.cpu.branch_step,
            )
            for partner_ts, partner_value in matches:
                self.env.charge_cpu(CAT_QUERY, self.env.cpu.function_call)
                if side == LEFT:
                    output = self.join_fn(value, partner_value)
                else:
                    output = self.join_fn(partner_value, value)
                self.results_emitted += 1
                self.collector(
                    StreamRecord(record.key, output, max(record.timestamp, partner_ts))
                )
        self.backend.insert(side, record.key, record.timestamp, value)

    def process_batch(self, records: list[StreamRecord]) -> None:
        """Batch entry point — a strict per-record loop.

        Probe-then-insert ordering *is* the join semantics (a record must
        not see same-batch partners before they are inserted in arrival
        order), so the interval join takes no intra-batch shortcuts; the
        batch path only saves the engine's per-record dispatch above.

        With a prefetch-capable backend the batch's probe keys are
        hinted up front (each record probes the *opposite* side buffer of
        its key), overlapping buffer loads with the per-record compute.
        """
        if getattr(self.backend, "prefetch_enabled", False):
            probes: dict[str, list[bytes]] = {LEFT: [], RIGHT: []}
            seen: set[tuple[str, bytes]] = set()
            for record in records:
                side = record.value[0]
                other = RIGHT if side == LEFT else LEFT
                if (other, record.key) not in seen:
                    seen.add((other, record.key))
                    probes[other].append(record.key)
            for side, keys in probes.items():
                if keys:
                    self.backend.prefetch_probe_keys(side, keys)
        process = self.process
        for record in records:
            process(record)

    def on_watermark(self, watermark: float) -> None:
        """Expire entries that can no longer find a partner.

        A left record at ``ts`` can still match right records up to
        ``ts + upper``; once the watermark passes that, it is dead.
        Symmetrically for the right side.
        """
        expired = self.backend.expire(watermark - self.upper, watermark + self.lower)
        if expired:
            self.env.charge_cpu(CAT_ENGINE, expired * self.env.cpu.branch_step)

    # ------------------------------------------------------------------
    # rescale / checkpoint protocol (the keyed state is all in the
    # backend; the operator itself carries no per-key metadata)
    # ------------------------------------------------------------------
    def export_keyed_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> dict:
        """Keyed operator metadata of the moved groups — none for joins;
        the canonical empty shape keeps the migration splitters generic."""
        return {
            "sessions": {},
            "window_keys": [],
            "count_state": {},
            "pending_aligned": set(),
            "max_timestamp": float("-inf"),
        }

    def import_keyed_state(self, state: dict) -> None:
        """Nothing to merge: join state moves entirely via the backend."""

    def checkpoint_state(self) -> dict:
        return {"results_emitted": self.results_emitted}

    def restore_checkpoint_state(self, state: dict) -> None:
        self.results_emitted = state["results_emitted"]

    def finish(self) -> None:
        self.backend.drop_all()
