"""Window assigners (the paper's window functions, §2.1).

Each assigner maps a tuple timestamp to the set of windows it belongs to
and declares its :class:`~repro.core.patterns.WindowKind`, from which
FlowKV derives read alignment and the ETT predictor (§3.1, §4.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.ett import (
    CountWindowPredictor,
    EttPredictor,
    KnownBoundaryPredictor,
    SessionGapPredictor,
)
from repro.core.patterns import WindowKind
from repro.model import GLOBAL_WINDOW, Window


class WindowAssigner(ABC):
    """Assigns tuples to windows."""

    kind: WindowKind

    @abstractmethod
    def assign(self, timestamp: float) -> list[Window]:
        """Windows the tuple at ``timestamp`` belongs to.

        Session assigners return the raw per-tuple window
        ``[t, t + gap)``; merging happens in the operator.
        """

    @property
    def merging(self) -> bool:
        """Whether assigned windows must be merged per key (sessions)."""
        return False

    def make_predictor(self) -> EttPredictor:
        """The ETT predictor FlowKV maps to this window function (§4.2)."""
        return KnownBoundaryPredictor()

    def max_windows_per_tuple(self) -> int:
        """How many windows one tuple can be replicated into."""
        return 1

    def next_trigger(self, timestamp: float) -> float | None:
        """The earliest window-end boundary strictly after ``timestamp``.

        Aligned assigners derive this from their watermark grid;
        assigners whose triggers depend on data (sessions, counts,
        custom) return ``None``.  The operator uses it as a cheap
        prefetch-hint gate: until the max event timestamp crosses this
        boundary, no new trigger can have become inevitable, so the
        timer scan is skipped entirely.
        """
        return None


class TumblingWindowAssigner(WindowAssigner):
    """Fixed windows of ``size`` seconds (aligned)."""

    kind = WindowKind.FIXED

    def __init__(self, size: float) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive: {size}")
        self.size = float(size)

    def assign(self, timestamp: float) -> list[Window]:
        start = (timestamp // self.size) * self.size
        # Floating-point floor-division can land one bucket off
        # (1.0 // 0.1 == 9.0); nudge until the window truly contains ts.
        if timestamp >= start + self.size:
            start += self.size
        elif timestamp < start:
            start -= self.size
        return [Window(max(0.0, start), start + self.size)]

    def next_trigger(self, timestamp: float) -> float | None:
        end = ((timestamp // self.size) + 1.0) * self.size
        while end <= timestamp:
            end += self.size
        return end


class SlidingWindowAssigner(WindowAssigner):
    """Sliding windows of ``size`` every ``slide`` seconds (aligned).

    A tuple is replicated into ``ceil(size / slide)`` windows (§2.1:
    "if a tuple is assigned to two or more windows SPEs replicate the
    tuple and store each of the replicated tuples separately").
    """

    kind = WindowKind.SLIDING

    def __init__(self, size: float, slide: float) -> None:
        if size <= 0 or slide <= 0:
            raise ValueError(f"size and slide must be positive: {size}, {slide}")
        if slide > size:
            raise ValueError(f"slide {slide} must not exceed size {size}")
        self.size = float(size)
        self.slide = float(slide)

    def assign(self, timestamp: float) -> list[Window]:
        last_start = (timestamp // self.slide) * self.slide
        # Same floating-point nudge as the tumbling assigner.
        if timestamp >= last_start + self.slide:
            last_start += self.slide
        elif timestamp < last_start:
            last_start -= self.slide
        windows = []
        start = last_start
        while start > timestamp - self.size:
            # Clamp at 0: event time is non-negative, so the truncated
            # first windows group exactly the same tuples.
            windows.append(Window(max(0.0, start), start + self.size))
            start -= self.slide
        return windows

    def max_windows_per_tuple(self) -> int:
        return int(-(-self.size // self.slide))

    def next_trigger(self, timestamp: float) -> float | None:
        # Window ends sit on the slide grid shifted by the size.
        end = ((timestamp - self.size) // self.slide + 1.0) * self.slide + self.size
        while end <= timestamp:
            end += self.slide
        return end


class SessionWindowAssigner(WindowAssigner):
    """Per-key session windows delimited by ``gap`` seconds of inactivity."""

    kind = WindowKind.SESSION

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise ValueError(f"session gap must be positive: {gap}")
        self.gap = float(gap)

    def assign(self, timestamp: float) -> list[Window]:
        return [Window(timestamp, timestamp + self.gap)]

    @property
    def merging(self) -> bool:
        return True

    def make_predictor(self) -> EttPredictor:
        return SessionGapPredictor(self.gap)


class GlobalWindowAssigner(WindowAssigner):
    """One window covering the whole stream (Q12); triggers at stream end."""

    kind = WindowKind.GLOBAL

    def assign(self, timestamp: float) -> list[Window]:
        return [GLOBAL_WINDOW]


class CustomWindowAssigner(WindowAssigner):
    """A user-defined window function (§8, Custom Window Operations).

    FlowKV cannot see inside user code, so by default custom windows get
    the covering Unaligned-Read pattern and no ETT prediction (frequent
    prefetch misses).  The paper's remedy is user hints, supported here:

    * ``aligned_hint=True`` — the @AlignedRead-style annotation: windows
      of all keys trigger together, enabling the AAR store,
    * ``ett_fn(window, timestamp, current_ett)`` — a user-defined
      trigger-time estimator that re-enables predictive batch read.

    ``assign_fn`` maps a timestamp to a list of windows whose end time is
    their event-time trigger.
    """

    kind = WindowKind.CUSTOM

    def __init__(
        self,
        assign_fn,
        aligned_hint: bool | None = None,
        ett_fn=None,
    ) -> None:
        self._assign_fn = assign_fn
        self.aligned_hint = aligned_hint
        self._ett_fn = ett_fn

    def assign(self, timestamp: float) -> list[Window]:
        windows = self._assign_fn(timestamp)
        if not windows:
            raise ValueError(f"custom assigner returned no windows for t={timestamp}")
        return list(windows)

    def make_predictor(self) -> EttPredictor:
        from repro.core.ett import CallablePredictor

        if self._ett_fn is not None:
            return CallablePredictor(self._ett_fn)
        if self.aligned_hint:
            return KnownBoundaryPredictor()
        return CountWindowPredictor()

    def max_windows_per_tuple(self) -> int:
        return 4  # conservative default for replication estimates


class CountWindowAssigner(WindowAssigner):
    """Per-key windows of ``count`` tuples (unaligned, unpredictable ETT).

    The operator tracks per-key counters and synthesizes window
    boundaries from the window ordinal.
    """

    kind = WindowKind.COUNT

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        self.count = int(count)

    def assign(self, timestamp: float) -> list[Window]:
        raise NotImplementedError(
            "count windows are assigned by the operator from per-key counters"
        )

    def make_predictor(self) -> EttPredictor:
        return CountWindowPredictor()
