"""State-backend glue between window operators and KV stores.

:class:`GenericKVBackend` adapts any byte-oriented :class:`KVStore`
(the LSM and hash-KV baselines) to the window-state interface the way
Flink's RocksDB backend does: composite ``window || key`` keys, list state
via merge/append, aligned triggers via prefix scans, serialization on
every access.  FlowKV and the heap backend implement the interface
natively.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.core.patterns import StorePattern, WindowKind, determine_pattern
from repro.kvstores.api import (
    CAP_BATCH,
    CAP_INCREMENTAL,
    CAP_RESCALE,
    CAP_SNAPSHOT,
    KIND_AGG,
    KIND_LIST,
    ExportedEntry,
    KeyGroupDirtyTracker,
    KeyGroupFn,
    KVStore,
    StateExport,
    WindowStateBackend,
    composite_key,
    split_composite_key,
)
from repro.kvstores.lsm.format import pack_list_value, unpack_list_value
from repro.model import PickleSerde, Serde, Window
from repro.simenv import CAT_MIGRATION, CAT_RECOVERY, CAT_SERDE, SimEnv
from repro.storage.filesystem import SimFileSystem


@dataclass(frozen=True)
class OperatorInfo:
    """What a backend factory gets to know about a window operator.

    This is the information FlowKV extracts from function signatures at
    application launch (§3.1): whether aggregation is incremental and
    which window-function family is used — plus the §8 user hints for
    custom window functions (read-alignment annotation and a user ETT
    predictor).
    """

    name: str
    incremental: bool
    window_kind: WindowKind
    session_gap: float | None = None
    aligned_hint: bool | None = None
    ett_predictor: Any = None  # EttPredictor from the window assigner
    # Per-instance budget of in-flight background prefetches; 0 disables
    # prefetching entirely (no hints computed, no charges issued).
    prefetch_depth: int = 0

    @property
    def effective_aligned(self) -> bool:
        """Read alignment, honouring the §8 annotation for custom windows."""
        if self.window_kind is WindowKind.CUSTOM and self.aligned_hint is not None:
            return self.aligned_hint
        return self.window_kind.aligned

    @property
    def pattern(self) -> StorePattern:
        if self.incremental:
            return StorePattern.RMW
        if self.effective_aligned:
            return StorePattern.AAR
        return determine_pattern(self.incremental, self.window_kind)


# A factory builds one backend per physical operator instance.
BackendFactory = Callable[[SimEnv, SimFileSystem, str, OperatorInfo], WindowStateBackend]


class GenericKVBackend(WindowStateBackend):
    """Window state over a generic KV store (the §2.2 baseline glue).

    * list state  -> ``append(window||key, element)`` merge operands,
    * aligned trigger -> ``scan_prefix(window bytes)`` + per-key delete,
    * unaligned trigger -> ``get`` + ``delete``,
    * aggregates  -> ``put`` / ``get`` full values.
    """

    def __init__(
        self,
        env: SimEnv,
        store: KVStore,
        serde: Serde | None = None,
        pattern: StorePattern | None = None,
    ) -> None:
        self._env = env
        self._store = store
        self._serde = serde or PickleSerde()
        self._pattern = pattern
        self._dirty = KeyGroupDirtyTracker()

    @property
    def _kind(self) -> str:
        return KIND_AGG if self._pattern is StorePattern.RMW else KIND_LIST

    def attach_changelog(self, writer) -> None:
        """Route semantic mutations into a changelog writer (replication)."""
        self._dirty.changelog = writer

    @property
    def store(self) -> KVStore:
        return self._store

    @property
    def capabilities(self) -> frozenset[str]:
        # Rescaling and dirty tracking work over any KV store (the glue
        # sees every mutation and can scan_prefix + delete); snapshotting
        # is delegated, so only advertise it when the wrapped store can
        # actually take one.  The batch surface is native here — encode +
        # changelog + composite-key work is amortized in one pass and
        # handed to the store's own multi_append.
        return frozenset({CAP_RESCALE, CAP_INCREMENTAL, CAP_BATCH}) | (
            self._store.capabilities & {CAP_SNAPSHOT}
        )

    @property
    def checkpoint_key_groups(self) -> int:
        """Group-space resolution of dirty tracking and checkpoint shards."""
        return self._dirty.max_key_groups

    def dirty_groups(self) -> frozenset[int]:
        return self._dirty.groups()

    def clear_dirty(self) -> None:
        self._dirty.clear()

    def _encode(self, obj: Any) -> bytes:
        data = self._serde.serialize(obj)
        self._env.charge_cpu(CAT_SERDE, self._env.cpu.serde(len(data)))
        return data

    def _decode(self, data: bytes) -> Any:
        self._env.charge_cpu(CAT_SERDE, self._env.cpu.serde(len(data)))
        return self._serde.deserialize(data)

    # ------------------------------------------------------------------
    def append(self, key: bytes, window: Window, value: Any, timestamp: float) -> None:
        data = self._encode(value)
        self._dirty.log_append(key, window, self._kind, (data,))
        self._store.append(composite_key(window, key), data)

    def multi_append(
        self, entries: list[tuple[bytes, Window, Any, float]]
    ) -> None:
        """Native batch append: encode + changelog + composite keys in one
        pass, then a single ``multi_append`` on the wrapped store.

        Charges stay per-entry identical to :meth:`append`; only their
        grouping changes (all serde first, then all store writes), which
        preserves per-category charge order — and device I/O order, since
        only the store writes.
        """
        kind = self._kind
        encode = self._encode
        log_append = self._dirty.log_append
        encoded: list[tuple[bytes, bytes]] = []
        for key, window, value, _timestamp in entries:
            data = encode(value)
            log_append(key, window, kind, (data,))
            encoded.append((composite_key(window, key), data))
        self._store.multi_append(encoded)

    def read_window(self, window: Window) -> Iterator[tuple[bytes, list[Any]]]:
        prefix = window.key_bytes()
        to_delete: list[bytes] = []
        for ck, merged in self._store.scan_prefix(prefix):
            key = ck[16:]
            values = [self._decode(e) for e in unpack_list_value(merged)]
            to_delete.append(ck)
            self._dirty.log_remove(key, window, self._kind)
            yield key, values
        for ck in to_delete:
            self._store.delete(ck)

    def read_key_window(self, key: bytes, window: Window) -> list[Any]:
        ck = composite_key(window, key)
        merged = self._store.get(ck)
        if merged is None:
            return []
        self._dirty.log_remove(key, window, self._kind)
        self._store.delete(ck)
        return [self._decode(e) for e in unpack_list_value(merged)]

    # ------------------------------------------------------------------
    def rmw_get(self, key: bytes, window: Window) -> Any | None:
        data = self._store.get(composite_key(window, key))
        return None if data is None else self._decode(data)

    def rmw_put(self, key: bytes, window: Window, aggregate: Any) -> None:
        data = self._encode(aggregate)
        self._dirty.log_put(key, window, self._kind, (data,))
        self._store.put(composite_key(window, key), data)

    def rmw_remove(self, key: bytes, window: Window) -> Any | None:
        ck = composite_key(window, key)
        data = self._store.get(ck)
        if data is None:
            return None
        self._dirty.log_remove(key, window, self._kind)
        self._store.delete(ck)
        return self._decode(data)

    # ------------------------------------------------------------------
    # semantic prefetching: translate operator hints into store reads
    # according to the operator's FlowKV access class — AAR triggers scan
    # a whole window prefix, RMW/AUR triggers touch single cells.
    # ------------------------------------------------------------------
    @property
    def prefetch_enabled(self) -> bool:
        return self._store.prefetch_active

    def prefetch_window(self, window: Window) -> None:
        self._store.prefetch_scan(window.key_bytes())

    def prefetch_keys(self, window: Window, keys: list[bytes]) -> None:
        self._store.prefetch_get(
            [composite_key(window, key) for key in keys]
        )

    def prefetch_write_keys(
        self, entries: list[tuple[bytes, Window]]
    ) -> None:
        # Only worthwhile when the store's append path reads old state
        # (the hash store's RCU); LSM appends are blind merge operands.
        if self._store.append_reads:
            self._store.prefetch_get(
                [composite_key(window, key) for key, window in entries]
            )

    # ------------------------------------------------------------------
    # elastic rescaling: the generic glue can only find moved state by a
    # full scan — exactly the repartitioning cost a composite-keyed KV
    # layout pays (no key-group locality on disk).
    # ------------------------------------------------------------------
    def export_state(self, key_groups: set[int], key_group_of: KeyGroupFn) -> StateExport:
        self._store.flush()
        kind = KIND_AGG if self._pattern is StorePattern.RMW else KIND_LIST
        export = StateExport()
        moved: list[bytes] = []
        for ck, merged in self._store.scan_prefix(b""):
            window, key = split_composite_key(ck)
            if key_group_of(key) not in key_groups:
                continue
            self._env.charge_cpu(CAT_MIGRATION, self._env.cpu.serde(len(merged)))
            values = list(unpack_list_value(merged)) if kind == KIND_LIST else [merged]
            export.entries.append(ExportedEntry(key, window, kind, values))
            self._dirty.log_remove(key, window, kind)
            moved.append(ck)
        for ck in moved:
            self._store.delete(ck)
        return export

    def export_group_state(
        self, key_groups: set[int] | None, key_group_of: KeyGroupFn
    ) -> StateExport:
        """Same full scan as :meth:`export_state` but *non-destructive* —
        the sharded checkpointer's read path (charged as recovery)."""
        self._store.flush()
        kind = KIND_AGG if self._pattern is StorePattern.RMW else KIND_LIST
        export = StateExport()
        for ck, merged in self._store.scan_prefix(b""):
            window, key = split_composite_key(ck)
            if key_groups is not None and key_group_of(key) not in key_groups:
                continue
            self._env.charge_cpu(CAT_RECOVERY, self._env.cpu.serde(len(merged)))
            values = list(unpack_list_value(merged)) if kind == KIND_LIST else [merged]
            export.entries.append(ExportedEntry(key, window, kind, values))
        return export

    def import_state(self, export: StateExport) -> None:
        for entry in export.entries:
            self._dirty.log_merge(entry.key, entry.window, entry.kind, entry.values)
            ck = composite_key(entry.window, entry.key)
            self._env.charge_cpu(
                CAT_MIGRATION, self._env.cpu.serde(sum(len(v) for v in entry.values))
            )
            if entry.kind == KIND_LIST:
                # A single packed Put; later appends still merge after it,
                # matching the store's PUT-then-MERGE concatenation.
                self._store.put(ck, pack_list_value(entry.values))
            else:
                self._store.put(ck, entry.values[0])

    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._store.flush()

    def snapshot(self, upload_env=None):
        return self._store.snapshot(upload_env=upload_env)

    def restore(self, snapshot) -> None:
        self._store.restore(snapshot)

    def close(self) -> None:
        self._store.close()

    @property
    def memory_bytes(self) -> int:
        return self._store.memory_bytes
