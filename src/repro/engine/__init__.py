"""A miniature stream processing engine (the Flink stand-in).

Provides what the paper's evaluation needs from an SPE:

* timestamped keyed streams with event-time watermarks,
* logical plans built through a fluent :class:`~repro.engine.plan.DataStream`
  API, compiled to physical plans with configurable parallelism,
* stateful window operators over pluggable state backends (heap, LSM,
  hash-KV, FlowKV) that produce exactly the paper's three access
  patterns — AAR, AUR and RMW,
* a simulated-time executor that models pipelined parallel execution,
  open-loop arrivals for latency runs, OOM and timeout failures.
"""

from repro.engine.functions import (
    AggregateFunction,
    CountAggregate,
    MaxAggregate,
    MedianProcessFunction,
    ProcessWindowFunction,
    SumAggregate,
)
from repro.engine.plan import StreamEnvironment
from repro.engine.runtime import JobResult
from repro.engine.state import GenericKVBackend, OperatorInfo
from repro.engine.windows import (
    CountWindowAssigner,
    GlobalWindowAssigner,
    SessionWindowAssigner,
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowAssigner,
)

__all__ = [
    "StreamEnvironment",
    "JobResult",
    "AggregateFunction",
    "ProcessWindowFunction",
    "CountAggregate",
    "SumAggregate",
    "MaxAggregate",
    "MedianProcessFunction",
    "WindowAssigner",
    "TumblingWindowAssigner",
    "SlidingWindowAssigner",
    "SessionWindowAssigner",
    "GlobalWindowAssigner",
    "CountWindowAssigner",
    "GenericKVBackend",
    "OperatorInfo",
]
