"""User-function interfaces of the programming model (§2.1).

The two families map one-to-one onto the paper's aggregate-function
classification:

* :class:`AggregateFunction` — associative/commutative incremental
  aggregation (Flink ``AggregateFunction``): the operator keeps one
  accumulator per (key, window) and **read-modify-writes** it per tuple;
* :class:`ProcessWindowFunction` — needs the complete tuple list at
  trigger time (Flink ``ProcessWindowFunction``): the operator **appends**
  every tuple to window state.

A few stock implementations used by the NEXMark queries are included.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from typing import Any

from repro.model import Window


class AggregateFunction(ABC):
    """Incremental aggregation: tuples merge into an accumulator."""

    @abstractmethod
    def create_accumulator(self) -> Any:
        """A fresh accumulator for a new (key, window)."""

    @abstractmethod
    def add(self, value: Any, accumulator: Any) -> Any:
        """Fold one input value into the accumulator; returns it."""

    @abstractmethod
    def get_result(self, accumulator: Any) -> Any:
        """The window result extracted from the final accumulator."""

    def merge(self, a: Any, b: Any) -> Any:
        """Merge two accumulators (session-window merging)."""
        raise NotImplementedError(f"{type(self).__name__} does not support merging")


class ProcessWindowFunction(ABC):
    """Full-window processing: sees every tuple of the (key, window)."""

    @abstractmethod
    def process(self, key: bytes, window: Window, values: list[Any]) -> Iterable[Any]:
        """Produce zero or more outputs from the complete value list."""


# ----------------------------------------------------------------------
# stock aggregate functions
# ----------------------------------------------------------------------
class CountAggregate(AggregateFunction):
    """Counts tuples (NEXMark Q5/Q11/Q12 shape)."""

    def create_accumulator(self) -> int:
        return 0

    def add(self, value: Any, accumulator: int) -> int:
        return accumulator + 1

    def get_result(self, accumulator: int) -> int:
        return accumulator

    def merge(self, a: int, b: int) -> int:
        return a + b


class SumAggregate(AggregateFunction):
    """Sums ``extract(value)``."""

    def __init__(self, extract=lambda v: v) -> None:
        self._extract = extract

    def create_accumulator(self) -> float:
        return 0

    def add(self, value: Any, accumulator: float) -> float:
        return accumulator + self._extract(value)

    def get_result(self, accumulator: float) -> float:
        return accumulator

    def merge(self, a: float, b: float) -> float:
        return a + b


class MaxAggregate(AggregateFunction):
    """Tracks ``(max metric, value)`` pairs (argmax)."""

    def __init__(self, extract=lambda v: v) -> None:
        self._extract = extract

    def create_accumulator(self) -> tuple[Any, Any] | None:
        return None

    def add(self, value: Any, accumulator: tuple[Any, Any] | None) -> tuple[Any, Any]:
        metric = self._extract(value)
        if accumulator is None or metric > accumulator[0]:
            return (metric, value)
        return accumulator

    def get_result(self, accumulator: tuple[Any, Any] | None) -> Any:
        return accumulator

    def merge(
        self, a: tuple[Any, Any] | None, b: tuple[Any, Any] | None
    ) -> tuple[Any, Any] | None:
        if a is None:
            return b
        if b is None:
            return a
        return a if a[0] >= b[0] else b


# ----------------------------------------------------------------------
# stock process-window functions
# ----------------------------------------------------------------------
class MedianProcessFunction(ProcessWindowFunction):
    """Non-associative median (Q11-Median): needs the whole list."""

    def __init__(self, extract=lambda v: v) -> None:
        self._extract = extract

    def process(self, key: bytes, window: Window, values: list[Any]) -> Iterable[Any]:
        if not values:
            return
        metrics = sorted(self._extract(v) for v in values)
        mid = len(metrics) // 2
        if len(metrics) % 2:
            yield metrics[mid]
        else:
            yield (metrics[mid - 1] + metrics[mid]) / 2


class MaxProcessFunction(ProcessWindowFunction):
    """Max computed non-incrementally (forced Append pattern, Q7 shape)."""

    def __init__(self, extract=lambda v: v) -> None:
        self._extract = extract

    def process(self, key: bytes, window: Window, values: list[Any]) -> Iterable[Any]:
        best = None
        best_value = None
        for value in values:
            metric = self._extract(value)
            if best is None or metric > best:
                best = metric
                best_value = value
        if best is not None:
            yield (best, best_value)


class CollectProcessFunction(ProcessWindowFunction):
    """Emits the (key, window, values) triple — used in tests."""

    def process(self, key: bytes, window: Window, values: list[Any]) -> Iterable[Any]:
        yield (key, window, list(values))
