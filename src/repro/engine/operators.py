"""The keyed window operator.

One :class:`WindowOperator` instance is one physical operator ``p_i``: it
owns a state backend, assigns incoming tuples to windows (replicating
across sliding windows), merges session windows per key, registers
event-time timers, and on watermark advance triggers windows — reading
state back through exactly the access pattern its function pair implies:

* incremental aggregate  -> RMW: ``rmw_get``/``rmw_put`` per tuple,
* full-window function + aligned windows -> AAR: ``append`` per tuple,
  ``read_window`` at trigger,
* full-window function + session/count windows -> AUR: ``append`` per
  tuple, ``read_key_window`` per key at trigger.

Session state is always written under the session's *initial* window
boundary (fixed at creation); merges only update in-operator metadata and
the state of every merged initial window is read at trigger time.  This
matches FlowKV's AUR design (§4.2) and works identically on all backends.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.engine.functions import AggregateFunction, ProcessWindowFunction
from repro.engine.windows import CountWindowAssigner, WindowAssigner
from repro.kvstores.api import KeyGroupFn, WindowStateBackend
from repro.model import GLOBAL_WINDOW, StreamRecord, Window
from repro.simenv import CAT_ENGINE, CAT_MIGRATION, CAT_QUERY, SimEnv

# Per-value user-computation charge at trigger time (deserialized object
# handling inside the window function).
_QUERY_PER_VALUE = 250e-9

Collector = Callable[[StreamRecord], None]


@dataclass
class _Session:
    """Metadata of one active session window of one key."""

    initials: list[Window]  # state namespaces holding this session's tuples
    current: Window  # merged (extended) boundary

    def absorb(self, other: "_Session") -> None:
        self.initials.extend(other.initials)
        self.current = self.current.cover(other.current)


@dataclass
class WindowOperator:
    """A physical window operator instance over one key-space partition."""

    assigner: WindowAssigner
    function: AggregateFunction | ProcessWindowFunction
    name: str = "window"
    with_window: bool = False  # emit (key, window, result) instead of result

    env: SimEnv = field(init=False, default=None)
    backend: WindowStateBackend = field(init=False, default=None)
    collector: Collector = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.incremental = isinstance(self.function, AggregateFunction)
        # Whether a triggered window can be read with one whole-window
        # read (AAR) or must be read per key (AUR).  Custom assigners may
        # carry the §8 @AlignedRead-style annotation.
        self.aligned_reads = (
            self.assigner.kind.aligned
            or getattr(self.assigner, "aligned_hint", None) is True
        )
        self._timers: list[tuple[float, int, tuple]] = []
        self._timer_seq = 0
        self._pending_aligned: set[Window] = set()
        self._window_keys: dict[Window, set[bytes]] = {}  # aligned RMW only
        self._sessions: dict[bytes, list[_Session]] = {}
        self._count_state: dict[bytes, tuple[int, int]] = {}  # key -> (ordinal, count)
        self._max_timestamp = float("-inf")
        self.results_emitted = 0
        # Semantic prefetching: windows/sessions already hinted to the
        # backend, and the max-timestamp up to which timers were scanned.
        self._prefetch_on = False
        self._hinted: set = set()
        self._hint_scan_ts = float("-inf")
        self._hint_boundary: float | None = None  # next grid trigger, if known

    # ------------------------------------------------------------------
    def open(self, env: SimEnv, backend: WindowStateBackend, collector: Collector) -> None:
        self.env = env
        self.backend = backend
        self.collector = collector
        self._prefetch_on = bool(getattr(backend, "prefetch_enabled", False))

    def _register_timer(self, timestamp: float, payload: tuple) -> None:
        self._timer_seq += 1
        heapq.heappush(self._timers, (timestamp, self._timer_seq, payload))

    # ------------------------------------------------------------------
    # tuple path
    # ------------------------------------------------------------------
    def process(self, record: StreamRecord) -> None:
        self.env.charge_cpu(CAT_ENGINE, self.env.cpu.function_call)
        if record.timestamp > self._max_timestamp:
            self._max_timestamp = record.timestamp
        if isinstance(self.assigner, CountWindowAssigner):
            self._process_count(record)
        elif self.assigner.merging:
            self._process_session(record)
        else:
            self._process_aligned(record)
        if self._prefetch_on:
            self._hint_due_triggers()

    # ------------------------------------------------------------------
    # semantic prefetch hints
    # ------------------------------------------------------------------
    def _hint_due_triggers(self) -> None:
        """Hint the backend about windows whose trigger is now inevitable.

        A timer with ``ts <= max event timestamp`` fires at the next
        watermark at the latest, so its window's state is about to be
        read; telling the backend lets it overlap that read with the
        compute still ahead of the watermark.  Hints are advisory — they
        never mutate state and cannot change output.
        """
        if self._hint_boundary is not None and self._max_timestamp < self._hint_boundary:
            return  # watermark grid: next boundary not reached yet
        if not self._timers or self._timers[0][0] > self._max_timestamp:
            return  # heap root is the earliest timer: nothing due yet
        if self._max_timestamp <= self._hint_scan_ts:
            return  # no new timers can have become due since last scan
        self._hint_scan_ts = self._max_timestamp
        self._hint_boundary = self.assigner.next_trigger(self._max_timestamp)
        for ts, _seq, payload in self._timers:
            if ts > self._max_timestamp:
                continue
            if payload[0] == "aligned":
                window = payload[1]
                if window in self._hinted:
                    continue
                self._hinted.add(window)
                if self.incremental or not self.aligned_reads:
                    keys = self._window_keys.get(window)
                    if keys:
                        self.backend.prefetch_keys(window, sorted(keys))
                else:
                    self.backend.prefetch_window(window)
            else:
                _kind, key, session = payload
                if session.current.end > ts:
                    continue  # stale timer: session was extended
                marker = (key, session.current)
                if marker in self._hinted:
                    continue
                self._hinted.add(marker)
                for initial in session.initials:
                    self.backend.prefetch_keys(initial, [key])

    def process_batch(self, records: list[StreamRecord]) -> None:
        """Batch entry point for the runtime's record batches.

        Only the non-incremental, non-merging append path defers state
        writes into one ``multi_append`` — count windows fire mid-tuple,
        sessions merge state they may re-read, and incremental RMW reads
        its own writes, so those stay strict per-record loops.  Charges
        regroup by category (all engine, then all serde + store) but
        per-category order matches the per-tuple loop exactly; no reads
        happen between the deferred writes because triggers only run at
        watermarks, and the runtime flushes batches before broadcasting.
        """
        if (
            self.incremental
            or self.assigner.merging
            or isinstance(self.assigner, CountWindowAssigner)
        ):
            process = self.process
            for record in records:
                process(record)
            return
        charge = self.env.charge_cpu
        function_call = self.env.cpu.function_call
        branch_step = self.env.cpu.branch_step
        assign = self.assigner.assign
        aligned_reads = self.aligned_reads
        pending = self._pending_aligned
        entries: list[tuple[bytes, Window, Any, float]] = []
        for record in records:
            charge(CAT_ENGINE, function_call)
            if record.timestamp > self._max_timestamp:
                self._max_timestamp = record.timestamp
            for window in assign(record.timestamp):
                charge(CAT_ENGINE, branch_step)
                entries.append(
                    (record.key, window, record.value, record.timestamp)
                )
                if aligned_reads:
                    if window not in pending:
                        pending.add(window)
                        self._arm_aligned_window(window)
                else:
                    self._track_window_key(window, record.key)
        if entries:
            if self._prefetch_on:
                self._hint_write_keys(entries)
            self.backend.multi_append(entries)
        if self._prefetch_on:
            self._hint_due_triggers()

    def _hint_write_keys(
        self, entries: list[tuple[bytes, Window, Any, float]]
    ) -> None:
        """Hint the cells a batch of appends is about to touch.

        Only stores whose append path reads old state (the hash store's
        RCU) act on this; issuing the whole batch up front lets later
        records' reads overlap earlier records' append compute.
        """
        seen: set[tuple[bytes, Window]] = set()
        hints: list[tuple[bytes, Window]] = []
        for key, window, _value, _timestamp in entries:
            marker = (key, window)
            if marker not in seen:
                seen.add(marker)
                hints.append(marker)
        self.backend.prefetch_write_keys(hints)

    def _process_aligned(self, record: StreamRecord) -> None:
        windows = self.assigner.assign(record.timestamp)
        for window in windows:
            self.env.charge_cpu(CAT_ENGINE, self.env.cpu.branch_step)
            if self.incremental:
                self._rmw_add(record.key, window, record.value)
                self._track_window_key(window, record.key)
            else:
                # State mutation goes through the batch API even on the
                # per-record path (size-1 batch is charge-identical).
                if self._prefetch_on:
                    self.backend.prefetch_write_keys([(record.key, window)])
                self.backend.multi_append(
                    [(record.key, window, record.value, record.timestamp)]
                )
                if self.aligned_reads:
                    if window not in self._pending_aligned:
                        self._pending_aligned.add(window)
                        self._arm_aligned_window(window)
                else:
                    # Custom windows without an alignment hint read per
                    # key through the AUR store (§8).
                    self._track_window_key(window, record.key)

    def _track_window_key(self, window: Window, key: bytes) -> None:
        keys = self._window_keys.get(window)
        if keys is None:
            keys = set()
            self._window_keys[window] = keys
            self._arm_aligned_window(window)
        keys.add(key)

    def _arm_aligned_window(self, window: Window) -> None:
        self._register_timer(window.end, ("aligned", window))

    def _process_session(self, record: StreamRecord) -> None:
        raw = self.assigner.assign(record.timestamp)[0]
        sessions = self._sessions.setdefault(record.key, [])
        self.env.charge_cpu(CAT_ENGINE, self.env.cpu.hash_probe)
        target: _Session | None = None
        for session in sessions:
            if session.current.intersects(raw):
                target = session
                break
        if target is None:
            target = _Session(initials=[raw], current=raw)
            sessions.append(target)
        else:
            target.current = target.current.cover(raw)
            # Extension may bridge into a neighbouring session.
            for other in list(sessions):
                if other is not target and other.current.intersects(target.current):
                    target.absorb(other)
                    sessions.remove(other)
        if self.incremental:
            self._rmw_add(record.key, target.initials[0], record.value)
        else:
            self.backend.multi_append(
                [(record.key, target.initials[0], record.value, record.timestamp)]
            )
        self._register_timer(target.current.end, ("session", record.key, target))

    def _process_count(self, record: StreamRecord) -> None:
        assigner: CountWindowAssigner = self.assigner  # type: ignore[assignment]
        ordinal, count = self._count_state.get(record.key, (0, 0))
        window = Window(float(ordinal), float(ordinal + 1))
        if self.incremental:
            self._rmw_add(record.key, window, record.value)
        else:
            self.backend.multi_append(
                [(record.key, window, record.value, record.timestamp)]
            )
        count += 1
        if count >= assigner.count:
            self._fire_key_window(record.key, window, window)
            self._count_state[record.key] = (ordinal + 1, 0)
        else:
            self._count_state[record.key] = (ordinal, count)

    def _rmw_add(self, key: bytes, window: Window, value: Any) -> None:
        # Read-modify-write is irreducibly per-record (each update reads
        # its own previous write) — size-1 batch calls keep the hot path
        # on the batch API without changing any charge.
        accumulator = self.backend.multi_get([(key, window)])[0]
        if accumulator is None:
            accumulator = self.function.create_accumulator()
        self.env.charge_cpu(CAT_QUERY, self.env.cpu.function_call)
        accumulator = self.function.add(value, accumulator)
        self.backend.apply_write_batch([("rmw_put", key, window, accumulator)])

    # ------------------------------------------------------------------
    # trigger path
    # ------------------------------------------------------------------
    def on_watermark(self, watermark: float) -> None:
        self.backend.on_watermark(watermark)
        while self._timers and self._timers[0][0] <= watermark:
            _ts, _seq, payload = heapq.heappop(self._timers)
            self.env.charge_cpu(CAT_ENGINE, self.env.cpu.branch_step)
            if payload[0] == "aligned":
                self._fire_aligned(payload[1])
            else:
                _kind, key, session = payload
                self._fire_session(key, session, fired_at=_ts)

    def finish(self) -> None:
        """End of stream: fire everything still pending (global windows)."""
        self.on_watermark(float("inf"))
        self.backend.flush()

    def _fire_aligned(self, window: Window) -> None:
        self._hinted.discard(window)
        if self.incremental:
            keys = self._window_keys.pop(window, None)
            if keys is None:
                return
            for key in sorted(keys):
                accumulator = self.backend.rmw_remove(key, window)
                if accumulator is None:
                    continue
                self.env.charge_cpu(CAT_QUERY, self.env.cpu.function_call)
                self._emit(key, window, self.function.get_result(accumulator))
        elif not self.aligned_reads:
            keys = self._window_keys.pop(window, None)
            if keys is None:
                return
            for key in sorted(keys):
                values = self.backend.read_key_window(key, window)
                if values:
                    self._process_and_emit(key, window, values)
        else:
            if window not in self._pending_aligned:
                return
            self._pending_aligned.discard(window)
            # Collect per key across gradual-loading partitions.
            per_key: dict[bytes, list[Any]] = {}
            for key, values in self.backend.read_window(window):
                per_key.setdefault(key, []).extend(values)
            for key in sorted(per_key):
                self._process_and_emit(key, window, per_key[key])

    def _fire_session(self, key: bytes, session: _Session, fired_at: float) -> None:
        sessions = self._sessions.get(key)
        if not sessions or not any(s is session for s in sessions):
            return  # stale timer: session already fired
        if session.current.end > fired_at:
            return  # stale timer: session was extended; a newer timer exists
        sessions[:] = [s for s in sessions if s is not session]
        if not sessions:
            self._sessions.pop(key, None)
        self._hinted.discard((key, session.current))
        self._fire_key_window(key, session.initials, session.current)

    def _fire_key_window(
        self, key: bytes, initials: Window | list[Window], merged: Window
    ) -> None:
        if isinstance(initials, Window):
            initials = [initials]
        if self.incremental:
            accumulator = None
            for initial in initials:
                part = self.backend.rmw_remove(key, initial)
                if part is None:
                    continue
                if accumulator is None:
                    accumulator = part
                else:
                    self.env.charge_cpu(CAT_QUERY, self.env.cpu.function_call)
                    accumulator = self.function.merge(accumulator, part)
            if accumulator is None:
                return
            self.env.charge_cpu(CAT_QUERY, self.env.cpu.function_call)
            self._emit(key, merged, self.function.get_result(accumulator))
        else:
            values: list[Any] = []
            for initial in initials:
                values.extend(self.backend.read_key_window(key, initial))
            if values:
                self._process_and_emit(key, merged, values)

    # ------------------------------------------------------------------
    # elastic rescaling: in-operator keyed metadata that must travel with
    # the backend state (sessions, tracked window keys, count ordinals).
    # ------------------------------------------------------------------
    def export_keyed_state(
        self, key_groups: set[int], key_group_of: KeyGroupFn
    ) -> dict[str, Any]:
        """Extract the moved key-groups' in-operator metadata.

        ``pending_aligned`` is *copied*, not removed: an aligned window
        may hold keys of both moved and kept groups, so both sides keep
        its trigger armed (firing a window with no remaining state emits
        nothing).  Stale source timers for moved sessions are harmless —
        the firing path re-checks session liveness.
        """
        state: dict[str, Any] = {
            "sessions": {},
            "window_keys": [],
            "count_state": {},
            "pending_aligned": set(self._pending_aligned),
            "max_timestamp": self._max_timestamp,
        }
        for key in [k for k in self._sessions if key_group_of(k) in key_groups]:
            self.env.charge_cpu(CAT_MIGRATION, self.env.cpu.hash_probe)
            state["sessions"][key] = self._sessions.pop(key)
        for window, keys in self._window_keys.items():
            moved = {k for k in keys if key_group_of(k) in key_groups}
            if moved:
                self.env.charge_cpu(
                    CAT_MIGRATION, len(moved) * self.env.cpu.hash_probe
                )
                keys -= moved
                state["window_keys"].append((window, moved))
        for window in [w for w, keys in self._window_keys.items() if not keys]:
            del self._window_keys[window]
        for key in [k for k in self._count_state if key_group_of(k) in key_groups]:
            self.env.charge_cpu(CAT_MIGRATION, self.env.cpu.hash_probe)
            state["count_state"][key] = self._count_state.pop(key)
        return state

    def import_keyed_state(self, state: dict[str, Any]) -> None:
        """Merge migrated metadata and re-register its event-time timers."""
        for key, sessions in state["sessions"].items():
            self.env.charge_cpu(CAT_MIGRATION, self.env.cpu.hash_probe)
            self._sessions.setdefault(key, []).extend(sessions)
            for session in sessions:
                self._register_timer(session.current.end, ("session", key, session))
        for window, keys in state["window_keys"]:
            self.env.charge_cpu(CAT_MIGRATION, len(keys) * self.env.cpu.hash_probe)
            for key in keys:
                self._track_window_key(window, key)
        for key, value in state["count_state"].items():
            self.env.charge_cpu(CAT_MIGRATION, self.env.cpu.hash_probe)
            self._count_state[key] = value
        for window in state["pending_aligned"]:
            if window not in self._pending_aligned:
                self._pending_aligned.add(window)
                self._arm_aligned_window(window)
        if state["max_timestamp"] > self._max_timestamp:
            self._max_timestamp = state["max_timestamp"]

    # ------------------------------------------------------------------
    # checkpointing: the operator's own mutable state, captured alongside
    # the backend snapshot so a restored instance resumes mid-window.
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """All in-operator mutable state, as one picklable object graph.

        The timer heap's session payloads reference the same
        :class:`_Session` objects as ``_sessions``; returning them in one
        structure lets a single pickle preserve that identity, which the
        stale-timer checks in :meth:`_fire_session` depend on.
        """
        return {
            "timers": list(self._timers),
            "timer_seq": self._timer_seq,
            "pending_aligned": set(self._pending_aligned),
            "window_keys": {w: set(ks) for w, ks in self._window_keys.items()},
            "sessions": self._sessions,
            "count_state": dict(self._count_state),
            "max_timestamp": self._max_timestamp,
            "results_emitted": self.results_emitted,
        }

    def restore_checkpoint_state(self, state: dict[str, Any]) -> None:
        """Adopt checkpointed operator state (fresh instance only)."""
        self._timers = list(state["timers"])
        heapq.heapify(self._timers)
        self._timer_seq = state["timer_seq"]
        self._pending_aligned = set(state["pending_aligned"])
        self._window_keys = {w: set(ks) for w, ks in state["window_keys"].items()}
        self._sessions = state["sessions"]
        self._count_state = dict(state["count_state"])
        self._max_timestamp = state["max_timestamp"]
        self.results_emitted = state["results_emitted"]

    def _process_and_emit(self, key: bytes, window: Window, values: list[Any]) -> None:
        self.env.charge_cpu(
            CAT_QUERY, self.env.cpu.function_call + len(values) * _QUERY_PER_VALUE
        )
        for output in self.function.process(key, window, values):
            self._emit(key, window, output)

    def _emit(self, key: bytes, window: Window, output: Any) -> None:
        timestamp = min(window.end, self._max_timestamp) if window is GLOBAL_WINDOW else window.end
        self.results_emitted += 1
        if self.with_window:
            output = (key, window, output)
        self.collector(StreamRecord(key=key, value=output, timestamp=timestamp))
