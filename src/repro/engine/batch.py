"""Columnar record batches for the engine's hot path.

A :class:`RecordBatch` carries ``n`` records as four parallel arrays —
keys, values, timestamps, origins — instead of ``n`` boxed
:class:`~repro.model.StreamRecord` objects.  Stateless transforms (map,
filter, flat_map, key_by) rewrite single columns and share the rest, so
a record materializes as a ``StreamRecord`` only at a stateful operator
or a sink.  Batching is purely a real-time optimization: the simulated
cost ledger charges per record exactly as the per-tuple path does.

The runtime splits batches at two boundaries:

* **key-group boundaries** — rows are regrouped per routed physical
  instance before delivery (each instance owns its own clock/ledger);
* **watermark boundaries** — a watermark due mid-batch flushes the
  partial batch first, so timer firing order is identical to per-tuple
  execution (see ``Executor.run``).
"""

from __future__ import annotations

from typing import Any

from repro.model import StreamRecord


def record_bytes(value: Any) -> int:
    """Cheap per-record payload estimate for the ``max_batch_bytes`` knob."""
    if hasattr(value, "payload_bytes"):
        return int(value.payload_bytes)
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    return 64


class RecordBatch:
    """A fixed run of records in columnar form.

    ``origins[i]`` is the cluster node record ``i`` currently lives on
    (its ingest node, or the node of the instance that emitted it) —
    the same routing input the per-tuple path threads through
    ``Executor._handle``.
    """

    __slots__ = ("keys", "values", "timestamps", "origins")

    def __init__(
        self,
        keys: list[bytes],
        values: list[Any],
        timestamps: list[float],
        origins: list[int],
    ) -> None:
        self.keys = keys
        self.values = values
        self.timestamps = timestamps
        self.origins = origins

    def __len__(self) -> int:
        return len(self.values)

    def take(self, indices: list[int]) -> "RecordBatch":
        """A new batch holding the selected rows, in ``indices`` order."""
        keys = self.keys
        values = self.values
        timestamps = self.timestamps
        origins = self.origins
        return RecordBatch(
            [keys[i] for i in indices],
            [values[i] for i in indices],
            [timestamps[i] for i in indices],
            [origins[i] for i in indices],
        )

    def with_values(self, values: list[Any]) -> "RecordBatch":
        """Same rows with the value column replaced (map)."""
        return RecordBatch(self.keys, values, self.timestamps, self.origins)

    def with_keys(self, keys: list[bytes]) -> "RecordBatch":
        """Same rows with the key column replaced (key_by)."""
        return RecordBatch(keys, self.values, self.timestamps, self.origins)

    def record(self, i: int) -> StreamRecord:
        """Materialize row ``i`` as a boxed record."""
        return StreamRecord(self.keys[i], self.values[i], self.timestamps[i])

    def iter_rows(self):
        """Yield ``(StreamRecord, origin)`` pairs (per-record fallback)."""
        keys = self.keys
        values = self.values
        timestamps = self.timestamps
        origins = self.origins
        for i in range(len(values)):
            yield StreamRecord(keys[i], values[i], timestamps[i]), origins[i]
