"""Physical execution on simulated time.

Execution model (documented in DESIGN.md):

* every physical window-operator instance has its own
  :class:`~repro.simenv.SimEnv` (clock + ledger) and its own simulated
  filesystem/state store — states are never shared (§2.1);
* stages are assumed fully pipelined (the paper's workers run 16 task
  slots on 8 vCPUs): job completion time is the *maximum busy time* over
  all instances, not the sum;
* for latency runs, records arrive open-loop at a fixed rate and every
  instance is a single-server FIFO queue: a unit of work starts at
  ``max(arrival, previous completion)`` and its service time is the
  simulated time its processing charged.  Downstream work inherits the
  upstream completion time as its arrival — a queueing network driven by
  the same cost charges that produce throughput numbers;
* a sink record's latency is ``completion_wall - result_timestamp``
  (the window's end), matching the paper's event-time latency metric.

Failure modes surface as typed exceptions: :class:`StoreOOMError` (heap
backend), :class:`SimTimeoutError` (simulated-time budget exceeded) and
:class:`EngineOverloadError` (latency backlog diverged).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.topology import charge_link
from repro.engine.batch import RecordBatch, record_bytes
from repro.engine.joins import IntervalJoinOperator, JoinStateBackend
from repro.engine.operators import WindowOperator
from repro.engine.plan import LogicalNode, StreamEnvironment
from repro.errors import PlanError, ReproError, SimTimeoutError
from repro.faults import CRASH_RUNTIME_RECORD, CRASH_RUNTIME_WATERMARK
from repro.model import StreamRecord
from repro.rescale.controller import LoadObservation
from repro.rescale.keygroups import contiguous_owner_table, key_group_of
from repro.rescale.live import LiveMigration
from repro.rescale.migration import RescaleEvent, migrate
from repro.rescale.skew import GroupLoadTracker, SplitDecision
from repro.simenv import MetricsLedger, MetricsSnapshot, SimEnv
from repro.storage.filesystem import SimFileSystem


class EngineOverloadError(ReproError):
    """The arrival rate exceeds sustainable throughput (backlog diverged)."""


@dataclass
class PhysicalInstance:
    """One parallel instance of a window operator."""

    name: str
    env: SimEnv
    operator: WindowOperator
    wall_available: float = 0.0
    outbox: list[StreamRecord] = field(default_factory=list)
    cluster_node: int = 0  # hosting node id (0 when no cluster is configured)


@dataclass
class JobResult:
    """Everything the benchmark harness needs from one run."""

    sink_outputs: dict[str, list[Any]]
    latencies: list[float]
    job_seconds: float
    input_records: int
    metrics: MetricsSnapshot
    per_operator: dict[str, MetricsSnapshot]
    operator_stats: dict[str, dict[str, Any]]
    failure: str | None = None
    rescales: list[RescaleEvent] = field(default_factory=list)
    recoveries: list[Any] = field(default_factory=list)  # RecoveryEvent
    checkpoints: int = 0
    checkpoint_stats: list[Any] = field(default_factory=list)  # CheckpointStat
    # Cluster runs only: per-node utilization/traffic breakdown, keyed by
    # node name (empty for legacy single-machine runs).
    node_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    # Always-on keyed-work accounting (GroupLoadTracker.summary()):
    # records/bytes/busy seconds per key-group, per instance, per node.
    group_load: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Input records per simulated second."""
        return self.input_records / self.job_seconds if self.job_seconds > 0 else 0.0

    def p95_latency(self) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


class Executor:
    """Compiles a logical plan and pushes records through it."""

    def __init__(self, plan_env: StreamEnvironment) -> None:
        self._plan = plan_env
        self._children: dict[int, list[LogicalNode]] = {}
        for node in plan_env.nodes():
            for parent in node.parents:
                self._children.setdefault(parent.node_id, []).append(node)
        self._stateful_nodes = [
            n for n in plan_env.nodes() if n.kind in ("window", "interval_join")
        ]
        self._instances: dict[int, list[PhysicalInstance]] = {}
        self._sinks: dict[str, list[Any]] = {
            n.name: [] for n in plan_env.nodes() if n.kind == "sink"
        }
        self._latencies: list[float] = []
        # Ledgers/stats of instances retired by a scale-down, per node id.
        self._retired: dict[int, list[tuple[MetricsSnapshot, float, int]]] = {}
        self._rescales: list[RescaleEvent] = []
        self.current_parallelism = plan_env.parallelism * plan_env.workers
        self.records_ingested = 0
        # Authoritative per-key-group routing table (per-group epochs): a
        # live rescale flips entries one group at a time; an aborted live
        # rescale may leave a mixed assignment.
        self.group_owner: list[int] = contiguous_owner_table(
            plan_env.max_key_groups, self.current_parallelism
        )
        # Always-on per-key-group load accounting (records / state bytes
        # / busy seconds).  Pure-Python bookkeeping on the keyed routing
        # path: no simulated charges, so runs stay charge-identical.
        # Counters are global per group — they travel with the group
        # across live migrations; recovery builds a fresh executor (and
        # a fresh tracker) per restore.
        self.load_tracker = GroupLoadTracker(plan_env.max_key_groups)
        self._live: LiveMigration | None = None
        self._rescale_mode = "live"
        self._transfer_chunk_bytes: int | None = None
        self._transfer_queue_limit: int | None = None
        self._checkpointer: Any = None
        self._seed_rescale = True
        self._first_ts: float | None = None
        # Failover repointing: instance index -> hosting node, overriding
        # the cluster's static placement (a promoted standby serves its
        # dead owner's instances from the peer node).
        self.node_override: dict[int, int] = {}
        # Set by ChangelogReplication.bind(); feeds promote-mode rescales.
        self._replication: Any = None
        self._build_instances()

    @property
    def migration_active(self) -> bool:
        """Whether a live state migration is currently in flight."""
        return self._live is not None and not self._live.done

    def cluster_node_of(self, index: int) -> int | None:
        """Hosting node id of instance ``index`` (None without a cluster).

        Consults :attr:`node_override` first, so a standby promotion can
        repoint a dead node's instances at the surviving peer without
        touching the placement of any other instance.
        """
        cluster = self._plan.cluster
        if cluster is None:
            return None
        override = self.node_override.get(index)
        return override if override is not None else cluster.place(index)

    def _new_instance(self, node: LogicalNode, index: int) -> PhysicalInstance:
        """Deploy one physical instance of a stateful node (fresh state)."""
        factory = self._plan.backend_factory
        env = SimEnv(cpu=self._plan.cpu, ssd=self._plan.ssd, faults=self._plan.faults)
        fs = SimFileSystem(env)
        name = f"{node.name}/p{index}"
        if node.kind == "interval_join":
            # Engine-managed buffers (MapState analogue) — held in a
            # JoinStateBackend so the key-group machinery (migrate,
            # LiveMigration, sharded checkpoints) moves them like any
            # other keyed state.
            backend = JoinStateBackend(env, max_key_groups=self._plan.max_key_groups)
            operator: Any = IntervalJoinOperator(
                lower=node.params["lower"],
                upper=node.params["upper"],
                join_fn=node.params["fn"],
                name=name,
            )
        else:
            backend = factory(env, fs, name, node.params["info"])
            operator = WindowOperator(
                assigner=node.params["assigner"],
                function=node.params["fn"],
                name=name,
                with_window=node.params.get("with_window", False),
            )
        instance = PhysicalInstance(
            name=name, env=env, operator=operator,
            cluster_node=self.cluster_node_of(index) or 0,
        )
        operator.open(env, backend, instance.outbox.append)
        return instance

    def _build_instances(self) -> None:
        # Join state is engine-managed; only window nodes need a KV
        # backend, so a join-only plan may run (and checkpoint) without
        # a backend_factory.
        if self._plan.backend_factory is None and any(
            node.kind == "window" for node in self._stateful_nodes
        ):
            raise PlanError("StreamEnvironment has no backend_factory")
        for node in self._stateful_nodes:
            self._instances[node.node_id] = [
                self._new_instance(node, i) for i in range(self.current_parallelism)
            ]

    # ------------------------------------------------------------------
    def run(
        self,
        arrival_rate: float | None = None,
        watermark_interval: int = 50,
        sim_timeout: float | None = None,
        overload_backlog: float = 600.0,
        watermark_delay: float = 0.0,
        rescale_policy: Any = None,
        records: list | None = None,
        start_count: int = 0,
        start_max_ts: float = float("-inf"),
        checkpointer: Any = None,
        rescale_mode: str = "live",
        transfer_chunk_bytes: int | None = None,
        transfer_queue_limit: int | None = None,
        seed_rescale_from_checkpoint: bool = True,
    ) -> JobResult:
        """Execute the job.

        Args:
            arrival_rate: records/second open-loop arrival rate; None runs
                in throughput mode (all records available at time 0).
            watermark_interval: records between watermark broadcasts.
            sim_timeout: abort with :class:`SimTimeoutError` once any
                instance's busy time exceeds this many simulated seconds
                (the paper kills jobs at 7200 s).
            overload_backlog: in latency mode, abort with
                :class:`EngineOverloadError` when any instance's queue
                backlog exceeds this many seconds.
            watermark_delay: bounded out-of-orderness — watermarks trail
                the maximum seen timestamp by this much, so records up to
                ``delay`` late are still on time.
            rescale_policy: an object with ``decide(LoadObservation) ->
                int | None`` (e.g. :class:`~repro.rescale.controller.
                ScheduledRescale` or ``RescaleController``), consulted at
                every watermark boundary; a non-None decision triggers a
                stop-the-world rescale to that parallelism.
            records: pre-materialized ``(source_node, value, timestamp)``
                list to run from instead of the plan's sources.  The
                recovery manager materializes sources once so replays see
                the identical record sequence.
            start_count: resume position into ``records`` (a checkpoint's
                record count); arrival times stay on the absolute grid.
            start_max_ts: the watermark state at the checkpoint.
            checkpointer: optional :class:`repro.recovery.Checkpointer`
                consulted at every watermark boundary.
            rescale_mode: ``"live"`` (default) migrates state per
                key-group while un-moved groups keep serving
                (:class:`~repro.rescale.live.LiveMigration`); ``"stw"``
                uses the stop-the-world path; ``"promote"`` runs the
                live path but seeds clean moved groups from warm standby
                replicas (requires changelog replication to be active).
            transfer_chunk_bytes: live-mode per-chunk byte budget.
            transfer_queue_limit: live-mode bound on records buffered per
                in-transit key-group before backpressure forces its
                cutover.
            seed_rescale_from_checkpoint: live-mode only — seed moved
                key-groups that are *clean* since the last checkpoint
                from that checkpoint's shards (checkpoint-read I/O)
                instead of streaming them live; requires a sharding
                ``checkpointer``.
        """
        if rescale_mode not in ("live", "stw", "promote"):
            raise PlanError(f"unknown rescale_mode {rescale_mode!r}")
        self._rescale_mode = rescale_mode
        self._transfer_chunk_bytes = transfer_chunk_bytes
        self._transfer_queue_limit = transfer_queue_limit
        self._checkpointer = checkpointer
        self._seed_rescale = seed_rescale_from_checkpoint
        faults = self._plan.faults
        if records is not None:
            merged = iter(records[start_count:])
        else:
            merged = self._merged_sources()
        count = start_count
        max_ts = start_max_ts
        arrival = 0.0
        failure: str | None = None
        self._last_busy = self._busy_sum()
        self._last_arrival = 0.0
        cluster = self._plan.cluster
        # Latency mode needs the per-record arrival axis, so batching is
        # a throughput-mode-only optimization; batch size 1 takes the
        # exact legacy per-tuple path.
        batch_limit = 1 if arrival_rate else max(1, self._plan.max_batch_records)
        boundary_args = (
            arrival_rate, watermark_delay, sim_timeout, overload_backlog,
            rescale_policy, checkpointer, faults,
        )
        try:
            if batch_limit > 1:
                count = self._run_batched(
                    merged, count, max_ts, watermark_interval, batch_limit,
                    faults, cluster, boundary_args,
                )
            else:
                for source_node, value, timestamp in merged:
                    if faults is not None:
                        faults.crash_point(
                            CRASH_RUNTIME_RECORD, now_fn=self._busiest_clock
                        )
                    if arrival_rate:
                        arrival = count / arrival_rate
                    record = StreamRecord(b"", value, timestamp)
                    if self._first_ts is None:
                        self._first_ts = timestamp
                    # Source tasks are sharded round-robin over cluster
                    # nodes; the record's first shuffle hop starts from
                    # its ingest node.
                    origin = 0 if cluster is None else cluster.ingest_node(count)
                    self._push(source_node, record, arrival, origin)
                    count += 1
                    self.records_ingested = count
                    if timestamp > max_ts:
                        max_ts = timestamp
                    if self._live is not None:
                        # One chunk per transfer channel per ingested
                        # record: the migration interleaves with processing.
                        self._live.advance(arrival)
                        if self._live.done:
                            self._live = None
                    if count % watermark_interval == 0:
                        self._watermark_boundary(count, max_ts, arrival, *boundary_args)
            self._finish(arrival)
        except SimTimeoutError:
            failure = "timeout"
        except EngineOverloadError:
            failure = "overload"
        return self._result(count, failure)

    def _run_batched(
        self,
        merged,
        count: int,
        max_ts: float,
        watermark_interval: int,
        batch_limit: int,
        faults,
        cluster,
        boundary_args: tuple,
    ) -> int:
        """Throughput-mode ingest loop over columnar record batches.

        Per-record bookkeeping (crash points, ingest counting, watermark
        tracking, live-migration advance) is unchanged; only delivery is
        buffered.  Three invariants keep the simulated run equivalent to
        per-tuple execution:

        * a watermark due mid-batch flushes the partial batch *before*
          broadcasting, so timer firing order is identical;
        * while a live migration is in flight, records bypass the buffer
          and take the per-record path (the migration's intercept and
          advance hooks are per-record by contract);
        * batches split at key-group boundaries on delivery, so each
          instance still sees exactly its own records, in arrival order.
        """
        arrival = 0.0
        byte_limit = self._plan.max_batch_bytes
        pending: list[tuple[LogicalNode, Any, float, int]] = []
        pending_bytes = 0
        for source_node, value, timestamp in merged:
            if faults is not None:
                faults.crash_point(CRASH_RUNTIME_RECORD, now_fn=self._busiest_clock)
            if self._first_ts is None:
                self._first_ts = timestamp
            origin = 0 if cluster is None else cluster.ingest_node(count)
            if self._live is not None:
                self._push(
                    source_node, StreamRecord(b"", value, timestamp), arrival, origin
                )
            else:
                pending.append((source_node, value, timestamp, origin))
                if byte_limit is not None:
                    pending_bytes += record_bytes(value)
            count += 1
            self.records_ingested = count
            if timestamp > max_ts:
                max_ts = timestamp
            if self._live is not None:
                self._live.advance(arrival)
                if self._live.done:
                    self._live = None
            if len(pending) >= batch_limit or (
                byte_limit is not None and pending_bytes >= byte_limit
            ):
                self._flush_pending(pending, arrival)
                pending_bytes = 0
            if count % watermark_interval == 0:
                # Watermark-split invariant: deliver the partial batch
                # first so triggers see every record before the watermark.
                if pending:
                    self._flush_pending(pending, arrival)
                    pending_bytes = 0
                self._watermark_boundary(count, max_ts, arrival, *boundary_args)
        if pending:
            self._flush_pending(pending, arrival)
        return count

    def _flush_pending(
        self, pending: list[tuple[LogicalNode, Any, float, int]], arrival: float
    ) -> None:
        """Deliver buffered source rows as per-source-node record runs."""
        start = 0
        n = len(pending)
        while start < n:
            node = pending[start][0]
            end = start + 1
            while end < n and pending[end][0] is node:
                end += 1
            rows = pending[start:end]
            batch = RecordBatch(
                [b""] * len(rows),
                [row[1] for row in rows],
                [row[2] for row in rows],
                [row[3] for row in rows],
            )
            self._push_batch(node, batch, arrival)
            start = end
        pending.clear()

    def _watermark_boundary(
        self,
        count: int,
        max_ts: float,
        arrival: float,
        arrival_rate: float | None,
        watermark_delay: float,
        sim_timeout: float | None,
        overload_backlog: float,
        rescale_policy,
        checkpointer,
        faults,
    ) -> None:
        self._broadcast_watermark(max_ts - watermark_delay, arrival)
        if faults is not None:
            faults.crash_point(CRASH_RUNTIME_WATERMARK, now_fn=self._busiest_clock)
        self._check_limits(sim_timeout, arrival_rate, arrival, overload_backlog)
        # Policy and checkpoints wait for an in-flight migration to
        # settle: decide() is not even consulted, so scheduled thresholds
        # are not consumed mid-flight.
        if rescale_policy is not None and self._live is None:
            busy = self._busy_sum()
            utilization = None
            if arrival_rate and arrival > self._last_arrival:
                n = max(1, self.current_parallelism)
                utilization = (busy - self._last_busy) / n / (arrival - self._last_arrival)
            # One signal path: the per-instance backlog breakdown feeds
            # the SkewController, its max is the aggregate the
            # RescaleController has always seen.
            backlogs = self._instance_backlogs(arrival, arrival_rate, max_ts)
            observation = LoadObservation(
                record_count=count,
                parallelism=self.current_parallelism,
                utilization=utilization,
                backlog_seconds=max(backlogs) if backlogs else 0.0,
                per_instance_backlog=tuple(backlogs),
                owner_table=tuple(self.group_owner),
                group_busy=tuple(self.load_tracker.group_busy),
            )
            self._last_busy, self._last_arrival = busy, arrival
            target = rescale_policy.decide(observation)
            if isinstance(target, SplitDecision):
                table = list(target.table)
                if table != self.group_owner:
                    self.rebalance_to(
                        table, arrival=arrival, at_record=count,
                        hot_groups=list(target.hot_groups),
                    )
            elif target is not None and target != self.current_parallelism:
                self.rescale_to(target, arrival=arrival, at_record=count)
        if checkpointer is not None and self._live is None:
            checkpointer.maybe_checkpoint(self, count, max_ts, rescale_policy)

    # ------------------------------------------------------------------
    def rescale_to(
        self, new_parallelism: int, arrival: float = 0.0, at_record: int = 0
    ) -> RescaleEvent:
        """Rescale to ``new_parallelism``; the event is recorded on the
        job result.

        In ``"live"`` mode (the default) this *starts* an asynchronous
        per-key-group migration (:mod:`repro.rescale.live`) that the run
        loop drives forward one chunk batch per record; ``"stw"`` runs
        the whole stop-the-world migration before returning
        (:mod:`repro.rescale.migration`).
        """
        if self._rescale_mode in ("live", "promote"):
            live = LiveMigration(
                self, new_parallelism, arrival=arrival, at_record=at_record,
                chunk_bytes=self._transfer_chunk_bytes,
                queue_limit=self._transfer_queue_limit,
                seed_source=self._live_seed_source(),
            )
            self._rescales.append(live.event)
            if not live.done:
                self._live = live
            return live.event
        event = migrate(self, new_parallelism, arrival=arrival, at_record=at_record)
        self._rescales.append(event)
        return event

    def rebalance_to(
        self,
        table: list[int],
        arrival: float = 0.0,
        at_record: int = 0,
        hot_groups: list[int] | None = None,
    ) -> RescaleEvent:
        """Re-place key-groups onto an explicit owner table (skew split).

        Parallelism is unchanged; only key-groups whose owner differs
        between the current routing table and ``table`` move, via the
        same live per-group machinery as a rescale (drain once, bounded
        buffer-and-replay, per-group cutover, partial rollback on
        faults).  Used by the
        :class:`~repro.rescale.skew.SkewController`; works under any
        ``rescale_mode`` (a split is inherently per-group, so there is
        no stop-the-world variant)."""
        live = LiveMigration(
            self, self.current_parallelism, arrival=arrival, at_record=at_record,
            chunk_bytes=self._transfer_chunk_bytes,
            queue_limit=self._transfer_queue_limit,
            seed_source=(
                self._live_seed_source()
                if self._rescale_mode in ("live", "promote")
                else None
            ),
            target_table=table,
            reason="skew-split",
            hot_groups=hot_groups,
        )
        self._rescales.append(live.event)
        if not live.done:
            self._live = live
        return live.event

    def _live_seed_source(self) -> Any:
        """Where a live migration may seed clean moved groups from."""
        if self._rescale_mode == "promote":
            # Rescale-by-replica-promotion: clean moved groups land
            # from the peer's warm standby copy instead of the
            # checkpoint store or the owner's hot path.
            if self._replication is not None:
                return self._replication.seed_source()
            return None
        if self._seed_rescale and self._checkpointer is not None:
            seed_fn = getattr(self._checkpointer, "seed_source", None)
            if seed_fn is not None:
                return seed_fn()
        return None

    def rebuild_for_restore(self, parallelism: int) -> None:
        """Redeploy all stateful nodes at ``parallelism`` with fresh state.

        Recovery builds the post-crash executor with this before loading
        checkpointed snapshots into the (empty) instances: the checkpoint
        dictates the parallelism, not the plan's default.
        """
        for node in self._stateful_nodes:
            for instance in self._instances[node.node_id]:
                backend = instance.operator.backend
                if backend is not None:
                    backend.close()
            self._instances[node.node_id] = [
                self._new_instance(node, i) for i in range(parallelism)
            ]
        self.current_parallelism = parallelism
        self.group_owner = contiguous_owner_table(
            self._plan.max_key_groups, parallelism
        )

    def _busiest_clock(self) -> float:
        return max(
            (inst.env.clock.now for insts in self._instances.values() for inst in insts),
            default=0.0,
        )

    def _busy_sum(self) -> float:
        """Total busy time over live and retired instances (monotonic)."""
        live = sum(
            inst.env.clock.now
            for insts in self._instances.values()
            for inst in insts
        )
        retired = sum(
            busy for reports in self._retired.values() for _s, busy, _r in reports
        )
        return live + retired

    def _backlog_signal(
        self, arrival: float, arrival_rate: float | None, max_ts: float
    ) -> float:
        """Aggregate backlog: the worst entry of the per-instance signal."""
        backlogs = self._instance_backlogs(arrival, arrival_rate, max_ts)
        return max(backlogs) if backlogs else 0.0

    def _instance_backlogs(
        self, arrival: float, arrival_rate: float | None, max_ts: float
    ) -> list[float]:
        """Source-queue backlog estimate, per physical instance index.

        Latency mode has a real arrival axis: an instance's backlog is
        how far its completion horizon trails the current arrival (max
        over the stateful operators sharing the index).  Throughput mode
        has no arrival clock, so the event-time span ingested so far
        serves as the wall-time proxy: busy time beyond that span means
        the instance cannot keep up with its sources in real time.  The
        aggregate the :class:`~repro.rescale.controller.RescaleController`
        watches is exactly ``max`` of this list; the per-index breakdown
        lets the :class:`~repro.rescale.skew.SkewController` see *which*
        instance is pinned — one signal path for both.
        """
        width = max((len(insts) for insts in self._instances.values()), default=0)
        if width == 0:
            return []
        if arrival_rate:
            per_index = [float("-inf")] * width
            for insts in self._instances.values():
                for index, inst in enumerate(insts):
                    value = inst.wall_available - arrival
                    if value > per_index[index]:
                        per_index[index] = value
            return per_index
        if self._first_ts is None or max_ts == float("-inf"):
            return []
        span = max(0.0, max_ts - self._first_ts)
        per_index = [0.0] * width
        for insts in self._instances.values():
            for index, inst in enumerate(insts):
                if inst.env.clock.now > per_index[index]:
                    per_index[index] = inst.env.clock.now
        return [max(0.0, value - span) for value in per_index]

    def _merged_sources(self):
        """Merge all sources in timestamp order."""
        streams = []
        for idx, (node, records) in enumerate(self._plan.sources()):
            iterator = iter(records)
            streams.append((idx, node, iterator))
        heap = []
        for idx, node, iterator in streams:
            first = next(iterator, None)
            if first is not None:
                value, ts = first
                heap.append((ts, idx, value, node, iterator))
        heapq.heapify(heap)
        while heap:
            ts, idx, value, node, iterator = heapq.heappop(heap)
            yield node, value, ts
            nxt = next(iterator, None)
            if nxt is not None:
                nvalue, nts = nxt
                heapq.heappush(heap, (nts, idx, nvalue, node, iterator))

    # ------------------------------------------------------------------
    def _push(
        self, node: LogicalNode, record: StreamRecord, arrival: float, origin: int = 0
    ) -> None:
        for child in self._children.get(node.node_id, []):
            self._handle(child, record, arrival, origin)

    def _handle(
        self, node: LogicalNode, record: StreamRecord, arrival: float, origin: int = 0
    ) -> None:
        """Process one record at ``node``.

        ``origin`` is the cluster node the record currently lives on
        (its ingest node, or the node of the instance that emitted it);
        stateless transforms run where the record already is, so only the
        keyed hand-off to a stateful instance can cross the network.
        """
        kind = node.kind
        if kind == "map":
            out = StreamRecord(record.key, node.params["fn"](record.value), record.timestamp)
            self._push(node, out, arrival, origin)
        elif kind == "filter":
            if node.params["fn"](record.value):
                self._push(node, record, arrival, origin)
        elif kind == "flat_map":
            for value in node.params["fn"](record.value):
                self._push(
                    node, StreamRecord(record.key, value, record.timestamp),
                    arrival, origin,
                )
        elif kind == "key_by":
            key = node.params["fn"](record.value)
            if not isinstance(key, bytes):
                raise PlanError(f"key_by {node.name} must return bytes, got {type(key)}")
            self._push(node, StreamRecord(key, record.value, record.timestamp), arrival, origin)
        elif kind == "union":
            self._push(node, record, arrival, origin)
        elif kind in ("window", "interval_join"):
            if self._live is not None and self._live.intercept(node, record, arrival):
                return  # buffered: replays at the new owner on cutover
            group = key_group_of(record.key, self._plan.max_key_groups)
            inst_index = self.group_owner[group]
            instance = self._instances[node.node_id][inst_index]
            cluster = self._plan.cluster
            if cluster is not None and origin != instance.cluster_node:
                # Cross-node shuffle hop: the receive wait occupies the
                # destination instance (charged inside its service time).
                # Shuffle channels stay open and pipelined, so a record
                # pays wire bandwidth only (n_requests=0): per-record
                # round-trip latency would serialize throughput in a way
                # no streaming shuffle does.
                wire_bytes = cluster.network.record_overhead_bytes + len(record.key)

                def thunk(inst=instance, rec=record, org=origin, wire=wire_bytes):
                    charge_link(
                        inst.env, cluster.network, org, inst.cluster_node, wire,
                        f"net/shuffle/{node.name}", self._plan.faults,
                        n_requests=0,
                    )
                    inst.operator.process(rec)

                service = self._run_unit(node, instance, arrival, thunk)
            else:
                service = self._run_unit(
                    node, instance, arrival, lambda: instance.operator.process(record)
                )
            self.load_tracker.record(
                group, inst_index, instance.cluster_node,
                1, len(record.key) + record_bytes(record.value), service,
            )
        elif kind == "sink":
            self._sinks[node.name].append(record.value)
            self._latencies.append(max(0.0, arrival - record.timestamp))
        else:  # pragma: no cover - source has no inbound records
            raise PlanError(f"cannot handle node kind {kind}")

    # ------------------------------------------------------------------
    # batched hot path: columnar batches flow through stateless
    # transforms without boxing records; rows materialize only at the
    # keyed hand-off to a stateful instance (split per key-group there)
    # or at a sink.
    # ------------------------------------------------------------------
    def _push_batch(self, node: LogicalNode, batch: RecordBatch, arrival: float) -> None:
        for child in self._children.get(node.node_id, []):
            self._handle_batch(child, batch, arrival)

    def _handle_batch(self, node: LogicalNode, batch: RecordBatch, arrival: float) -> None:
        kind = node.kind
        if kind == "map":
            fn = node.params["fn"]
            self._push_batch(
                node, batch.with_values([fn(v) for v in batch.values]), arrival
            )
        elif kind == "filter":
            fn = node.params["fn"]
            kept = [i for i, v in enumerate(batch.values) if fn(v)]
            if kept:
                if len(kept) == len(batch):
                    self._push_batch(node, batch, arrival)
                else:
                    self._push_batch(node, batch.take(kept), arrival)
        elif kind == "flat_map":
            fn = node.params["fn"]
            keys: list[bytes] = []
            values: list[Any] = []
            timestamps: list[float] = []
            origins: list[int] = []
            in_keys = batch.keys
            in_ts = batch.timestamps
            in_origins = batch.origins
            for i, v in enumerate(batch.values):
                for out in fn(v):
                    keys.append(in_keys[i])
                    values.append(out)
                    timestamps.append(in_ts[i])
                    origins.append(in_origins[i])
            if values:
                self._push_batch(
                    node, RecordBatch(keys, values, timestamps, origins), arrival
                )
        elif kind == "key_by":
            fn = node.params["fn"]
            keys = []
            for v in batch.values:
                key = fn(v)
                if not isinstance(key, bytes):
                    raise PlanError(
                        f"key_by {node.name} must return bytes, got {type(key)}"
                    )
                keys.append(key)
            self._push_batch(node, batch.with_keys(keys), arrival)
        elif kind == "union":
            self._push_batch(node, batch, arrival)
        elif kind in ("window", "interval_join"):
            if self._live is not None:
                # Per-record fallback while a migration is in flight: the
                # intercept hook buffers moved-group records one by one.
                for record, origin in batch.iter_rows():
                    self._handle(node, record, arrival, origin)
                return
            self._deliver_batch(node, batch, arrival)
        elif kind == "sink":
            self._sinks[node.name].extend(batch.values)
            latencies = self._latencies
            for ts in batch.timestamps:
                latencies.append(max(0.0, arrival - ts))
        else:  # pragma: no cover - source has no inbound records
            raise PlanError(f"cannot handle node kind {kind}")

    def _deliver_batch(self, node: LogicalNode, batch: RecordBatch, arrival: float) -> None:
        """Split a batch at key-group boundaries and hand each routed
        instance its rows (arrival order preserved within an instance).

        One work unit per (batch, instance): remote rows pay their wire
        charge first — all charges land on the instance's own env, so
        per-category charge order matches per-tuple delivery.
        """
        instances = self._instances[node.node_id]
        owner = self.group_owner
        max_groups = self._plan.max_key_groups
        keys = batch.keys
        order: list[int] = []
        grouped: dict[int, list[int]] = {}
        row_group: list[int] = []
        for i, key in enumerate(keys):
            group = key_group_of(key, max_groups)
            row_group.append(group)
            inst_index = owner[group]
            rows = grouped.get(inst_index)
            if rows is None:
                grouped[inst_index] = rows = []
                order.append(inst_index)
            rows.append(i)
        values = batch.values
        timestamps = batch.timestamps
        origins = batch.origins
        cluster = self._plan.cluster
        for inst_index in order:
            instance = instances[inst_index]
            rows = grouped[inst_index]
            records = [
                StreamRecord(keys[i], values[i], timestamps[i]) for i in rows
            ]
            if cluster is not None:
                overhead = cluster.network.record_overhead_bytes
                remote = [
                    (origins[i], overhead + len(keys[i]))
                    for i in rows
                    if origins[i] != instance.cluster_node
                ]
            else:
                remote = ()

            def thunk(inst=instance, recs=records, hops=remote):
                for org, wire in hops:
                    charge_link(
                        inst.env, cluster.network, org, inst.cluster_node, wire,
                        f"net/shuffle/{node.name}", self._plan.faults,
                        n_requests=0,
                    )
                inst.operator.process_batch(recs)

            service = self._run_unit(node, instance, arrival, thunk)
            per_group: dict[int, list[int]] = {}
            for i in rows:
                tally = per_group.get(row_group[i])
                if tally is None:
                    per_group[row_group[i]] = tally = [0, 0]
                tally[0] += 1
                tally[1] += len(keys[i]) + record_bytes(values[i])
            self.load_tracker.record_many(
                inst_index, instance.cluster_node,
                [(g, n, b) for g, (n, b) in sorted(per_group.items())], service,
            )

    def _run_unit(
        self, node: LogicalNode, instance: PhysicalInstance, arrival: float, thunk
    ) -> float:
        start = instance.env.clock.now
        thunk()
        service = instance.env.clock.now - start
        instance.wall_available = max(arrival, instance.wall_available) + service
        completion = instance.wall_available
        if instance.outbox:
            emitted = list(instance.outbox)
            instance.outbox.clear()
            for out in emitted:
                self._push(node, out, completion, origin=instance.cluster_node)
        return service

    def _broadcast_watermark(self, watermark: float, arrival: float) -> None:
        for node in self._stateful_nodes:
            for instance in self._instances[node.node_id]:
                self._run_unit(
                    node, instance, arrival,
                    lambda inst=instance: inst.operator.on_watermark(watermark),
                )

    def _finish(self, arrival: float) -> None:
        # End of input: an in-flight migration must settle before the
        # final triggers fire, or buffered records would be lost.
        if self._live is not None:
            self._live.drain_to_completion(arrival)
            self._live = None
        for node in self._stateful_nodes:
            for instance in self._instances[node.node_id]:
                self._run_unit(
                    node, instance, arrival,
                    lambda inst=instance: inst.operator.finish(),
                )

    def _check_limits(
        self,
        sim_timeout: float | None,
        arrival_rate: float | None,
        arrival: float,
        overload_backlog: float,
    ) -> None:
        if sim_timeout is not None:
            busiest = max(
                (inst.env.clock.now for insts in self._instances.values() for inst in insts),
                default=0.0,
            )
            if busiest > sim_timeout:
                raise SimTimeoutError(f"busy time {busiest:.0f}s exceeds {sim_timeout:.0f}s")
        if arrival_rate:
            backlog = max(
                (inst.wall_available - arrival
                 for insts in self._instances.values() for inst in insts),
                default=0.0,
            )
            if backlog > overload_backlog:
                raise EngineOverloadError(f"backlog {backlog:.0f}s at rate {arrival_rate}")

    # ------------------------------------------------------------------
    def _result(self, count: int, failure: str | None) -> JobResult:
        total = MetricsLedger()
        per_operator: dict[str, MetricsSnapshot] = {}
        operator_stats: dict[str, dict[str, Any]] = {}
        cluster = self._plan.cluster
        # Per cluster node: summed busy time, busiest instance, instance
        # count, and network traffic — feeds the node-capacity job model.
        node_busy: dict[int, float] = {}
        node_peak: dict[int, float] = {}
        node_count: dict[int, int] = {}
        node_net: dict[int, tuple[float, int]] = {}
        job_seconds = 0.0
        for node in self._stateful_nodes:
            node_ledger = MetricsLedger()
            stats: dict[str, Any] = {"results": 0, "memory_bytes": 0}
            for instance in self._instances[node.node_id]:
                snapshot = instance.env.ledger.snapshot()
                node_ledger.merge(snapshot)
                total.merge(snapshot)
                job_seconds = max(job_seconds, instance.env.clock.now)
                if cluster is not None:
                    host = instance.cluster_node
                    busy = instance.env.clock.now
                    node_busy[host] = node_busy.get(host, 0.0) + busy
                    node_peak[host] = max(node_peak.get(host, 0.0), busy)
                    node_count[host] = node_count.get(host, 0) + 1
                    secs, nbytes = node_net.get(host, (0.0, 0))
                    node_net[host] = (
                        secs + snapshot.network_seconds,
                        nbytes + snapshot.network_bytes,
                    )
                stats["results"] += instance.operator.results_emitted
                backend = instance.operator.backend
                stats["memory_bytes"] += getattr(backend, "memory_bytes", 0)
                for attr in ("compaction_count", "disk_bytes", "prefetch_loads", "prefetch_hits"):
                    value = getattr(backend, attr, None)
                    if value is not None:
                        stats[attr] = stats.get(attr, 0) + value
            # Instances retired by a scale-down still contributed work.
            for snapshot, busy, results in self._retired.get(node.node_id, []):
                node_ledger.merge(snapshot)
                total.merge(snapshot)
                job_seconds = max(job_seconds, busy)
                stats["results"] += results
            loads = stats.get("prefetch_loads", 0)
            if loads:
                stats["prefetch_hit_ratio"] = stats.get("prefetch_hits", 0) / loads
            per_operator[node.name] = node_ledger.snapshot()
            operator_stats[node.name] = stats
        node_stats: dict[str, dict[str, Any]] = {}
        if cluster is not None:
            # Node-capacity job time: a node with more runnable instances
            # than cores cannot overlap them all, so it finishes no sooner
            # than its total work divided by its cores — and never sooner
            # than its busiest single (sequential) instance.  Job time is
            # the slowest node, not a bare max-over-instances.
            for host, machine in enumerate(cluster.nodes):
                busy = node_busy.get(host, 0.0)
                peak = node_peak.get(host, 0.0)
                node_seconds = max(peak, busy / machine.cores)
                job_seconds = max(job_seconds, node_seconds)
                secs, nbytes = node_net.get(host, (0.0, 0))
                node_stats[machine.name] = {
                    "instances": node_count.get(host, 0),
                    "cores": machine.cores,
                    "busy_seconds": busy,
                    "node_seconds": node_seconds,
                    "network_seconds": secs,
                    "network_bytes": nbytes,
                    "keyed_records": self.load_tracker.node_records.get(host, 0),
                    "keyed_busy_seconds": self.load_tracker.node_busy.get(host, 0.0),
                }
            for entry in node_stats.values():
                entry["utilization"] = (
                    entry["busy_seconds"] / (entry["cores"] * job_seconds)
                    if job_seconds > 0 else 0.0
                )
        return JobResult(
            sink_outputs=dict(self._sinks),
            latencies=self._latencies,
            job_seconds=job_seconds,
            input_records=count,
            metrics=total.snapshot(),
            per_operator=per_operator,
            operator_stats=operator_stats,
            failure=failure,
            rescales=list(self._rescales),
            node_stats=node_stats,
            group_load=self.load_tracker.summary(),
        )
