"""Logical plan construction: the fluent DataStream API (§2.1).

A streaming application is a DAG of logical operations; the environment
compiles it into a physical plan with ``parallelism`` instances per window
operator, each owning a private state-store instance (Figure 1).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.engine.functions import AggregateFunction, ProcessWindowFunction
from repro.engine.state import BackendFactory, OperatorInfo
from repro.engine.windows import SessionWindowAssigner, WindowAssigner
from repro.errors import PlanError
from repro.rescale.keygroups import DEFAULT_MAX_KEY_GROUPS, validate_parallelism
from repro.simenv import CpuCostModel, SsdCostModel


@dataclass
class LogicalNode:
    """One vertex of the logical plan."""

    node_id: int
    kind: str  # source | map | filter | flat_map | key_by | window | union | sink
    name: str
    params: dict[str, Any] = field(default_factory=dict)
    parents: list["LogicalNode"] = field(default_factory=list)


class DataStream:
    """A handle to a logical node, with transformation methods."""

    def __init__(self, env: "StreamEnvironment", node: LogicalNode) -> None:
        self._env = env
        self._node = node

    @property
    def node(self) -> LogicalNode:
        return self._node

    def _child(self, kind: str, name: str, **params: Any) -> "DataStream":
        node = self._env._add_node(kind, name, parents=[self._node], **params)
        return DataStream(self._env, node)

    def map(self, fn: Callable[[Any], Any], name: str = "map") -> "DataStream":
        """Transform each value."""
        return self._child("map", name, fn=fn)

    def filter(self, predicate: Callable[[Any], bool], name: str = "filter") -> "DataStream":
        """Keep only values where ``predicate`` holds."""
        return self._child("filter", name, fn=predicate)

    def flat_map(
        self, fn: Callable[[Any], Iterable[Any]], name: str = "flat_map"
    ) -> "DataStream":
        """Transform each value into zero or more values."""
        return self._child("flat_map", name, fn=fn)

    def key_by(self, key_fn: Callable[[Any], bytes], name: str = "key_by") -> "DataStream":
        """Partition the stream by ``key_fn(value)`` (must return bytes)."""
        return self._child("key_by", name, fn=key_fn)

    def union(self, *others: "DataStream", name: str = "union") -> "DataStream":
        """Merge this stream with ``others``."""
        node = self._env._add_node(
            "union", name, parents=[self._node] + [o._node for o in others]
        )
        return DataStream(self._env, node)

    def window(self, assigner: WindowAssigner) -> "WindowedStream":
        """Group the keyed stream into windows."""
        return WindowedStream(self._env, self._node, assigner)

    def interval_join(
        self,
        other: "DataStream",
        lower: float,
        upper: float,
        join_fn: Callable[[Any, Any], Any],
        name: str = "interval_join",
    ) -> "DataStream":
        """Join two keyed streams on ``other.ts in [ts+lower, ts+upper]``.

        Both streams must be keyed (by compatible key functions); the
        join emits ``join_fn(left_value, right_value)`` per matching pair
        (§8, Join Operations).
        """
        left = self._child("map", f"{name}/tag_left", fn=lambda v: ("L", v))
        right = other._child("map", f"{name}/tag_right", fn=lambda v: ("R", v))
        merged = left.union(right, name=f"{name}/inputs")
        node = self._env._add_node(
            "interval_join", name, parents=[merged._node],
            lower=float(lower), upper=float(upper), fn=join_fn,
        )
        return DataStream(self._env, node)

    def sink(self, name: str = "sink") -> "DataStream":
        """Terminal collection point; results appear in the job result."""
        return self._child("sink", name)


class WindowedStream:
    """A keyed stream grouped by a window assigner."""

    def __init__(
        self, env: "StreamEnvironment", node: LogicalNode, assigner: WindowAssigner
    ) -> None:
        self._env = env
        self._node = node
        self._assigner = assigner

    def aggregate(
        self, fn: AggregateFunction, name: str = "aggregate", with_window: bool = False
    ) -> DataStream:
        """Incremental aggregation — the RMW access pattern.

        With ``with_window`` the operator emits ``(key, window, result)``
        triples so downstream stages can re-group by window (Q5 shape).
        """
        return self._window_node(fn, name, with_window)

    def process(
        self, fn: ProcessWindowFunction, name: str = "process", with_window: bool = False
    ) -> DataStream:
        """Full-window processing — the Append access pattern."""
        return self._window_node(fn, name, with_window)

    def _window_node(
        self, fn: AggregateFunction | ProcessWindowFunction, name: str, with_window: bool
    ) -> DataStream:
        gap = self._assigner.gap if isinstance(self._assigner, SessionWindowAssigner) else None
        info = OperatorInfo(
            name=name,
            incremental=isinstance(fn, AggregateFunction),
            window_kind=self._assigner.kind,
            session_gap=gap,
            aligned_hint=getattr(self._assigner, "aligned_hint", None),
            ett_predictor=self._assigner.make_predictor(),
            prefetch_depth=self._env.prefetch_depth,
        )
        node = self._env._add_node(
            "window", name, parents=[self._node],
            assigner=self._assigner, fn=fn, info=info, with_window=with_window,
        )
        return DataStream(self._env, node)


class StreamEnvironment:
    """Builds a logical plan and executes it on simulated time.

    Args:
        parallelism: physical instances per window operator (per worker).
        backend_factory: builds one state backend per physical instance;
            see :mod:`repro.bench.backends` for the four paper backends.
        cpu / ssd: cost models shared by all instances.
        workers: number of worker machines (Figure 13 scaling); the
            effective window-operator parallelism is
            ``parallelism * workers``.
        max_key_groups: number of key-groups keyed state is hashed into
            — the unit of ownership for elastic rescaling.  Fixed for
            the lifetime of the job; physical parallelism can never
            exceed it.
        faults: optional :class:`repro.faults.FaultInjector` shared by
            every physical instance's environment (fault injection and
            crash points).
        cluster: optional :class:`repro.cluster.ClusterTopology`.  With a
            cluster, physical instances are placed on simulated nodes
            (round-robin by index) and every cross-node hop — shuffle,
            migration chunk, checkpoint shard — is charged to the
            ``network`` ledger category.  ``None`` (the default) keeps
            the legacy single-machine model, charge-for-charge.
        max_batch_records: records per columnar
            :class:`~repro.engine.batch.RecordBatch` pushed through the
            hot path in throughput mode.  ``1`` (the default) runs the
            exact per-tuple code path; larger batches amortize real
            Python overhead while charging the simulated ledger
            identically per record.  Latency mode (``arrival_rate``)
            always runs per-tuple.
        max_batch_bytes: optional byte budget per batch (estimated
            payload bytes); a batch flushes early when either limit is
            reached.  ``None`` means records-only batching.
        prefetch_depth: per-instance budget of in-flight background
            state prefetches.  Window operators hint upcoming trigger
            reads (and, on stores whose appends read old state, upcoming
            write cells) so the disk backends overlap state I/O with
            compute.  ``0`` (the default) disables prefetching entirely
            — no hints are computed and charges are bit-identical to a
            build without the subsystem.  Hints are advisory and can
            never change job output.
    """

    def __init__(
        self,
        parallelism: int = 2,
        backend_factory: BackendFactory | None = None,
        cpu: CpuCostModel | None = None,
        ssd: SsdCostModel | None = None,
        workers: int = 1,
        max_key_groups: int = DEFAULT_MAX_KEY_GROUPS,
        faults: Any = None,
        cluster: Any = None,
        max_batch_records: int = 1,
        max_batch_bytes: int | None = None,
        prefetch_depth: int = 0,
    ) -> None:
        if parallelism < 1 or workers < 1:
            raise PlanError("parallelism and workers must be >= 1")
        if max_batch_records < 1:
            raise PlanError("max_batch_records must be >= 1")
        if max_batch_bytes is not None and max_batch_bytes < 1:
            raise PlanError("max_batch_bytes must be >= 1 or None")
        if prefetch_depth < 0:
            raise PlanError("prefetch_depth must be >= 0")
        self.max_batch_records = max_batch_records
        self.max_batch_bytes = max_batch_bytes
        self.prefetch_depth = prefetch_depth
        self.max_key_groups = max_key_groups
        validate_parallelism(parallelism * workers, max_key_groups)
        self.parallelism = parallelism
        self.workers = workers
        self.cluster = cluster
        self.backend_factory = backend_factory
        self.cpu = cpu or CpuCostModel()
        self.ssd = ssd or SsdCostModel()
        self.faults = faults
        self._nodes: list[LogicalNode] = []
        self._ids = itertools.count()
        self._sources: list[tuple[LogicalNode, Iterable[tuple[Any, float]]]] = []

    def _add_node(
        self, kind: str, name: str, parents: list[LogicalNode] | None = None, **params: Any
    ) -> LogicalNode:
        node_id = next(self._ids)
        if any(existing.name == name for existing in self._nodes):
            name = f"{name}#{node_id}"
        node = LogicalNode(node_id, kind, name, params, parents or [])
        self._nodes.append(node)
        return node

    def from_source(
        self, records: Iterable[tuple[Any, float]], name: str = "source"
    ) -> DataStream:
        """Register a source of ``(value, event_timestamp)`` pairs.

        Multiple sources are merged in timestamp order at execution time.
        """
        node = self._add_node("source", name)
        self._sources.append((node, records))
        return DataStream(self, node)

    # ------------------------------------------------------------------
    def nodes(self) -> list[LogicalNode]:
        return list(self._nodes)

    def sources(self) -> list[tuple[LogicalNode, Iterable[tuple[Any, float]]]]:
        return list(self._sources)

    def validate(self) -> None:
        """Check the plan: every stateful node must be downstream of key_by
        on every input path."""

        def keyed(node: LogicalNode) -> bool:
            if node.kind == "key_by":
                return True
            if node.kind in ("source", "window", "interval_join"):
                return False  # stateful outputs must be re-keyed explicitly
            if not node.parents:
                return False
            return all(keyed(parent) for parent in node.parents)

        for node in self._nodes:
            if node.kind not in ("window", "interval_join"):
                continue
            if not node.parents or not all(keyed(p) for p in node.parents):
                raise PlanError(f"{node.kind} node {node.name} has an unkeyed input")

    def execute(self, **kwargs: Any):
        """Compile and run the job; see :class:`repro.engine.runtime.Executor`."""
        from repro.engine.runtime import Executor

        self.validate()
        return Executor(self).run(**kwargs)
