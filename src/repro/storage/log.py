"""Framed append-only record logs over the simulated filesystem.

A log is a sequence of length-prefixed records.  Writers batch records in
memory and flush them with a single device write (one request), which is
how every store in this package amortizes SSD request latency.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.serde.codec import decode_varint, encode_varint
from repro.simenv import CAT_STORE_READ, CAT_STORE_WRITE
from repro.storage.filesystem import SimFileSystem


class LogWriter:
    """Buffered writer of length-prefixed records to one file."""

    def __init__(self, fs: SimFileSystem, name: str, category: str = CAT_STORE_WRITE) -> None:
        self._fs = fs
        self._name = name
        self._category = category
        self._buffer = bytearray()
        self._flushed_bytes = fs.size(name) if fs.exists(name) else 0

    @property
    def name(self) -> str:
        return self._name

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    @property
    def total_bytes(self) -> int:
        """Flushed plus buffered bytes (the log's logical end offset)."""
        return self._flushed_bytes + len(self._buffer)

    def append_record(self, payload: bytes) -> int:
        """Buffer one record; returns its eventual file offset."""
        offset = self._flushed_bytes + len(self._buffer)
        self._buffer += encode_varint(len(payload))
        self._buffer += payload
        return offset

    def flush(self) -> None:
        """Write all buffered records with a single device request."""
        if not self._buffer:
            return
        self._fs.append(self._name, bytes(self._buffer), category=self._category)
        self._flushed_bytes += len(self._buffer)
        self._buffer.clear()


class LogReader:
    """Positional and sequential reader of a framed log file."""

    def __init__(self, fs: SimFileSystem, name: str, category: str = CAT_STORE_READ) -> None:
        self._fs = fs
        self._name = name
        self._category = category

    def read_at(self, offset: int, length: int) -> bytes:
        """Read the raw byte range ``[offset, offset+length)`` of the file."""
        return self._fs.read(self._name, offset, length, category=self._category)

    def read_record_at(self, offset: int) -> bytes:
        """Read one framed record starting at ``offset``."""
        # Read the varint header (at most 10 bytes) then the payload.
        header = self._fs.read(self._name, offset, 10, category=self._category)
        length, header_len = decode_varint(header)
        if header_len + length <= len(header):
            return header[header_len : header_len + length]
        return self._fs.read(self._name, offset + header_len, length, category=self._category)

    def iter_records(
        self, start: int = 0, end: int | None = None, chunk_bytes: int = 1 << 20
    ) -> Iterator[tuple[int, bytes]]:
        """Sequentially scan framed records; yields ``(offset, payload)``.

        Reads the file in ``chunk_bytes`` slabs so that a full scan costs
        about ``size / chunk_bytes`` device requests, not one per record.
        """
        file_size = self._fs.size(self._name)
        end = file_size if end is None else min(end, file_size)
        chunk_start = 0
        chunk = b""

        def ensure(pos: int, need: int) -> None:
            """Make ``chunk`` cover ``[pos, pos + need)``."""
            nonlocal chunk, chunk_start
            if pos >= chunk_start and pos + need <= chunk_start + len(chunk):
                return
            chunk_start = pos
            size = min(max(chunk_bytes, need), end - pos)
            chunk = self._fs.read(self._name, pos, size, category=self._category)

        pos = start
        while pos < end:
            ensure(pos, min(10, end - pos))
            length, header_end = decode_varint(chunk, pos - chunk_start)
            record_len = (header_end - (pos - chunk_start)) + length
            ensure(pos, record_len)
            length, header_end = decode_varint(chunk, pos - chunk_start)
            yield pos, bytes(chunk[header_end : header_end + length])
            pos += record_len
