"""In-memory simulated filesystem with SSD-charged access.

Semantics intentionally mirror the subset of POSIX the stores need:
append-only writes, positional reads, delete, rename, and a
``zero_copy_transfer`` that models ``sendfile``-style kernel-side copies
(the paper's AUR compaction uses zero-copy byte transfer, §5).
"""

from __future__ import annotations

from repro.errors import (
    FileExistsInStoreError,
    FileNotFoundInStoreError,
    FileSystemError,
)
from repro.simenv import CAT_STORE_READ, CAT_STORE_WRITE, SimEnv


class SimFileSystem:
    """A flat namespace of append-only files backed by ``bytearray``.

    Every read/write charges the owning environment:

    * one ``syscall`` CPU charge per request,
    * device time per the SSD cost model,
    * user-space copy CPU per byte (except zero-copy transfers).

    CPU charges land in the category passed by the caller so that reads
    issued by compaction are booked as compaction, etc.
    """

    def __init__(self, env: SimEnv) -> None:
        self._env = env
        self._files: dict[str, bytearray] = {}

    # ------------------------------------------------------------------
    # namespace operations (metadata only: charged as a syscall)
    # ------------------------------------------------------------------
    def create(self, name: str) -> None:
        """Create an empty file; error if it already exists."""
        if name in self._files:
            raise FileExistsInStoreError(name)
        self._charge_syscall(CAT_STORE_WRITE)
        self._files[name] = bytearray()

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise FileNotFoundInStoreError(name)
        self._charge_syscall(CAT_STORE_WRITE)
        del self._files[name]

    def rename(self, old: str, new: str) -> None:
        """POSIX ``rename(2)``: atomically replace ``new`` if it exists.

        Atomic replacement is what makes the write-temp-then-rename
        checkpoint commit protocol safe: observers see either the old
        file or the new one, never a partial mix.
        """
        if old not in self._files:
            raise FileNotFoundInStoreError(old)
        self._charge_syscall(CAT_STORE_WRITE)
        self._files[new] = self._files.pop(old)

    def list_files(self, prefix: str = "") -> list[str]:
        return sorted(name for name in self._files if name.startswith(prefix))

    def size(self, name: str) -> int:
        try:
            return len(self._files[name])
        except KeyError:
            raise FileNotFoundInStoreError(name) from None

    def total_bytes(self, prefix: str = "") -> int:
        """Total bytes stored under ``prefix`` (space-amplification checks)."""
        return sum(len(data) for name, data in self._files.items() if name.startswith(prefix))

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------
    def append(self, name: str, data: bytes, category: str = CAT_STORE_WRITE) -> int:
        """Append ``data``; returns the offset at which it was written.

        Creates the file if it does not exist (log files are created lazily
        on first write, like O_CREAT|O_APPEND).
        """
        if self._env.faults is not None:
            # May raise DiskIOError (nothing written) or silently tear /
            # bit-flip the payload (written as mutated, charged as such).
            data = self._env.faults.on_write(name, data, self._env.now)
        buf = self._files.get(name)
        if buf is None:
            buf = bytearray()
            self._files[name] = buf
        offset = len(buf)
        self._charge_syscall(category)
        self._env.charge_cpu(category, len(data) * self._env.cpu.copy_per_byte)
        self._env.charge_write(len(data))
        if len(buf) + len(data) > self._env.ssd.capacity_bytes:
            raise FileSystemError(f"device full writing {name}")
        buf.extend(data)
        return offset

    def read(
        self, name: str, offset: int = 0, length: int | None = None, category: str = CAT_STORE_READ
    ) -> bytes:
        """Read ``length`` bytes at ``offset`` (to EOF if ``length`` is None)."""
        try:
            buf = self._files[name]
        except KeyError:
            raise FileNotFoundInStoreError(name) from None
        if self._env.faults is not None:
            self._env.faults.on_read(name, self._env.now)
        if offset < 0 or offset > len(buf):
            raise FileSystemError(f"read offset {offset} out of range for {name} ({len(buf)}B)")
        end = len(buf) if length is None else min(offset + length, len(buf))
        data = bytes(buf[offset:end])
        self._charge_syscall(category)
        self._env.charge_cpu(category, len(data) * self._env.cpu.copy_per_byte)
        self._env.charge_read(len(data))
        return data

    def read_uncharged(self, name: str) -> bytes:
        """Raw file contents without charging this env.

        Only for callers that account the access elsewhere (asynchronous
        checkpoint uploads charge the uploader's environment instead).
        """
        try:
            return bytes(self._files[name])
        except KeyError:
            raise FileNotFoundInStoreError(name) from None

    def zero_copy_transfer(
        self,
        src: str,
        src_offset: int,
        length: int,
        dst: str,
        category: str = CAT_STORE_WRITE,
    ) -> int:
        """Kernel-side copy of a byte range from ``src`` to the end of ``dst``.

        Charges device read + write time but *no* user-space copy CPU,
        modelling ``sendfile`` as used by the AUR store's compaction (§5).
        Returns the destination offset.
        """
        try:
            src_buf = self._files[src]
        except KeyError:
            raise FileNotFoundInStoreError(src) from None
        if src_offset < 0 or src_offset + length > len(src_buf):
            raise FileSystemError(
                f"zero-copy range [{src_offset}, {src_offset + length}) out of bounds for {src}"
            )
        dst_buf = self._files.get(dst)
        if dst_buf is None:
            dst_buf = bytearray()
            self._files[dst] = dst_buf
        offset = len(dst_buf)
        self._charge_syscall(category)
        self._env.charge_read(length)
        self._env.charge_write(length)
        dst_buf.extend(src_buf[src_offset : src_offset + length])
        return offset

    # ------------------------------------------------------------------
    # damage helpers (tests and fault tooling only: uncharged)
    # ------------------------------------------------------------------
    def corrupt(self, name: str, offset: int, xor_mask: int = 0xFF) -> None:
        """Flip bits of one byte in place, as latent media corruption would."""
        try:
            buf = self._files[name]
        except KeyError:
            raise FileNotFoundInStoreError(name) from None
        if not 0 <= offset < len(buf):
            raise FileSystemError(f"corrupt offset {offset} out of range for {name}")
        buf[offset] ^= xor_mask & 0xFF

    def truncate(self, name: str, length: int) -> None:
        """Drop the file's tail beyond ``length`` bytes (a torn write)."""
        try:
            buf = self._files[name]
        except KeyError:
            raise FileNotFoundInStoreError(name) from None
        del buf[length:]

    def _charge_syscall(self, category: str) -> None:
        self._env.charge_cpu(category, self._env.cpu.syscall)
