"""Simulated storage layer.

Files live in memory as real byte arrays (so on-disk formats are exact and
testable) while every access is charged to the owning :class:`SimEnv`
according to the SSD cost model: a syscall CPU charge plus device time per
request.  This is the substrate on which the LSM baseline, the hash-KV
baseline and all three FlowKV stores build their log and table files.
"""

from repro.storage.filesystem import SimFileSystem
from repro.storage.log import LogReader, LogWriter

__all__ = ["SimFileSystem", "LogWriter", "LogReader"]
