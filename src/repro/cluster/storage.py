"""Replica-placed checkpoint storage for cluster runs.

In a real deployment checkpoint shards live on the workers' local disks
(or a quorum store built from them), not on magic always-available
storage: a shard is uploaded from the instance that produced it to a
small set of replica nodes, a node failure destroys the replicas on that
node's disk, and a restore that runs on a different node than a shard's
replicas must fetch the bytes over the network.

:class:`ClusterCheckpointStorage` adds exactly that to
:class:`repro.recovery.CheckpointStorage`:

* **placement** — every checkpoint file gets ``replication`` replicas on
  consecutive nodes starting at its *origin* (the node of the instance
  that wrote it; hashed when no origin is known).  Uploading to each
  remote replica is charged to the ``network`` ledger category.
* **failure domains** — :meth:`fail_node` models the machine dying: the
  node's replicas are gone.  A file whose last replica died is deleted
  outright, so a later read surfaces as a missing checkpoint file
  (:class:`~repro.errors.SnapshotCorruptError`) and recovery falls back
  down the epoch chain, exactly like any other corruption.
* **peer reads** — :meth:`read_ref` takes the reading instance's node;
  when no replica is local the shard is downloaded from a surviving
  peer, charged to the network.  This is the peer-seeded node restore:
  the replacement instances of a dead node pull their key-group shards
  from the peers that still hold them.

All network time lands on the storage environment's clock, so restore
durations (measured on that clock) include the fetch-over-network wait.
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.cluster.topology import ClusterTopology, charge_link
from repro.recovery import CheckpointStorage, _epoch_dir
from repro.simenv import SimEnv
from repro.storage.filesystem import SimFileSystem


class ClusterCheckpointStorage(CheckpointStorage):
    """Checkpoint storage whose files live on cluster nodes' disks."""

    def __init__(
        self,
        env: SimEnv,
        cluster: ClusterTopology,
        fs: SimFileSystem | None = None,
        replication: int = 2,
    ) -> None:
        super().__init__(env, fs)
        if replication < 1:
            raise ValueError(f"replication must be >= 1: {replication}")
        self.cluster = cluster
        self.replication = min(replication, cluster.n_nodes)
        # path -> surviving replica node ids (first = primary/origin).
        self._placement: dict[str, tuple[int, ...]] = {}
        self.files_lost = 0

    # ------------------------------------------------------------------
    def _place(self, path: str, origin: int | None) -> tuple[int, ...]:
        primary = (
            origin if origin is not None
            else zlib.crc32(path.encode()) % self.cluster.n_nodes
        )
        return tuple(
            (primary + step) % self.cluster.n_nodes
            for step in range(self.replication)
        )

    def replicas_of(self, path: str) -> tuple[int, ...]:
        """Surviving replica nodes of ``path`` (empty when unknown)."""
        return self._placement.get(path, ())

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put_file(self, path: str, data: bytes, origin: int | None = None) -> None:
        """Write ``path`` to its replica set, charging remote uploads.

        The local replica (the origin's own disk) costs only the device
        write already charged by the base class; every further replica
        costs one network hop from the origin.
        """
        super().put_file(path, data)
        replicas = self._place(path, origin)
        self._placement[path] = replicas
        source = replicas[0]
        for target in replicas[1:]:
            charge_link(
                self.env, self.cluster.network, source, target, len(data),
                f"net/chk/put/{path}", self.env.faults,
            )

    def commit_manifest(self, epoch: int, manifest: dict[str, Any]) -> None:
        """Commit, then re-home the placement from the tmp to the final name."""
        super().commit_manifest(epoch, manifest)
        tmp = f"{_epoch_dir(epoch)}/MANIFEST.tmp"
        final = f"{_epoch_dir(epoch)}/MANIFEST"
        if tmp in self._placement:
            self._placement[final] = self._placement.pop(tmp)

    # ------------------------------------------------------------------
    # failure domain
    # ------------------------------------------------------------------
    def fail_node(self, node_id: int) -> int:
        """A machine died: drop its replicas; delete files with none left.

        Returns the number of checkpoint files lost outright (every
        replica was on the dead node).  Lost files surface to recovery as
        missing — :class:`~repro.errors.SnapshotCorruptError` at read
        time — failing the epoch over to an older one.
        """
        lost = 0
        for path, replicas in list(self._placement.items()):
            surviving = tuple(node for node in replicas if node != node_id)
            if surviving:
                self._placement[path] = surviving
                continue
            del self._placement[path]
            if self.fs.exists(path):
                self.fs.delete(path)
            lost += 1
        self.files_lost += lost
        return lost

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read_ref(
        self, path: str, length: int, crc: int, reader: int | None = None
    ) -> bytes:
        """Read + verify ``path``; fetch over the network when remote.

        ``reader`` is the node of the restoring instance.  With a local
        replica the read costs only device time; otherwise the bytes
        stream from the first surviving peer replica.  Unknown placement
        (files from before this storage was attached) reads locally.
        """
        data = super().read_ref(path, length, crc)
        replicas = self._placement.get(path)
        if reader is not None and replicas and reader not in replicas:
            charge_link(
                self.env, self.cluster.network, replicas[0], reader, len(data),
                f"net/chk/get/{path}", self.env.faults,
            )
        return data
