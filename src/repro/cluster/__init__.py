"""Multi-node cluster simulation: topology, network model, failure domains.

Only the topology surface is exported here; the cluster-aware checkpoint
storage lives in :mod:`repro.cluster.storage` and is imported lazily by
:class:`repro.recovery.RecoveryManager` (it depends on the recovery
layout, which depends on the runtime, which routes through topologies —
a direct re-export would close an import cycle).
"""

from repro.cluster.topology import (
    DEFAULT_BANDWIDTH,
    DEFAULT_LATENCY,
    RECORD_OVERHEAD_BYTES,
    ClusterTopology,
    NetworkModel,
    Node,
    charge_link,
)

__all__ = [
    "ClusterTopology",
    "NetworkModel",
    "Node",
    "charge_link",
    "DEFAULT_BANDWIDTH",
    "DEFAULT_LATENCY",
    "RECORD_OVERHEAD_BYTES",
]
