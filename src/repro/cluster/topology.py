"""Multi-node cluster topology and network cost model.

The paper's evaluation runs on a cluster of i3.2xlarge workers connected
by 10 GbE ("up to 10 Gigabit" networking); until now the reproduction
collapsed all workers into one process whose job time was the maximum
busy time over instances.  This module promotes nodes to first-class
simulated machines:

* a :class:`Node` is one worker — a core budget and (implicitly) its own
  local disk, hosting a subset of the physical operator instances;
* a :class:`NetworkModel` prices every cross-node byte: a transfer of
  ``n`` bytes in ``r`` requests over link ``(src, dst)`` costs
  ``r * latency + n / bandwidth`` seconds, charged to the ``network``
  ledger category via :meth:`repro.simenv.SimEnv.charge_network`;
* a :class:`ClusterTopology` places instances on nodes round-robin
  (``index % n_nodes`` — stable under rescaling, so a grown instance
  lands on a deterministic node and a shrink never re-homes survivors).

Intra-node traffic is free by construction (``transfer_time`` is zero
when source and destination coincide), so a single-node cluster — and
every pre-existing non-cluster run — is charge-for-charge identical to
the legacy execution model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError

# 10 GbE at ~wire speed, and a conservative intra-rack round-trip: the
# defaults model the paper's cluster fabric.
DEFAULT_BANDWIDTH = 1.25e9  # bytes/second (10 Gb/s)
DEFAULT_LATENCY = 200e-6  # seconds per request (RPC round-trip share)

# Framing + key bytes a shuffled record occupies on the wire beyond its
# payload accounting (headers, lengths, channel multiplexing).
RECORD_OVERHEAD_BYTES = 64


@dataclass(frozen=True)
class Node:
    """One simulated worker machine."""

    name: str
    cores: int = 8  # i3.2xlarge: 8 vCPUs

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise PlanError(f"node {self.name} must have >= 1 core: {self.cores}")


@dataclass(frozen=True)
class NetworkModel:
    """Per-link bandwidth/latency menu.

    ``links`` overrides individual directed links ``(src, dst) ->
    (bandwidth, latency)``; unlisted links use the uniform defaults.
    """

    bandwidth: float = DEFAULT_BANDWIDTH
    latency: float = DEFAULT_LATENCY
    record_overhead_bytes: int = RECORD_OVERHEAD_BYTES
    links: dict[tuple[int, int], tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise PlanError(
                f"network model needs bandwidth > 0 and latency >= 0: "
                f"{self.bandwidth}, {self.latency}"
            )

    def link(self, src: int, dst: int) -> tuple[float, float]:
        """The ``(bandwidth, latency)`` of the directed link src -> dst."""
        return self.links.get((src, dst), (self.bandwidth, self.latency))

    def transfer_time(
        self, src: int, dst: int, n_bytes: int, n_requests: int = 1
    ) -> float:
        """Seconds to move ``n_bytes`` from node ``src`` to node ``dst``.

        Zero when the endpoints coincide: loopback traffic is a memcpy
        already charged by the transfer's CPU model, not a network hop.
        """
        if n_bytes < 0 or n_requests < 0:
            raise PlanError(f"negative transfer size: {n_bytes}B/{n_requests}req")
        if src == dst:
            return 0.0
        bandwidth, latency = self.link(src, dst)
        return n_requests * latency + n_bytes / bandwidth


@dataclass(frozen=True)
class ClusterTopology:
    """A set of nodes plus the network connecting them.

    Placement is round-robin over nodes by physical-instance index —
    ``place(i) = i % n_nodes`` — for every stateful operator.  Round-robin
    (rather than contiguous blocks) keeps placement *stable under
    rescaling*: growing parallelism only adds instances at new indices
    and never re-homes an existing one, so a live migration moves state
    exactly once.
    """

    nodes: tuple[Node, ...]
    network: NetworkModel = field(default_factory=NetworkModel)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise PlanError("a cluster needs at least one node")

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def place(self, instance_index: int) -> int:
        """Node id hosting physical instance ``instance_index``."""
        if instance_index < 0:
            raise PlanError(f"instance index must be >= 0: {instance_index}")
        return instance_index % self.n_nodes

    def ingest_node(self, record_ordinal: int) -> int:
        """Node whose source task ingests the ``record_ordinal``-th record.

        Sources are sharded round-robin over nodes like any operator, so
        a record's first shuffle hop starts from a deterministic node.
        """
        return record_ordinal % self.n_nodes

    @classmethod
    def uniform(
        cls,
        n_nodes: int,
        cores: int = 8,
        network: NetworkModel | None = None,
    ) -> "ClusterTopology":
        """A homogeneous cluster of ``n_nodes`` identical workers."""
        if n_nodes < 1:
            raise PlanError(f"cluster size must be >= 1: {n_nodes}")
        return cls(
            nodes=tuple(Node(name=f"node{i}", cores=cores) for i in range(n_nodes)),
            network=network or NetworkModel(),
        )


def charge_link(
    env,
    network: NetworkModel,
    src: int,
    dst: int,
    n_bytes: int,
    label: str,
    faults=None,
    n_requests: int = 1,
) -> float:
    """Charge one cross-node transfer to ``env`` and return its seconds.

    The single funnel for network accounting: consults the fault injector
    (``drop_link`` raises :class:`~repro.errors.DiskIOError`, ``slow_link``
    stretches the transfer), then books the (possibly stretched) link
    time via :meth:`~repro.simenv.SimEnv.charge_network`.  Intra-node
    transfers return 0.0 without touching the injector — loopback cannot
    drop, and counting it would shift cross-node fault ordinals.
    """
    if src == dst:
        return 0.0
    factor = 1.0
    if faults is not None:
        factor = faults.on_network(label, env.now)
    seconds = network.transfer_time(src, dst, n_bytes, n_requests) * factor
    env.charge_network(seconds, n_bytes, n_requests)
    return seconds
