"""Crash recovery and exactly-once restore (§8, Fault Tolerance).

The paper prescribes Flink-style checkpointing: periodically snapshot
every store into reliable storage and, on failure, restore the latest
snapshot and replay the source from that point.  This module provides
the three pieces around the per-store ``snapshot``/``restore`` methods:

* :class:`CheckpointStorage` — a durable, checksummed checkpoint layout
  on its own simulated device.  Every epoch is a separate directory
  committed by an atomically-renamed manifest, so a crash mid-snapshot
  never clobbers the last good checkpoint, and every byte is covered by
  a CRC32 verified at restore (:class:`SnapshotCorruptError` otherwise).
* :class:`Checkpointer` — takes a consistent cut at watermark
  boundaries: store snapshots, in-operator state, sink outputs,
  latencies, rescale history and the rescale policy, all under one
  epoch.
* :class:`RecoveryManager` — runs a job, and on an injected crash
  restores the newest *complete* checkpoint (falling back past corrupt
  ones), rewinds the source to the checkpoint's record count and
  replays.  Output is exactly-once by construction: sink outputs are
  checkpointed atomically with the state, outputs after the checkpoint
  are discarded with the crash, and the deterministic replay regenerates
  them identically (arrivals stay on the absolute record grid).

All recovery-path work — checksums, checkpoint reads, replay setup,
retry backoff — is charged to the ``recovery`` ledger category on the
storage environment and merged into the job's metrics.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any

from repro.engine.plan import StreamEnvironment
from repro.engine.runtime import Executor, JobResult
from repro.errors import (
    DiskIOError,
    InjectedCrashError,
    PlanError,
    SnapshotCorruptError,
)
from repro.faults import CRASH_SNAPSHOT_COMMIT, CRASH_SNAPSHOT_FILE, with_retries
from repro.kvstores.api import (
    CAP_INCREMENTAL,
    CAP_SNAPSHOT,
    DEFAULT_MAX_KEY_GROUPS,
    StateExport,
    key_group_of,
    require_capability,
)
from repro.simenv import CAT_RECOVERY, MetricsLedger, SimEnv
from repro.snapshot import (
    ShardRef,
    StoreSnapshot,
    pack_group_shard,
    unpack_group_shard,
)
from repro.storage.filesystem import SimFileSystem

_CHK_ROOT = "chk"


def _epoch_dir(epoch: int) -> str:
    return f"{_CHK_ROOT}/{epoch:08d}"


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery-relevant incident on a job's timeline."""

    # "crash" | "restore" | "corrupt_checkpoint" | "fresh_restart"
    # | "node_failure" | "promote" | "degraded"
    kind: str
    at_record: int
    epoch: int | None = None
    site: str = ""
    detail: str = ""
    sim_seconds: float = 0.0


class CheckpointStorage:
    """Checksummed checkpoint files on a dedicated simulated device.

    Layout per epoch (a flat-namespace "directory" per committed cut)::

        chk/{epoch:08d}/job                       pickled job-level state
        chk/{epoch:08d}/{instance}/meta           store snapshot meta blob
        chk/{epoch:08d}/{instance}/files/{name}   store snapshot files
        chk/{epoch:08d}/MANIFEST                  commit record (see below)

    The manifest holds ``(length, crc32)`` for every file of the epoch
    plus the store kinds, is itself CRC-framed, and is written to a
    ``.tmp`` name then atomically renamed — the rename *is* the commit.
    Epochs without a manifest are invisible to recovery.  Transient
    :class:`DiskIOError` faults on checkpoint I/O are retried with
    capped deterministic backoff.
    """

    def __init__(self, env: SimEnv, fs: SimFileSystem | None = None) -> None:
        self.env = env
        self.fs = fs or SimFileSystem(env)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put_file(self, path: str, data: bytes, origin: int | None = None) -> None:
        """Durably write one checkpoint file (idempotent, retried).

        ``origin`` — the cluster node of the writing instance — is
        ignored here; :class:`repro.cluster.storage.ClusterCheckpointStorage`
        uses it to place replicas and charge cross-node uploads.
        """

        def attempt() -> None:
            if self.fs.exists(path):
                self.fs.delete(path)
            self.fs.append(path, data, category=CAT_RECOVERY)

        with_retries(self.env, attempt)

    def commit_manifest(self, epoch: int, manifest: dict[str, Any]) -> None:
        """Write the CRC-framed manifest and atomically rename it live."""
        payload = pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
        framed = zlib.crc32(payload).to_bytes(4, "big") + payload
        self.env.charge_cpu(CAT_RECOVERY, len(payload) * self.env.cpu.crc_per_byte)
        tmp = f"{_epoch_dir(epoch)}/MANIFEST.tmp"
        self.put_file(tmp, framed)
        faults = self.env.faults
        if faults is not None:
            faults.crash_point(CRASH_SNAPSHOT_COMMIT, now=self.env.now)
        self.fs.rename(tmp, f"{_epoch_dir(epoch)}/MANIFEST")

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def epochs(self) -> list[int]:
        """Committed checkpoint epochs, oldest first."""
        found = []
        for name in self.fs.list_files(_CHK_ROOT + "/"):
            parts = name.split("/")
            if len(parts) == 3 and parts[2] == "MANIFEST":
                found.append(int(parts[1]))
        return sorted(found)

    def latest(self) -> int | None:
        epochs = self.epochs()
        return epochs[-1] if epochs else None

    def read_manifest(self, epoch: int) -> dict[str, Any]:
        framed = with_retries(
            self.env,
            lambda: self.fs.read(f"{_epoch_dir(epoch)}/MANIFEST", category=CAT_RECOVERY),
        )
        if len(framed) < 4:
            raise SnapshotCorruptError(f"checkpoint {epoch}: manifest truncated")
        expected = int.from_bytes(framed[:4], "big")
        payload = framed[4:]
        self.env.charge_cpu(CAT_RECOVERY, len(payload) * self.env.cpu.crc_per_byte)
        if zlib.crc32(payload) != expected:
            raise SnapshotCorruptError(f"checkpoint {epoch}: manifest failed CRC check")
        return pickle.loads(payload)

    def read_file(self, manifest: dict[str, Any], path: str) -> bytes:
        """Read one manifest-covered file, verifying length and CRC."""
        entry = manifest["entries"].get(path)
        if entry is None:
            raise SnapshotCorruptError(f"{path} not covered by checkpoint manifest")
        length, crc = entry
        return self.read_ref(path, length, crc)

    def read_ref(
        self, path: str, length: int, crc: int, reader: int | None = None
    ) -> bytes:
        """Read one file verified against an explicit ``(length, crc)``.

        This is how incremental manifests reach *earlier* epochs' shard
        files: the reference carries its own checksum, so a shard shared
        by many manifests is verified on every restore exactly as an
        owned file would be.  ``reader`` (the restoring instance's
        cluster node) is ignored here; the cluster storage subclass uses
        it to charge peer downloads.
        """
        if not self.fs.exists(path):
            raise SnapshotCorruptError(f"checkpoint file {path} is missing")
        data = with_retries(
            self.env, lambda: self.fs.read(path, category=CAT_RECOVERY)
        )
        self.env.charge_cpu(CAT_RECOVERY, len(data) * self.env.cpu.crc_per_byte)
        if len(data) != length:
            raise SnapshotCorruptError(
                f"checkpoint file {path}: {len(data)}B, expected {length}B"
            )
        if zlib.crc32(data) != crc:
            raise SnapshotCorruptError(f"checkpoint file {path} failed CRC check")
        return data

    def load_snapshot(self, epoch: int, manifest: dict[str, Any], key: str) -> StoreSnapshot:
        """Reassemble one instance's sealed :class:`StoreSnapshot`."""
        base = f"{_epoch_dir(epoch)}/{key}"
        meta = self.read_file(manifest, f"{base}/meta")
        files_prefix = f"{base}/files/"
        files: dict[str, bytes] = {}
        checksums: dict[str, tuple[int, int]] = {}
        for path, (length, crc) in manifest["entries"].items():
            if not path.startswith(files_prefix):
                continue
            orig = path[len(files_prefix):]
            files[orig] = self.read_file(manifest, path)
            checksums[orig] = (length, crc)
        snap = StoreSnapshot(manifest["stores"][key], meta, files)
        snap.checksums = checksums
        snap.meta_crc = zlib.crc32(meta)
        snap.epoch = epoch
        return snap


@dataclass(frozen=True)
class CheckpointStat:
    """Write-side accounting of one committed checkpoint epoch.

    ``bytes_written``/``files_written`` cover the epoch's payload files
    (store shards or legacy snapshot files, plus the job blob; manifest
    framing excluded); ``shards_reused`` counts key-group shards the
    manifest *references* from earlier epochs instead of re-copying —
    the incremental saving fig_checkpoint reports.
    """

    epoch: int
    full: bool
    bytes_written: int
    files_written: int
    shards_written: int
    shards_reused: int
    sim_seconds: float


class CheckpointSeedSource:
    """Read-side view of the latest committed epoch's shard maps.

    Handed to :class:`repro.rescale.live.LiveMigration` so a moved
    key-group whose backend reports it *clean* (unchanged since the
    checkpoint cut) can be seeded at the destination from the
    checkpoint's shard — checkpoint-read I/O instead of live-transfer
    bytes.
    """

    def __init__(self, checkpointer: "Checkpointer") -> None:
        self._cp = checkpointer

    def shard_ref(self, key: str, group: int, max_key_groups: int) -> ShardRef | None:
        """The latest committed shard of ``(instance key, group)``, or
        None when absent or sharded at a different group-space size."""
        if self._cp._shard_groupspace.get(key) != max_key_groups:  # noqa: SLF001
            return None
        return self._cp._shard_maps.get(key, {}).get(group)  # noqa: SLF001

    def has_state(self, key: str) -> bool:
        """Whether the latest epoch sharded this instance at all."""
        return key in self._cp._shard_maps  # noqa: SLF001

    def read_entries(self, ref: ShardRef) -> list:
        """Read + CRC-verify one shard and decode its entries (charged
        to the checkpoint-storage environment as recovery I/O)."""
        data = self._cp.storage.read_ref(ref.path, ref.length, ref.crc)
        return unpack_group_shard(self._cp.storage.env, data)


class Checkpointer:
    """Takes periodic consistent cuts of a running job.

    Consulted by :meth:`Executor.run` at every watermark boundary; a
    checkpoint is taken once at least ``interval`` records have been
    ingested since the previous one.  Watermark boundaries fall on a
    deterministic record-count grid, so an uninterrupted run and a
    replayed run checkpoint at the identical cut points.

    With ``incremental`` (the default), backends advertising
    :data:`CAP_INCREMENTAL` are checkpointed as per-key-group *shards*:
    each epoch writes only the groups dirtied since the previous epoch
    and references the rest from earlier epochs by (epoch, path, CRC);
    a full cut of every group is taken every ``full_snapshot_interval``
    epochs to bound chain length.  Backends without the capability —
    and every backend when ``incremental`` is False — degrade to the
    legacy whole-store snapshot per epoch.  ``incremental="require"``
    instead fails fast with :class:`UnsupportedOperationError` on the
    first backend that cannot do incremental cuts.

    ``retained_epochs`` enables chain-aware garbage collection: after
    each commit, manifests beyond the newest N are deleted and any
    checkpoint file no surviving manifest references (directly or via a
    shard reference) is removed.  The default (None) retains everything
    — restores can then fall back arbitrarily far past corrupt epochs.
    """

    def __init__(
        self,
        storage: CheckpointStorage,
        interval: int,
        incremental: bool | str = True,
        full_snapshot_interval: int = 4,
        retained_epochs: int | None = None,
    ) -> None:
        if full_snapshot_interval < 1:
            raise PlanError(
                f"full_snapshot_interval must be >= 1: {full_snapshot_interval}"
            )
        if retained_epochs is not None and retained_epochs < 1:
            raise PlanError(f"retained_epochs must be >= 1: {retained_epochs}")
        self.storage = storage
        self.interval = interval
        self.incremental = incremental
        self.full_snapshot_interval = full_snapshot_interval
        self.retained_epochs = retained_epochs
        self.epochs_written = 0
        self.stats: list[CheckpointStat] = []
        self._last_count: int | None = None
        self._epoch = 0
        # Per instance key: latest committed shard map, its group-space
        # size, and the epoch of its last full cut (chain anchor).
        self._shard_maps: dict[str, dict[int, ShardRef]] = {}
        self._shard_groupspace: dict[str, int] = {}
        self._shard_full_epoch: dict[str, int] = {}
        # Optional repro.changelog.ChangelogReplication, set by a
        # RecoveryManager running in standby mode: every committed epoch
        # cut also seals and ships the changelog to the standbys.
        self.replication: Any = None

    def start_from(self, epoch: int, count: int) -> None:
        """Resume epoch numbering after a restore (or fresh restart)."""
        self._epoch = epoch
        self._last_count = count
        if epoch == 0:
            self.reset_chain()

    def reset_chain(self) -> None:
        """Forget shard chains (fresh restart: nothing can be referenced)."""
        self._shard_maps.clear()
        self._shard_groupspace.clear()
        self._shard_full_epoch.clear()

    def adopt_manifest(self, epoch: int, manifest: dict[str, Any], count: int) -> None:
        """Seed chain state from a restored manifest.

        After a restore the backends hold exactly what the manifest's
        shards describe, so the next incremental epoch may reference
        them; the recorded ``full_epoch`` anchors keep bounding chain
        length across the restart.
        """
        self.start_from(epoch, count)
        self.reset_chain()
        for key, desc in manifest.get("sharded", {}).items():
            self._shard_maps[key] = {
                group: ShardRef(*ref) for group, ref in desc["groups"].items()
            }
            self._shard_groupspace[key] = desc["max_key_groups"]
            self._shard_full_epoch[key] = desc["full_epoch"]

    def seed_source(self) -> CheckpointSeedSource:
        """A read-side view for checkpoint-seeded live rescales."""
        return CheckpointSeedSource(self)

    def maybe_checkpoint(
        self, executor: Executor, count: int, max_ts: float, rescale_policy: Any
    ) -> int | None:
        if self._last_count is not None and count - self._last_count < self.interval:
            return None
        if self._last_count is None and count < self.interval:
            return None
        self._last_count = count
        self._epoch += 1
        epoch = self._epoch
        storage = self.storage
        faults = storage.env.faults
        started = storage.env.clock.now
        manifest_entries: dict[str, tuple[int, int]] = {}
        stores: dict[str, str] = {}
        sharded: dict[str, dict[str, Any]] = {}
        bytes_written = 0
        shards_written = 0
        shards_reused = 0
        all_full = True

        def put(path: str, data: bytes, origin: int | None = None) -> None:
            nonlocal bytes_written
            if faults is not None:
                faults.crash_point(CRASH_SNAPSHOT_FILE, now=storage.env.now)
            storage.put_file(path, data, origin=origin)
            # The manifest records what was *intended*: a torn or
            # bit-flipped device write is caught at restore time.
            manifest_entries[path] = (len(data), zlib.crc32(data))
            bytes_written += len(data)
            storage.env.charge_cpu(
                CAT_RECOVERY, len(data) * storage.env.cpu.crc_per_byte
            )

        # Deferred chain-state commit: applied only once the manifest
        # rename lands, so a crash mid-epoch leaves the previous chain
        # (and the backends' dirty sets) intact.
        committed: list[tuple[str, Any, dict[int, ShardRef], int, int]] = []
        operators: dict[str, dict[str, Any]] = {}
        for node in executor._stateful_nodes:  # noqa: SLF001 - engine back-half
            for idx, instance in enumerate(executor._instances[node.node_id]):  # noqa: SLF001
                key = f"op{node.node_id}/p{idx}"
                backend = instance.operator.backend
                # Cluster runs: the instance's shards upload from its
                # hosting node (the replica-placement origin).
                node_of = getattr(executor, "cluster_node_of", None)
                origin = None if node_of is None else node_of(idx)
                iput = (
                    put if origin is None
                    else lambda path, data, _o=origin: put(path, data, _o)
                )
                if self.incremental == "require":
                    require_capability(backend, CAP_INCREMENTAL, "incremental_checkpoint")
                if self.incremental and CAP_INCREMENTAL in backend.capabilities:
                    written, reused, full = self._checkpoint_sharded(
                        epoch, key, backend, iput, stores, sharded, committed
                    )
                    shards_written += written
                    shards_reused += reused
                    all_full = all_full and full
                else:
                    snap = backend.snapshot()
                    stores[key] = snap.kind
                    base = f"{_epoch_dir(epoch)}/{key}"
                    iput(f"{base}/meta", snap.meta)
                    for name, data in snap.files.items():
                        iput(f"{base}/files/{name}", data)
                operators[key] = instance.operator.checkpoint_state()
        job_meta = pickle.dumps(
            {
                "at_record": count,
                "max_timestamp": max_ts,
                "parallelism": executor.current_parallelism,
                # The routing table may be non-contiguous after an
                # aborted live rescale; a restore must reproduce it
                # exactly or replayed records land on the wrong owners.
                "group_owner": list(executor.group_owner),
                "sinks": executor._sinks,  # noqa: SLF001
                "latencies": executor._latencies,  # noqa: SLF001
                "rescales": executor._rescales,  # noqa: SLF001
                "operators": operators,
                "policy": rescale_policy,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        put(f"{_epoch_dir(epoch)}/job", job_meta)
        manifest: dict[str, Any] = {
            "epoch": epoch,
            "stores": stores,
            "entries": manifest_entries,
        }
        if sharded:
            manifest["sharded"] = sharded
        storage.commit_manifest(epoch, manifest)
        # Commit point passed: publish the new chain state and reset
        # dirty tracking so the next epoch's delta starts at this cut.
        self._shard_maps = {}
        self._shard_groupspace = {}
        self._shard_full_epoch = {}
        for key, backend, shard_map, groupspace, full_epoch in committed:
            self._shard_maps[key] = shard_map
            self._shard_groupspace[key] = groupspace
            self._shard_full_epoch[key] = full_epoch
            backend.clear_dirty()
        self.epochs_written += 1
        self.stats.append(
            CheckpointStat(
                epoch=epoch,
                full=all_full,
                bytes_written=bytes_written,
                files_written=len(manifest_entries),
                shards_written=shards_written,
                shards_reused=shards_reused,
                sim_seconds=storage.env.clock.now - started,
            )
        )
        self._collect_garbage()
        if self.replication is not None:
            # Seal the epoch's changelog after the commit point: sealed
            # segment sets are exact deltas between consistent cuts.
            self.replication.seal_epoch(epoch, executor)
        return epoch

    def _checkpoint_sharded(
        self,
        epoch: int,
        key: str,
        backend: Any,
        put: Any,
        stores: dict[str, str],
        sharded: dict[str, dict[str, Any]],
        committed: list,
    ) -> tuple[int, int, bool]:
        """Write one instance's epoch as key-group shards.

        Returns ``(shards_written, shards_reused, took_full_cut)``.
        """
        groupspace = int(
            getattr(backend, "checkpoint_key_groups", DEFAULT_MAX_KEY_GROUPS)
        )
        prev_map = self._shard_maps.get(key)
        last_full = self._shard_full_epoch.get(key)
        take_full = (
            prev_map is None
            or last_full is None
            or self._shard_groupspace.get(key) != groupspace
            or epoch - last_full >= self.full_snapshot_interval
        )

        def group_of(k: bytes, _g: int = groupspace) -> int:
            return key_group_of(k, _g)

        if take_full:
            export = backend.export_group_state(None, group_of)
            dirty: frozenset[int] | None = None
        else:
            dirty = frozenset(backend.dirty_groups())
            export = backend.export_group_state(set(dirty), group_of)
        per_group: dict[int, list] = {}
        for entry in export.entries:
            per_group.setdefault(group_of(entry.key), []).append(entry)

        shard_map: dict[int, ShardRef] = {}
        if not take_full:
            assert prev_map is not None and dirty is not None
            for group, ref in prev_map.items():
                if group not in dirty:
                    shard_map[group] = ref
        reused = len(shard_map)
        written = 0
        base = f"{_epoch_dir(epoch)}/{key}"
        for group in sorted(per_group):
            entries = per_group[group]
            if not entries:
                continue
            data = pack_group_shard(self.storage.env, entries)
            path = f"{base}/shards/g{group:05d}"
            put(path, data)
            shard_map[group] = ShardRef(epoch, path, len(data), zlib.crc32(data))
            written += 1

        stores[key] = "sharded"
        full_epoch = epoch if take_full else int(last_full)  # type: ignore[arg-type]
        sharded[key] = {
            "kind": type(backend).__name__,
            "max_key_groups": groupspace,
            "full_epoch": full_epoch,
            "groups": {
                group: (ref.epoch, ref.path, ref.length, ref.crc)
                for group, ref in shard_map.items()
            },
        }
        committed.append((key, backend, shard_map, groupspace, full_epoch))
        return written, reused, take_full

    # ------------------------------------------------------------------
    # chain-aware garbage collection
    # ------------------------------------------------------------------
    def _collect_garbage(self) -> None:
        """Drop epochs beyond the retention window, then sweep files no
        surviving manifest references (owned entries *or* shard refs).

        Conservative by construction: if any surviving manifest cannot
        be read back, nothing is deleted this round — a shard must never
        be collected while a manifest that references it is live.
        """
        if self.retained_epochs is None:
            return
        storage = self.storage
        epochs = storage.epochs()
        if len(epochs) <= self.retained_epochs:
            return
        keep = epochs[-self.retained_epochs:]
        live: set[str] = set()
        for epoch in keep:
            try:
                manifest = storage.read_manifest(epoch)
            except SnapshotCorruptError:
                return
            live.add(f"{_epoch_dir(epoch)}/MANIFEST")
            live.update(manifest["entries"])
            for desc in manifest.get("sharded", {}).values():
                for _e, path, _l, _c in desc["groups"].values():
                    live.add(path)
        for epoch in epochs[: -self.retained_epochs]:
            # Manifest first: the epoch stops being restorable atomically,
            # before any of its files disappear.
            with_retries(
                storage.env,
                lambda e=epoch: storage.fs.delete(f"{_epoch_dir(e)}/MANIFEST"),
            )
        for name in list(storage.fs.list_files(_CHK_ROOT + "/")):
            if name not in live:
                with_retries(storage.env, lambda n=name: storage.fs.delete(n))


class RecoveryManager:
    """Run a job to completion across injected crashes, exactly-once.

    Wraps the executor loop: on :class:`InjectedCrashError` (or a
    :class:`DiskIOError` that outlived its retries) the crashed topology
    is discarded wholesale, the newest complete checkpoint is restored —
    skipping over corrupt epochs — and the source replays from the
    checkpoint's record count.  With no usable checkpoint the job
    restarts fresh (including a pristine copy of the rescale policy, so
    already-fired schedule entries fire again on replay).
    """

    def __init__(
        self,
        plan_env: StreamEnvironment,
        checkpoint_interval: int,
        storage: CheckpointStorage | None = None,
        max_restarts: int = 8,
        incremental: bool | str = True,
        full_snapshot_interval: int = 4,
        retained_epochs: int | None = None,
        mode: str = "restore",
    ) -> None:
        if mode not in ("restore", "standby"):
            raise PlanError(f"unknown recovery mode {mode!r}")
        self.plan = plan_env
        self.mode = mode
        if storage is None:
            env = SimEnv(cpu=plan_env.cpu, ssd=plan_env.ssd, faults=plan_env.faults)
            cluster = getattr(plan_env, "cluster", None)
            if cluster is not None and cluster.n_nodes > 1:
                # Checkpoints live on the workers' disks: replica-placed,
                # node failures destroy local replicas, remote shards are
                # fetched from peers.  (Imported lazily: the storage
                # module depends on this one.)
                from repro.cluster.storage import ClusterCheckpointStorage

                storage = ClusterCheckpointStorage(env, cluster)
            else:
                storage = CheckpointStorage(env)
        self.storage = storage
        self.checkpointer = Checkpointer(
            self.storage,
            checkpoint_interval,
            incremental=incremental,
            full_snapshot_interval=full_snapshot_interval,
            retained_epochs=retained_epochs,
        )
        self.max_restarts = max_restarts
        self.recoveries: list[RecoveryEvent] = []
        # Hot-standby lane: changelog replication only exists in standby
        # mode on a real multi-node cluster — otherwise the default
        # restore behaviour (and its charges) are byte-identical.
        self.replication: Any = None
        if mode == "standby":
            cluster = getattr(plan_env, "cluster", None)
            if cluster is not None and cluster.n_nodes > 1:
                from repro.changelog import ChangelogReplication

                self.replication = ChangelogReplication(
                    self.storage.env, cluster, self.storage.env.faults
                )
                self.checkpointer.replication = self.replication

    def run(self, rescale_policy: Any = None, **run_kwargs: Any) -> JobResult:
        """Execute the plan with checkpointing and automatic recovery."""
        self.plan.validate()
        executor = Executor(self.plan)
        # Fail fast, before any records run: checkpointing needs every
        # stateful backend to either shard incrementally or snapshot whole.
        for node in executor._stateful_nodes:  # noqa: SLF001
            backend = executor._instances[node.node_id][0].operator.backend  # noqa: SLF001
            if backend is None:
                continue
            if self.checkpointer.incremental and CAP_INCREMENTAL in backend.capabilities:
                continue
            require_capability(backend, CAP_SNAPSHOT, "snapshot")
        # Materialize the sources ONCE: replays must see the identical
        # record sequence even if the plan's sources were generators.
        records = list(executor._merged_sources())  # noqa: SLF001
        pristine_policy = pickle.dumps(rescale_policy, protocol=pickle.HIGHEST_PROTOCOL)
        policy = rescale_policy
        at_record = 0
        max_ts = float("-inf")
        restarts = 0
        if self.replication is not None:
            self.replication.bind(executor)
        while True:
            try:
                result = executor.run(
                    records=records,
                    start_count=at_record,
                    start_max_ts=max_ts,
                    checkpointer=self.checkpointer,
                    rescale_policy=policy,
                    **run_kwargs,
                )
                break
            except (InjectedCrashError, DiskIOError) as exc:
                site = getattr(exc, "site", "disk")
                failed_node = getattr(exc, "node", None)
                if failed_node is None:
                    self.recoveries.append(
                        RecoveryEvent(
                            kind="crash",
                            at_record=getattr(executor, "records_ingested", 0),
                            site=site,
                            detail=str(exc),
                        )
                    )
                else:
                    # Whole-node failure domain: the machine's checkpoint
                    # replicas die with it before anything is restored.
                    lost = 0
                    fail = getattr(self.storage, "fail_node", None)
                    if fail is not None:
                        lost = fail(failed_node)
                    self.recoveries.append(
                        RecoveryEvent(
                            kind="node_failure",
                            at_record=getattr(executor, "records_ingested", 0),
                            site=site,
                            detail=f"node {failed_node} died; "
                                   f"{lost} checkpoint files lost",
                        )
                    )
                restarts += 1
                if restarts > self.max_restarts:
                    raise
                crash_time = self._crash_time(executor)
                executor = Executor(self.plan)
                promoted = None
                if self.replication is not None and failed_node is not None:
                    self.replication.fail_node(failed_node)
                    promoted = self._promote(executor, failed_node, crash_time)
                if promoted is not None:
                    at_record, max_ts, policy = promoted
                else:
                    at_record, max_ts, policy = self._restore(executor, pristine_policy)
                if self.replication is not None:
                    # The crashed topology's writers and warm replicas are
                    # stale; re-bootstrap everything at the next epoch cut.
                    self.replication.reset()
                    self.replication.bind(executor)
        # Checkpoint/recovery device work belongs on the job's ledger.
        total = MetricsLedger()
        total.merge(result.metrics)
        total.merge(self.storage.env.ledger)
        result.metrics = total.snapshot()
        result.recoveries = list(self.recoveries)
        result.checkpoints = self.checkpointer.epochs_written
        result.checkpoint_stats = list(self.checkpointer.stats)
        return result

    # ------------------------------------------------------------------
    def _crash_time(self, executor: Executor) -> float:
        """When the failure happened: the busiest instance's clock.

        Compared against the standbys' ``ready_at`` stamps (storage
        clock) — the clock domains are independent approximations of
        wall time since job start, so the comparison is meaningful in
        the two regimes that matter: a healthy link finishes tailing
        orders of magnitude before processing reaches the kill point,
        and a slowed link pushes ``ready_at`` orders of magnitude past
        it (the lagging standby).
        """
        times = [
            instance.env.clock.now
            for node in executor._stateful_nodes  # noqa: SLF001
            for instance in executor._instances[node.node_id]  # noqa: SLF001
        ]
        return max(times, default=self.storage.env.clock.now)

    def _promote(
        self, executor: Executor, failed_node: int, crash_time: float
    ) -> tuple[int, float, Any] | None:
        """Fail over onto the dead node's standbys (the hot lane).

        Picks the newest epoch that is both restorable from the manifest
        (survivors still load their checkpoint shards) and reproducible
        by *every* dead instance's standby — already tailed by the time
        the node died (``ready_at <= crash_time``), at a usable offset,
        and not invalidated.  Dead instances import the warm state plus
        a replayed changelog tail and are repointed at the peer node via
        ``node_override``; surviving groups restore exactly as in the
        restore lane.  Returns None to degrade to checkpoint-restore —
        lagging, invalid, or absent standbys and any failure mid-way all
        land there.
        """
        from repro.faults import CRASH_STANDBY_PROMOTE

        storage = self.storage
        replication = self.replication
        cluster = self.plan.cluster
        faults = storage.env.faults
        started = storage.env.clock.now
        standby_node = replication.standby_of(failed_node)
        degrade_reason = "no usable checkpoint epoch"
        for epoch in reversed(storage.epochs()):
            try:
                manifest = storage.read_manifest(epoch)
                job = pickle.loads(
                    storage.read_file(manifest, f"{_epoch_dir(epoch)}/job")
                )
            except SnapshotCorruptError:
                continue
            parallelism = job["parallelism"]
            dead_idxs = {
                idx for idx in range(parallelism)
                if cluster.place(idx) == failed_node
            }
            dead_keys = [
                f"op{node.node_id}/p{idx}"
                for node in executor._stateful_nodes  # noqa: SLF001
                for idx in sorted(dead_idxs)
            ]
            if not dead_keys:
                degrade_reason = f"node {failed_node} hosted no state"
                break
            lagging = [
                key for key in dead_keys
                if epoch not in replication.promotable_epochs(key, crash_time)
            ]
            if lagging:
                degrade_reason = (
                    f"standby not ready at epoch {epoch} for {lagging[0]}"
                )
                continue
            try:
                for idx in sorted(dead_idxs):
                    executor.node_override[idx] = standby_node
                executor.rebuild_for_restore(parallelism)
                owner_table = job.get("group_owner")
                if owner_table is not None:
                    executor.group_owner[:] = owner_table
                sharded = manifest.get("sharded", {})
                tail_replayed = 0
                for node in executor._stateful_nodes:  # noqa: SLF001
                    for idx, instance in enumerate(
                        executor._instances[node.node_id]  # noqa: SLF001
                    ):
                        key = f"op{node.node_id}/p{idx}"
                        backend = instance.operator.backend
                        if idx in dead_idxs:
                            if faults is not None:
                                faults.crash_point(
                                    CRASH_STANDBY_PROMOTE, now=storage.env.now
                                )
                            entries, tail = replication.promote_entries(key, epoch)
                            backend.import_state(StateExport(entries=entries))
                            backend.clear_dirty()
                            tail_replayed += tail
                        elif key in sharded:
                            self._restore_sharded(
                                sharded[key], backend,
                                reader=executor.cluster_node_of(idx),
                            )
                        else:
                            snap = storage.load_snapshot(epoch, manifest, key)
                            backend.restore(snap)
                        instance.operator.restore_checkpoint_state(
                            job["operators"][key]
                        )
            except (SnapshotCorruptError, InjectedCrashError) as exc:
                # Torn standby state, a crash injected mid-promotion, or
                # a corrupt survivor shard: abandon the hot lane whole.
                executor.node_override.clear()
                degrade_reason = str(exc)
                break
            executor._sinks = {name: list(vals) for name, vals in job["sinks"].items()}  # noqa: SLF001
            executor._latencies = list(job["latencies"])  # noqa: SLF001
            executor._rescales = list(job["rescales"])  # noqa: SLF001
            self.checkpointer.adopt_manifest(epoch, manifest, job["at_record"])
            self.recoveries.append(
                RecoveryEvent(
                    kind="promote",
                    at_record=job["at_record"],
                    epoch=epoch,
                    detail=(
                        f"node {failed_node} -> standby {standby_node}; "
                        f"replayed {tail_replayed} changelog records"
                    ),
                    sim_seconds=storage.env.clock.now - started,
                )
            )
            return job["at_record"], job["max_timestamp"], job["policy"]
        self.recoveries.append(
            RecoveryEvent(
                kind="degraded",
                at_record=0,
                detail=degrade_reason,
                sim_seconds=storage.env.clock.now - started,
            )
        )
        return None

    def _restore(
        self, executor: Executor, pristine_policy: bytes
    ) -> tuple[int, float, Any]:
        """Load the newest complete checkpoint into a fresh executor.

        Returns ``(at_record, max_timestamp, policy)`` for the replay.
        Corrupt epochs (failed CRC/length checks anywhere) are skipped
        with a recorded event; with none left the job restarts fresh.
        """
        storage = self.storage
        for epoch in reversed(storage.epochs()):
            started = storage.env.clock.now
            try:
                manifest = storage.read_manifest(epoch)
                job = pickle.loads(storage.read_file(manifest, f"{_epoch_dir(epoch)}/job"))
                executor.rebuild_for_restore(job["parallelism"])
                owner_table = job.get("group_owner")
                if owner_table is not None:
                    executor.group_owner[:] = owner_table
                sharded = manifest.get("sharded", {})
                node_of = getattr(executor, "cluster_node_of", None)
                for node in executor._stateful_nodes:  # noqa: SLF001
                    for idx, instance in enumerate(
                        executor._instances[node.node_id]  # noqa: SLF001
                    ):
                        key = f"op{node.node_id}/p{idx}"
                        if key in sharded:
                            self._restore_sharded(
                                sharded[key],
                                instance.operator.backend,
                                reader=None if node_of is None else node_of(idx),
                            )
                        else:
                            snap = storage.load_snapshot(epoch, manifest, key)
                            instance.operator.backend.restore(snap)
                        instance.operator.restore_checkpoint_state(job["operators"][key])
            except SnapshotCorruptError as exc:
                self.recoveries.append(
                    RecoveryEvent(
                        kind="corrupt_checkpoint",
                        at_record=0,
                        epoch=epoch,
                        detail=str(exc),
                        sim_seconds=storage.env.clock.now - started,
                    )
                )
                continue
            executor._sinks = {name: list(vals) for name, vals in job["sinks"].items()}  # noqa: SLF001
            executor._latencies = list(job["latencies"])  # noqa: SLF001
            executor._rescales = list(job["rescales"])  # noqa: SLF001
            self.checkpointer.adopt_manifest(epoch, manifest, job["at_record"])
            self.recoveries.append(
                RecoveryEvent(
                    kind="restore",
                    at_record=job["at_record"],
                    epoch=epoch,
                    sim_seconds=storage.env.clock.now - started,
                )
            )
            return job["at_record"], job["max_timestamp"], job["policy"]
        # No usable checkpoint: full restart from record zero.  A corrupt
        # epoch may have half-loaded some instances before failing its
        # checks — rebuild so the restart really is pristine.
        executor.rebuild_for_restore(self.plan.parallelism * self.plan.workers)
        self.recoveries.append(RecoveryEvent(kind="fresh_restart", at_record=0))
        self.checkpointer.start_from(0, 0)
        return 0, float("-inf"), pickle.loads(pristine_policy)

    def _restore_sharded(
        self, desc: dict[str, Any], backend: Any, reader: int | None = None
    ) -> None:
        """Compose one instance's state from its manifest's shard chain.

        Every referenced shard — whether owned by this epoch or an
        earlier one — is read back through :meth:`CheckpointStorage.read_ref`,
        so a corrupt shard *anywhere in the chain* raises
        :class:`SnapshotCorruptError` and fails this whole epoch over to
        an older one.  ``reader`` is the restoring instance's cluster
        node: cluster storage charges a peer download when no replica of
        a shard lives there.  The dirty set is cleared afterwards: the
        backend now holds exactly what the shards describe, so the next
        delta epoch may reference them.
        """
        entries: list[Any] = []
        for group in sorted(desc["groups"]):
            ref = ShardRef(*desc["groups"][group])
            data = self.storage.read_ref(ref.path, ref.length, ref.crc, reader=reader)
            entries.extend(unpack_group_shard(self.storage.env, data))
        backend.import_state(StateExport(entries=entries))
        backend.clear_dirty()
