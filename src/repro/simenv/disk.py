"""SSD device cost model.

Models an NVMe SSD of the class in the paper's i3.2xlarge worker nodes
(1.9 TB NVMe): high sequential bandwidth, low but non-zero per-request
latency.  A request costs ``request_latency + bytes / bandwidth``.  The
paper's predictive-batch-read argument (§4.2) rests exactly on this shape —
modern SSDs have bandwidth to spare, so trading extra sequential bytes for
fewer CPU cycles is a win — and the model reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SsdCostModel:
    """Per-request SSD timing (seconds, bytes/second).

    Attributes:
        read_bandwidth: sequential read bandwidth in bytes/second.
        write_bandwidth: sequential write bandwidth in bytes/second.
        request_latency: fixed device latency per I/O request.
        capacity_bytes: device capacity; exceeding it raises in the
            filesystem layer.
    """

    read_bandwidth: float = 2.0e9
    write_bandwidth: float = 1.0e9
    request_latency: float = 80e-6
    capacity_bytes: int = 1_900_000_000_000

    def read_time(self, n_bytes: int, n_requests: int = 1) -> float:
        """Device time to read ``n_bytes`` in ``n_requests`` requests."""
        if n_bytes < 0 or n_requests < 0:
            raise ValueError("negative I/O size or request count")
        return n_requests * self.request_latency + n_bytes / self.read_bandwidth

    def write_time(self, n_bytes: int, n_requests: int = 1) -> float:
        """Device time to write ``n_bytes`` in ``n_requests`` requests."""
        if n_bytes < 0 or n_requests < 0:
            raise ValueError("negative I/O size or request count")
        return n_requests * self.request_latency + n_bytes / self.write_bandwidth
