"""Deterministic simulated clock."""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock measured in seconds.

    The clock only moves when work is charged to it (CPU time or I/O wait),
    which makes every run of the simulator bit-for-bit deterministic.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Raises:
            ValueError: if ``seconds`` is negative (time never flows back).
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock to ``start`` (used between benchmark runs)."""
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
