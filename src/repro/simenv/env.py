"""The simulation environment facade.

A :class:`SimEnv` is owned by one physical operator instance (the paper
gives each physical window operator its own store instances and a
single-threaded worker).  All charges — CPU by category, device reads and
writes — advance the instance's clock and are recorded in its ledger.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.simenv.clock import SimClock
from repro.simenv.cpu import CpuCostModel
from repro.simenv.disk import SsdCostModel
from repro.simenv.metrics import CAT_NETWORK, CAT_PREFETCH, MetricsLedger


def scaled_cost_models(
    factor: float,
    cpu: CpuCostModel | None = None,
    ssd: SsdCostModel | None = None,
) -> tuple[CpuCostModel, SsdCostModel]:
    """Uniformly slow both cost models down by ``factor``.

    Multiplying every CPU cost and dividing device bandwidth by the same
    factor is equivalent to running the identical system on a
    proportionally slower machine: absolute times change, relative
    behaviour between backends does not.  Latency sweeps use this to
    bring simulated capacity into the range of tractable arrival rates.
    """
    cpu = cpu or CpuCostModel()
    ssd = ssd or SsdCostModel()
    scaled_cpu = dataclasses.replace(
        cpu,
        **{
            f.name: getattr(cpu, f.name) * factor
            for f in dataclasses.fields(cpu)
        },
    )
    scaled_ssd = dataclasses.replace(
        ssd,
        read_bandwidth=ssd.read_bandwidth / factor,
        write_bandwidth=ssd.write_bandwidth / factor,
        request_latency=ssd.request_latency * factor,
    )
    return scaled_cpu, scaled_ssd


@dataclass
class SimEnv:
    """Bundles the simulated clock, cost models and metrics ledger.

    Attributes:
        clock: the instance's simulated clock (busy time).
        cpu: CPU cost menu shared by all stores on this instance.
        ssd: SSD device cost model.
        ledger: where charges are attributed.
        faults: optional :class:`repro.faults.FaultInjector` consulted by
            the filesystem on every device I/O and by instrumented crash
            points; shared (not forked) across a job's instances so I/O
            ordinals are global.
    """

    clock: SimClock = field(default_factory=SimClock)
    cpu: CpuCostModel = field(default_factory=CpuCostModel)
    ssd: SsdCostModel = field(default_factory=SsdCostModel)
    ledger: MetricsLedger = field(default_factory=MetricsLedger)
    faults: object | None = None
    # Active prefetch capture box (``[accumulated_seconds]``) or None.
    # While set, charges book to the ``prefetch`` category without
    # advancing the clock — they model background work whose cost is
    # overlapped with foreground CPU (see ``prefetch_capture``).
    _prefetch_capture: list | None = field(default=None, repr=False, compare=False)

    @property
    def now(self) -> float:
        return self.clock.now

    def charge_cpu(self, category: str, seconds: float) -> None:
        """Charge CPU time: advances the clock and books the category."""
        if seconds == 0.0:
            return
        if self._prefetch_capture is not None:
            self._prefetch_capture[0] += seconds
            self.ledger.add_cpu(CAT_PREFETCH, seconds)
            return
        self.clock.advance(seconds)
        self.ledger.add_cpu(category, seconds)

    def charge_read(self, n_bytes: int, n_requests: int = 1) -> None:
        """Charge a device read: clock advances by the device time."""
        seconds = self.ssd.read_time(n_bytes, n_requests)
        if self._prefetch_capture is not None:
            # Background read: bytes/requests still hit the device, but
            # the device time accumulates in the capture box instead of
            # io_wait — the consumer later pays only the residual.
            self._prefetch_capture[0] += seconds
            self.ledger.add_cpu(CAT_PREFETCH, seconds)
            self.ledger.add_read(n_bytes, 0.0, n_requests)
            return
        self.clock.advance(seconds)
        self.ledger.add_read(n_bytes, seconds, n_requests)

    @contextmanager
    def prefetch_capture(self):
        """Divert charges into a background-prefetch accounting box.

        Inside the context, ``charge_cpu``/``charge_read`` book to the
        ``prefetch`` ledger category and accumulate their seconds into
        the yielded one-element list without advancing the clock.  The
        prefetch executor turns the accumulated seconds into a completion
        time on a serial per-instance device queue; a later demand access
        pays only ``max(0, completion - now)`` via
        :meth:`charge_prefetch_wait`.
        """
        if self._prefetch_capture is not None:
            raise RuntimeError("nested prefetch capture")
        box = [0.0]
        self._prefetch_capture = box
        try:
            yield box
        finally:
            self._prefetch_capture = None

    def charge_prefetch_wait(self, seconds: float) -> None:
        """Charge residual wait for a prefetch that had not completed."""
        if seconds <= 0.0:
            return
        self.clock.advance(seconds)
        self.ledger.add_prefetch_wait(seconds)

    def charge_write(self, n_bytes: int, n_requests: int = 1) -> None:
        """Charge a device write: clock advances by the device time."""
        seconds = self.ssd.write_time(n_bytes, n_requests)
        self.clock.advance(seconds)
        self.ledger.add_write(n_bytes, seconds, n_requests)

    def charge_network(self, seconds: float, n_bytes: int, n_requests: int = 1) -> None:
        """Charge cross-node link time (a cluster transfer's local share).

        The clock advances by the link time and the ``network`` ledger
        category plus byte/request counters record the traffic.  Intra-node
        transfers never reach here — :meth:`repro.cluster.topology.
        NetworkModel.transfer_time` is zero when source and destination
        nodes coincide, so single-node jobs stay charge-free.
        """
        if n_bytes < 0:
            raise ValueError(f"negative network payload: {n_bytes}")
        if seconds > 0.0:
            self.clock.advance(seconds)
            self.ledger.add_cpu(CAT_NETWORK, seconds)
        self.ledger.bump("net_bytes", n_bytes)
        self.ledger.bump("net_requests", n_requests)

    def bump(self, counter: str, delta: int = 1) -> None:
        self.ledger.bump(counter, delta)

    def fork(self) -> "SimEnv":
        """A fresh env sharing cost models but with its own clock/ledger.

        Used when the physical plan fans a logical operator out into
        parallel instances: each instance accounts independently.
        """
        return SimEnv(
            clock=SimClock(),
            cpu=self.cpu,
            ssd=self.ssd,
            ledger=MetricsLedger(),
            faults=self.faults,
        )
