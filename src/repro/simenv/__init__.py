"""Simulated execution environment.

The paper evaluates FlowKV on AWS i3.2xlarge machines with NVMe SSDs and
measures wall-clock throughput and latency of C++/Java stores.  A pure
Python reproduction cannot match those speeds, so instead of wall time we
run every store against a *deterministic simulated clock*:

* real data structures hold real bytes (correctness is testable), and
* every algorithmic step — hash probes, key comparisons, block decodes,
  serialization, synchronization primitives, and disk requests — charges a
  calibrated cost to the clock.

Because all stores are charged from the same cost menu, relative
performance (who wins, by what factor, where crossovers fall) is decided by
operation *counts* and *bytes moved* — exactly the quantities the paper's
flamegraph breakdowns attribute the wins to.

Public surface:

* :class:`SimClock` — monotonically advancing simulated time,
* :class:`CpuCostModel` / :class:`SsdCostModel` — calibrated cost menus,
* :class:`MetricsLedger` — CPU time by category, I/O statistics, counters,
* :class:`SimEnv` — bundles the above; the single charging facade that all
  stores and the engine use.
"""

from repro.simenv.clock import SimClock
from repro.simenv.cpu import CpuCostModel
from repro.simenv.disk import SsdCostModel
from repro.simenv.metrics import (
    CAT_CHANGELOG,
    CAT_COMPACTION,
    CAT_ENGINE,
    CAT_GC,
    CAT_MIGRATION,
    CAT_NETWORK,
    CAT_PREFETCH,
    CAT_QUERY,
    CAT_RECOVERY,
    CAT_SERDE,
    CAT_STORE_READ,
    CAT_STORE_WRITE,
    CAT_SYNC,
    CPU_CATEGORIES,
    MetricsLedger,
    MetricsSnapshot,
)
from repro.simenv.env import SimEnv, scaled_cost_models

__all__ = [
    "SimClock",
    "CpuCostModel",
    "SsdCostModel",
    "MetricsLedger",
    "MetricsSnapshot",
    "SimEnv",
    "scaled_cost_models",
    "CAT_QUERY",
    "CAT_STORE_WRITE",
    "CAT_STORE_READ",
    "CAT_COMPACTION",
    "CAT_SERDE",
    "CAT_SYNC",
    "CAT_ENGINE",
    "CAT_GC",
    "CAT_MIGRATION",
    "CAT_RECOVERY",
    "CAT_NETWORK",
    "CAT_CHANGELOG",
    "CAT_PREFETCH",
    "CPU_CATEGORIES",
]
