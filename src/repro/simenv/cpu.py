"""CPU cost menu.

All constants are in simulated seconds and are calibrated to the rough
magnitudes of the operations on a ~3 GHz core (tens to hundreds of
nanoseconds per pointer-chasing step, ~1 ns/byte for memory-bandwidth-bound
byte work).  The absolute values matter less than their *ratios*: every
store is charged from this same menu, so relative throughput between
backends is decided by how many of each operation their algorithms perform.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuCostModel:
    """Per-operation CPU costs (seconds) charged to the simulated clock.

    Attributes:
        hash_probe: one hash-table lookup/insert step (hash + bucket walk).
        key_compare: one key comparison during sorted search or merge.
        branch_step: one tree/skiplist pointer hop.
        bloom_check: one bloom-filter membership test.
        copy_per_byte: memcpy-style byte movement in user space.
        serde_per_byte: serialization/deserialization per byte.
        serde_per_record: fixed per-record serialization overhead
            (object header, dispatch).
        merge_per_entry: fixed per-entry overhead of a sorted merge step
            during LSM compaction or multi-way iteration.
        block_decode_per_byte: decoding an on-disk block into memory
            (checksum + restart-point parsing in RocksDB terms).
        sync_op: one synchronization primitive (atomic CAS, epoch
            protection entry/exit).  Charged by the Faster-style store on
            every operation; FlowKV's single-threaded stores never pay it.
        function_call: invoking a user-defined function (virtual dispatch
            plus argument marshalling).
        syscall: fixed cost of crossing the kernel boundary for an I/O
            request (charged as CPU, separate from device time).
        allocation: one heap allocation.
        crc_per_byte: CRC32 checksum computation over snapshot bytes
            (software CRC at a few GB/s; charged to the ``recovery``
            ledger category on checkpoint seal and verify).
    """

    hash_probe: float = 150e-9
    key_compare: float = 75e-9
    branch_step: float = 60e-9
    bloom_check: float = 120e-9
    copy_per_byte: float = 0.25e-9
    serde_per_byte: float = 1.0e-9
    serde_per_record: float = 200e-9
    merge_per_entry: float = 300e-9
    block_decode_per_byte: float = 0.5e-9
    sync_op: float = 500e-9
    function_call: float = 120e-9
    syscall: float = 1.5e-6
    allocation: float = 80e-9
    crc_per_byte: float = 0.4e-9

    def sorted_search(self, n_entries: int) -> float:
        """Cost of a binary search over ``n_entries`` sorted entries."""
        if n_entries <= 1:
            return self.key_compare
        steps = max(1, int.bit_length(n_entries))
        return steps * self.key_compare

    def serde(self, n_bytes: int, n_records: int = 1) -> float:
        """Cost of (de)serializing ``n_records`` totalling ``n_bytes``."""
        return n_bytes * self.serde_per_byte + n_records * self.serde_per_record
