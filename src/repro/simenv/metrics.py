"""Metrics ledger: where simulated time and I/O volume are accounted.

The paper's analysis (Figures 4 and 10) hinges on *attributing* execution
time: query computation vs. store CPU (write / read / compaction) vs. I/O
wait.  The ledger keeps one bucket per category so the benchmark harness
can print the same breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# CPU-time categories.  These mirror the paper's breakdown labels.
CAT_QUERY = "query"  # user aggregate / window function computation
CAT_STORE_WRITE = "store_write"  # Put/Append paths inside a store
CAT_STORE_READ = "store_read"  # Get/Scan/trigger-read paths
CAT_COMPACTION = "compaction"  # background merging / log rewriting
CAT_SERDE = "serde"  # (de)serialization at the store boundary
CAT_SYNC = "sync"  # synchronization primitives (Faster epochs)
CAT_ENGINE = "engine"  # routing, window assignment, timers
CAT_GC = "gc"  # JVM garbage collection (heap backend model)
CAT_MIGRATION = "migration"  # key-group export/transfer/import during rescaling
CAT_RECOVERY = "recovery"  # checksums, checkpoint verify/replay reads, rollback, retry backoff
CAT_NETWORK = "network"  # cross-node link time: shuffles, chunk transfers, shard up/downloads
CAT_CHANGELOG = "changelog"  # changelog record framing, standby apply/replay work
CAT_PREFETCH = "prefetch"  # background prefetch I/O, overlapped with operator CPU

CPU_CATEGORIES = (
    CAT_QUERY,
    CAT_STORE_WRITE,
    CAT_STORE_READ,
    CAT_COMPACTION,
    CAT_SERDE,
    CAT_SYNC,
    CAT_ENGINE,
    CAT_GC,
    CAT_MIGRATION,
    CAT_RECOVERY,
    CAT_NETWORK,
    CAT_CHANGELOG,
    CAT_PREFETCH,
)

# Charge-time validation set: a typo'd category must fail loudly instead
# of silently accumulating in a bucket no report ever reads.
_KNOWN_CATEGORIES = frozenset(CPU_CATEGORIES)


@dataclass
class MetricsSnapshot:
    """An immutable copy of a ledger's totals, used for reporting."""

    cpu_seconds: dict[str, float]
    io_wait_seconds: float
    bytes_read: int
    bytes_written: int
    read_requests: int
    write_requests: int
    counters: dict[str, int]
    # Portion of io_wait_seconds that is *residual* prefetch wait: the
    # part of a prefetched read's device time that operator CPU did not
    # cover.  io_wait_seconds - prefetch_wait_seconds is demand I/O.
    prefetch_wait_seconds: float = 0.0

    @property
    def total_cpu_seconds(self) -> float:
        return sum(self.cpu_seconds.values())

    @property
    def store_cpu_seconds(self) -> float:
        """CPU spent inside the store (the paper's "Store" bars)."""
        return (
            self.cpu_seconds.get(CAT_STORE_WRITE, 0.0)
            + self.cpu_seconds.get(CAT_STORE_READ, 0.0)
            + self.cpu_seconds.get(CAT_COMPACTION, 0.0)
            + self.cpu_seconds.get(CAT_SYNC, 0.0)
            + self.cpu_seconds.get(CAT_GC, 0.0)
        )

    @property
    def network_seconds(self) -> float:
        """Simulated time spent on cross-node network links."""
        return self.cpu_seconds.get(CAT_NETWORK, 0.0)

    @property
    def network_bytes(self) -> int:
        return self.counters.get("net_bytes", 0)

    @property
    def total_seconds(self) -> float:
        return self.total_cpu_seconds + self.io_wait_seconds


@dataclass
class MetricsLedger:
    """Mutable accumulator of CPU time, I/O time, volume and event counts."""

    cpu_seconds: dict[str, float] = field(
        default_factory=lambda: {cat: 0.0 for cat in CPU_CATEGORIES}
    )
    io_wait_seconds: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    read_requests: int = 0
    write_requests: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    prefetch_wait_seconds: float = 0.0

    def add_cpu(self, category: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative CPU charge: {seconds}")
        if category not in _KNOWN_CATEGORIES:
            raise ValueError(
                f"unknown CPU category {category!r}; one of {CPU_CATEGORIES}"
            )
        self.cpu_seconds[category] = self.cpu_seconds.get(category, 0.0) + seconds

    def add_read(self, n_bytes: int, seconds: float, n_requests: int = 1) -> None:
        self.bytes_read += n_bytes
        self.read_requests += n_requests
        self.io_wait_seconds += seconds

    def add_write(self, n_bytes: int, seconds: float, n_requests: int = 1) -> None:
        self.bytes_written += n_bytes
        self.write_requests += n_requests
        self.io_wait_seconds += seconds

    def add_prefetch_wait(self, seconds: float) -> None:
        """Book residual prefetch wait: io_wait that overlap could not hide."""
        if seconds < 0:
            raise ValueError(f"negative prefetch wait: {seconds}")
        self.io_wait_seconds += seconds
        self.prefetch_wait_seconds += seconds

    def bump(self, counter: str, delta: int = 1) -> None:
        """Increment a named event counter (prefetch hits, compactions...)."""
        self.counters[counter] = self.counters.get(counter, 0) + delta

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            cpu_seconds=dict(self.cpu_seconds),
            io_wait_seconds=self.io_wait_seconds,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            read_requests=self.read_requests,
            write_requests=self.write_requests,
            counters=dict(self.counters),
            prefetch_wait_seconds=self.prefetch_wait_seconds,
        )

    def merge(self, other: "MetricsLedger | MetricsSnapshot") -> None:
        """Fold another ledger/snapshot into this one (cross-instance totals)."""
        for cat, secs in other.cpu_seconds.items():
            self.cpu_seconds[cat] = self.cpu_seconds.get(cat, 0.0) + secs
        self.io_wait_seconds += other.io_wait_seconds
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.read_requests += other.read_requests
        self.write_requests += other.write_requests
        self.prefetch_wait_seconds += getattr(other, "prefetch_wait_seconds", 0.0)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def reset(self) -> None:
        self.cpu_seconds = {cat: 0.0 for cat in CPU_CATEGORIES}
        self.io_wait_seconds = 0.0
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_requests = 0
        self.write_requests = 0
        self.counters = {}
        self.prefetch_wait_seconds = 0.0
