"""Changelog replication and hot-standby failover.

Every CAP_INCREMENTAL backend funnels its semantic mutations through the
:class:`repro.kvstores.api.KeyGroupDirtyTracker`; when a
:class:`ChangelogWriter` is attached there, the same mutations that mark
a key-group dirty also append an op record to a per-key-group, per-epoch
changelog segment.  On multi-node clusters a :class:`StandbyReplica` on
the owner's consecutive peer node tails the sealed segments over the
priced network into a warm copy of the owner's state (tracking a
``persisted_offset`` per group), so a node failure can *promote* the
standby — replaying only the changelog tail past the last applied offset
— instead of downloading and restoring the whole checkpoint chain.

The exactly-once argument is Carbone et al.'s: segments are sealed at
checkpoint-epoch cuts, so warm state at epoch E plus E's tail equals the
state at E's cut exactly, and the source rewind to E's record count
regenerates every later output identically.
"""

from repro.changelog.log import ChangelogWriter, pack_segment, unpack_segment
from repro.changelog.standby import (
    ChangelogReplication,
    StandbyReplica,
    StandbySeedSource,
)

__all__ = [
    "ChangelogWriter",
    "ChangelogReplication",
    "StandbyReplica",
    "StandbySeedSource",
    "pack_segment",
    "unpack_segment",
]
