"""Standby replicas: warm state tailed from changelog segments.

One :class:`StandbyReplica` mirrors one physical instance's store onto
the owner node's consecutive peer (``(owner + 1) % n_nodes`` — the same
placement rule as checkpoint-shard replicas).  At every checkpoint-epoch
cut the owner seals its buffered changelog into per-group segments and
ships them over the priced network; the standby buffers the newest
epoch's segments *pending* and folds everything older into its warm
cells, tracking a ``persisted_offset`` (highest applied sequence number)
per key-group — the faust ``apply_changelog_batch``/``persisted_offset``
shape.  Keeping the newest epoch pending is what gives promotion a real
tail: warm state sits at the previous cut, and promoting at epoch E
replays exactly E's records past the last applied offset.

A replica never serves doubtful state.  A dropped link (segment lost), a
CRC failure (torn/bit-flipped segment), or a sequence-number gap
invalidates the whole replica; it re-bootstraps with a full base at the
next cut, and a failover arriving before then degrades to
checkpoint-restore.  A ``slow_link`` stretches the tail's arrival time
(``ready_at``), so a kill that lands before the segments would have
arrived also degrades — the lagging-standby case.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any

from repro.changelog.log import ChangelogWriter, pack_segment, unpack_segment
from repro.cluster.topology import charge_link
from repro.errors import DiskIOError, SnapshotCorruptError
from repro.kvstores.api import (
    CAP_INCREMENTAL,
    DEFAULT_MAX_KEY_GROUPS,
    KIND_AGG,
    KIND_JOIN_LEFT,
    KIND_JOIN_RIGHT,
    LOG_APPEND,
    LOG_MERGE,
    LOG_PUT,
    LOG_REMOVE,
    LOG_TRIM,
    ExportedEntry,
    key_group_of,
)
from repro.simenv.metrics import CAT_CHANGELOG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology
    from repro.engine.runtime import Executor
    from repro.simenv import SimEnv

_JOIN_KINDS = (KIND_JOIN_LEFT, KIND_JOIN_RIGHT)

# Transfer-label prefixes (fault plans target these with drop_link /
# slow_link; torn_write/bit_flip target the matching "clog/" write label).
NET_SEGMENT_PREFIX = "net/clog/"
NET_BASE_PREFIX = "net/clog/base/"


class StandbyReplica:
    """Warm copy of one instance's state on the owner's peer node."""

    def __init__(self, key: str, owner_node: int, standby_node: int, groupspace: int) -> None:
        self.key = key
        self.owner_node = owner_node
        self.standby_node = standby_node
        self.groupspace = groupspace
        # (key, kind) -> {window: values}; list/agg cells hold serialized
        # value lists, join cells hold decoded (ts, value) pairs.
        self._cells: dict[tuple[bytes, str], dict[Any, list]] = {}
        self._etts: dict[tuple[bytes, str, Any], float | None] = {}
        # Highest applied sequence number per key-group.
        self.persisted_offset: dict[int, int] = {}
        # epoch -> group -> unapplied rows (only the newest epoch, by
        # construction: every seal folds all older epochs into warm).
        self.pending: dict[int, dict[int, list[tuple]]] = {}
        # epoch -> when its last segment landed, on the processing
        # timeline (cut time + shipping duration) — comparable against
        # the failure time a promotion is attempted at.
        self.ready_at: dict[int, float] = {}
        self.bootstrapped = False
        self.invalid_reason = ""
        self.applied_epoch: int | None = None  # warm state == this epoch's cut
        self.complete_epoch: int | None = None  # newest fully-received epoch
        self.records_applied = 0

    # ------------------------------------------------------------------
    # tailing (called by ChangelogReplication at each epoch cut)
    # ------------------------------------------------------------------
    def load_group_base(self, group: int, entries: list[ExportedEntry], env: "SimEnv") -> None:
        """Install one group's full-base entries (bootstrap)."""
        nbytes = 0
        for entry in entries:
            windows = self._cells.setdefault((entry.key, entry.kind), {})
            if entry.kind in _JOIN_KINDS:
                pairs = list(pickle.loads(entry.values[0]))
                env.charge_cpu(
                    CAT_CHANGELOG, len(entry.values[0]) * env.cpu.serde_per_byte
                )
                windows[entry.window] = pairs
            else:
                windows[entry.window] = list(entry.values)
            nbytes += entry.payload_bytes
            self._etts[(entry.key, entry.kind, entry.window)] = entry.ett
        env.charge_cpu(CAT_CHANGELOG, nbytes * env.cpu.copy_per_byte)

    def finish_base(self, epoch: int, sequences: dict[int, int], now: float) -> None:
        """Base fully landed: the warm copy equals ``epoch``'s cut and
        every record the owner ever logged counts as applied."""
        self.persisted_offset = dict(sequences)
        self.pending.clear()
        self.bootstrapped = True
        self.invalid_reason = ""
        self.applied_epoch = epoch
        self.complete_epoch = epoch
        self.ready_at[epoch] = now

    def receive_segment(self, epoch: int, group: int, data: bytes, env: "SimEnv") -> None:
        """Unframe one shipped segment into the pending epoch buffer."""
        env.charge_cpu(
            CAT_CHANGELOG,
            len(data) * (env.cpu.crc_per_byte + env.cpu.serde_per_byte),
        )
        rows = unpack_segment(data)
        self.pending.setdefault(epoch, {})[group] = rows

    def commit_epoch(self, epoch: int, now: float, env: "SimEnv") -> None:
        """Epoch fully received: fold every *older* pending epoch into
        the warm cells, keep this epoch as the promotion tail."""
        for pending_epoch in sorted(self.pending):
            if pending_epoch >= epoch:
                continue
            groups = self.pending.pop(pending_epoch)
            for group in sorted(groups):
                for row in groups[group]:
                    self._apply_row(group, row, env)
        # Epochs with no logged mutations ship nothing; state at their
        # cut equals the previous cut, so warm always reaches epoch - 1.
        if self.applied_epoch is None or self.applied_epoch < epoch - 1:
            self.applied_epoch = epoch - 1
        self.complete_epoch = epoch
        self.ready_at[epoch] = now

    def invalidate(self, reason: str) -> None:
        """Lost/corrupt/gapped tail: never serve doubtful state.  The
        replica re-bootstraps with a full base at the next cut."""
        self._cells.clear()
        self._etts.clear()
        self.persisted_offset.clear()
        self.pending.clear()
        self.ready_at.clear()
        self.bootstrapped = False
        self.invalid_reason = reason
        self.applied_epoch = None
        self.complete_epoch = None

    # ------------------------------------------------------------------
    # promotion / seeding (read side)
    # ------------------------------------------------------------------
    def usable_epochs(self) -> frozenset[int]:
        """Epochs whose exact cut this replica can reproduce: the warm
        epoch as-is, plus the newest epoch by applying the pending tail."""
        if not self.bootstrapped:
            return frozenset()
        usable = set()
        if self.applied_epoch is not None:
            usable.add(self.applied_epoch)
        if self.complete_epoch is not None:
            usable.add(self.complete_epoch)
        return frozenset(usable)

    def ready_by(self, epoch: int, at_time: float) -> bool:
        """Had every segment through ``epoch`` arrived by ``at_time``?
        (A slow link pushes ``ready_at`` past the failure time: lagging.)"""
        ready = self.ready_at.get(epoch)
        return ready is not None and ready <= at_time

    def promote(self, epoch: int, env: "SimEnv") -> tuple[list[ExportedEntry], int]:
        """Materialize the state at ``epoch``'s cut for a failover.

        Replays only the changelog tail past each group's last applied
        offset (zero records when promoting the warm epoch as-is).
        Returns ``(entries, tail_records_replayed)``.
        """
        if epoch not in self.usable_epochs():
            raise SnapshotCorruptError(
                f"standby for {self.key} cannot reproduce epoch {epoch} "
                f"(usable: {sorted(self.usable_epochs())})"
            )
        tail = 0
        groups = self.pending.pop(epoch, None)
        if groups:
            for group in sorted(groups):
                for row in groups[group]:
                    self._apply_row(group, row, env)
                    tail += 1
            self.applied_epoch = epoch
        return self._export_cells(env), tail

    def read_group(self, group: int, env: "SimEnv") -> list[ExportedEntry]:
        """One group's state at the newest cut (rescale-seed read): fold
        the group's pending tail, then copy its cells out."""
        for epoch in sorted(self.pending):
            rows = self.pending[epoch].pop(group, None)
            for row in rows or ():
                self._apply_row(group, row, env)
        return self._export_cells(
            env, lambda key: key_group_of(key, self.groupspace) == group
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _apply_row(self, group: int, row: tuple, env: "SimEnv") -> None:
        seq, op, key, window, kind, values = row
        expected = self.persisted_offset.get(group, 0) + 1
        if seq != expected:
            raise SnapshotCorruptError(
                f"changelog gap for {self.key} group {group}: "
                f"seq {seq}, persisted_offset {expected - 1}"
            )
        join = kind in _JOIN_KINDS
        nbytes = sum(len(v) for v in values if isinstance(v, (bytes, bytearray)))
        env.charge_cpu(
            CAT_CHANGELOG,
            env.cpu.serde_per_record
            + nbytes * (env.cpu.serde_per_byte if join else env.cpu.copy_per_byte),
        )
        windows = self._cells.setdefault((key, kind), {})
        if op == LOG_APPEND:
            items = [pickle.loads(v) for v in values] if join else list(values)
            windows.setdefault(window, []).extend(items)
        elif op == LOG_PUT:
            items = [pickle.loads(v) for v in values] if join else list(values)
            windows[window] = items
        elif op == LOG_MERGE:
            if join:
                items = [pair for v in values for pair in pickle.loads(v)]
                windows.setdefault(window, []).extend(items)
            elif kind == KIND_AGG:
                windows[window] = list(values)
            else:
                windows.setdefault(window, []).extend(values)
        elif op == LOG_REMOVE:
            windows.pop(window, None)
            self._etts.pop((key, kind, window), None)
        elif op == LOG_TRIM:
            cut = values[0]
            for w in list(windows):
                kept = [pair for pair in windows[w] if pair[0] >= cut]
                if kept:
                    windows[w] = kept
                else:
                    del windows[w]
                    self._etts.pop((key, kind, w), None)
        else:  # pragma: no cover - writer emits only the ops above
            raise SnapshotCorruptError(f"unknown changelog op {op!r}")
        if not windows:
            self._cells.pop((key, kind), None)
        self.persisted_offset[group] = seq
        self.records_applied += 1

    def _export_cells(self, env: "SimEnv", keep=None) -> list[ExportedEntry]:
        entries: list[ExportedEntry] = []
        nbytes = 0
        for (key, kind), windows in self._cells.items():
            if keep is not None and not keep(key):
                continue
            for window, items in windows.items():
                if not items:
                    continue
                if kind in _JOIN_KINDS:
                    # Stable sort: equal timestamps keep arrival order,
                    # matching the owner's insort behaviour.
                    blob = pickle.dumps(
                        sorted(items, key=lambda pair: pair[0]),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    env.charge_cpu(
                        CAT_CHANGELOG, len(blob) * env.cpu.serde_per_byte
                    )
                    values = [blob]
                else:
                    values = list(items)
                    nbytes += sum(len(v) for v in values)
                entries.append(
                    ExportedEntry(
                        key=key, window=window, kind=kind, values=values,
                        ett=self._etts.get((key, kind, window)),
                    )
                )
        env.charge_cpu(CAT_CHANGELOG, nbytes * env.cpu.copy_per_byte)
        return entries


class ChangelogReplication:
    """Owner-side writers plus peer-side standbys for one cluster job.

    Owned by the :class:`repro.recovery.RecoveryManager` standby lane and
    driven by the :class:`~repro.recovery.Checkpointer` at every epoch
    commit (:meth:`seal_epoch`).  All replication work — segment framing,
    standby applies, promotion replay — is charged to the manager's
    storage environment under the ``changelog`` category, and every
    shipped byte pays the priced network link from owner to standby
    (``net/clog/...`` labels: drop_link / slow_link / torn_write fault
    plans apply).
    """

    def __init__(self, env: "SimEnv", cluster: "ClusterTopology", faults=None) -> None:
        self.env = env
        self.cluster = cluster
        self.faults = faults
        self.enabled = cluster is not None and cluster.n_nodes > 1
        self._writers: dict[str, ChangelogWriter] = {}
        self._backends: dict[str, Any] = {}
        self._owner: dict[str, int] = {}
        self._standbys: dict[str, StandbyReplica] = {}
        self.segments_shipped = 0
        self.bytes_shipped = 0
        self.bases_shipped = 0
        self.records_shipped = 0
        self.promotions = 0

    def standby_of(self, owner_node: int) -> int | None:
        """Consecutive-peer placement, as for checkpoint replicas."""
        if not self.enabled:
            return None
        return (owner_node + 1) % self.cluster.n_nodes

    # ------------------------------------------------------------------
    # owner-side binding and sealing
    # ------------------------------------------------------------------
    def bind(self, executor: "Executor") -> None:
        """(Re)attach writers to the executor's live instances.

        Called at run start, after every recovery rebuild, and at each
        seal — so instances created or retired by a mid-run rescale are
        picked up without a dedicated hook.  Writers persist across
        binds (their buffers and sequence counters are the changelog);
        standbys for retired keys or re-placed owners are dropped.
        """
        live_writers: dict[str, ChangelogWriter] = {}
        live_backends: dict[str, Any] = {}
        live_owner: dict[str, int] = {}
        for node in executor._stateful_nodes:  # noqa: SLF001 - engine back-half
            for idx, instance in enumerate(executor._instances[node.node_id]):  # noqa: SLF001
                backend = instance.operator.backend
                if backend is None or CAP_INCREMENTAL not in backend.capabilities:
                    continue
                attach = getattr(backend, "attach_changelog", None)
                if attach is None:
                    continue
                key = f"op{node.node_id}/p{idx}"
                groupspace = int(
                    getattr(backend, "checkpoint_key_groups", DEFAULT_MAX_KEY_GROUPS)
                )
                writer = self._writers.get(key)
                if writer is None or writer.groupspace != groupspace:
                    writer = ChangelogWriter(key, groupspace)
                attach(writer)
                live_writers[key] = writer
                live_backends[key] = backend
                live_owner[key] = executor.cluster_node_of(idx) or 0
        self._writers = live_writers
        self._backends = live_backends
        self._owner = live_owner
        for key in list(self._standbys):
            standby = self._standbys[key]
            if (
                key not in live_writers
                or standby.owner_node != live_owner[key]
                or standby.groupspace != live_writers[key].groupspace
            ):
                del self._standbys[key]
        executor._replication = self  # noqa: SLF001 - promote-mode rescale seed

    def seal_epoch(self, epoch: int, executor: "Executor") -> None:
        """Ship this epoch's changelog to every standby (epoch cut).

        Runs right after the checkpoint manifest commits, so sealed
        segment sets are deltas between consistent cuts.  A replica that
        was never bootstrapped (first cut, post-recovery, post-rescale
        re-placement) receives a full base — the owner's state at this
        very cut — instead of a delta.
        """
        self.bind(executor)
        if not self.enabled:
            for writer in self._writers.values():
                writer.clear()
            return
        from repro.faults import CRASH_CHANGELOG_SEAL

        # The cut's place on the processing timeline: readiness stamps
        # are cut time plus shipping duration, in the same clock domain
        # failure times are measured in (see StandbyReplica.ready_by).
        cut_stamp = self._cut_stamp(executor)
        for key in sorted(self._writers):
            writer = self._writers[key]
            owner = self._owner[key]
            standby_node = self.standby_of(owner)
            if standby_node is None or standby_node == owner:
                writer.clear()
                continue
            standby = self._standbys.get(key)
            if standby is None:
                standby = self._standbys[key] = StandbyReplica(
                    key, owner, standby_node, writer.groupspace
                )
            if not standby.bootstrapped:
                self._ship_base(epoch, key, writer, standby, cut_stamp)
                continue
            rows_by_group = writer.seal()
            ship_started = self.env.now
            try:
                for group in sorted(rows_by_group):
                    if self.faults is not None:
                        self.faults.crash_point(
                            CRASH_CHANGELOG_SEAL, now=self.env.now
                        )
                    data = pack_segment(rows_by_group[group])
                    if self.faults is not None:
                        # Route the framed segment through the write-fault
                        # hook: torn_write/bit_flip plans with a "clog/"
                        # prefix corrupt it, caught by the CRC below.
                        data = self.faults.on_write(
                            f"clog/{key}/g{group:05d}", data, self.env.now
                        )
                    self.env.charge_cpu(
                        CAT_CHANGELOG, len(data) * self.env.cpu.crc_per_byte
                    )
                    charge_link(
                        self.env, self.cluster.network, owner, standby_node,
                        len(data), f"{NET_SEGMENT_PREFIX}{key}/g{group:05d}",
                        self.faults,
                    )
                    standby.receive_segment(epoch, group, data, self.env)
                    self.segments_shipped += 1
                    self.bytes_shipped += len(data)
                    self.records_shipped += len(rows_by_group[group])
                standby.commit_epoch(
                    epoch, cut_stamp + (self.env.now - ship_started), self.env
                )
            except DiskIOError as exc:
                # Dropped link: part of the epoch never arrived and the
                # owner's buffer is gone — the replica must re-bootstrap.
                standby.invalidate(f"epoch {epoch} segment lost: {exc}")
            except SnapshotCorruptError as exc:
                standby.invalidate(str(exc))

    def _cut_stamp(self, executor: "Executor") -> float:
        """The epoch cut's position on the processing timeline (the
        busiest instance's clock — the domain failure times live in)."""
        times = [
            instance.env.clock.now
            for node in executor._stateful_nodes  # noqa: SLF001
            for instance in executor._instances[node.node_id]  # noqa: SLF001
        ]
        return max(times, default=self.env.now)

    def _ship_base(
        self,
        epoch: int,
        key: str,
        writer: ChangelogWriter,
        standby: StandbyReplica,
        cut_stamp: float,
    ) -> None:
        """Bootstrap one replica with a full copy at this epoch's cut."""
        backend = self._backends[key]
        groupspace = writer.groupspace

        def group_of(k: bytes, _g: int = groupspace) -> int:
            return key_group_of(k, _g)

        from repro.faults import CRASH_CHANGELOG_SEAL

        # The cut's state already reflects every buffered record: the
        # delta rows are redundant with the base and are dropped, but
        # their sequence numbers still count as applied.
        writer.seal()
        ship_started = self.env.now
        export = backend.export_group_state(None, group_of)
        per_group: dict[int, list[ExportedEntry]] = {}
        for entry in export.entries:
            per_group.setdefault(group_of(entry.key), []).append(entry)
        try:
            for group in sorted(per_group):
                if self.faults is not None:
                    self.faults.crash_point(CRASH_CHANGELOG_SEAL, now=self.env.now)
                size = sum(e.payload_bytes for e in per_group[group])
                charge_link(
                    self.env, self.cluster.network, standby.owner_node,
                    standby.standby_node, size,
                    f"{NET_BASE_PREFIX}{key}/g{group:05d}", self.faults,
                )
                standby.load_group_base(group, per_group[group], self.env)
                self.bytes_shipped += size
            standby.finish_base(
                epoch, writer.sequences(),
                cut_stamp + (self.env.now - ship_started),
            )
            self.bases_shipped += 1
        except DiskIOError as exc:
            standby.invalidate(f"base ship failed at epoch {epoch}: {exc}")

    # ------------------------------------------------------------------
    # failure handling and promotion reads
    # ------------------------------------------------------------------
    def fail_node(self, node: int) -> None:
        """A node died: every warm replica *hosted* on it is gone.
        (Replicas *of* the node's instances live on its peer — intact.)"""
        for key in list(self._standbys):
            if self._standbys[key].standby_node == node:
                self._standbys[key].invalidate(f"standby host node {node} died")

    def reset(self) -> None:
        """Post-recovery: the old topology's writers and replicas are
        stale (their owners were rebuilt).  Everything re-bootstraps at
        the next epoch cut."""
        self._writers.clear()
        self._backends.clear()
        self._owner.clear()
        self._standbys.clear()

    def standby_for(self, key: str) -> StandbyReplica | None:
        return self._standbys.get(key)

    def promotable_epochs(self, key: str, at_time: float) -> frozenset[int]:
        """Epochs at which ``key``'s replica could be promoted, given
        the failure happened at ``at_time``."""
        standby = self._standbys.get(key)
        if standby is None or not standby.bootstrapped:
            return frozenset()
        return frozenset(
            epoch for epoch in standby.usable_epochs()
            if standby.ready_by(epoch, at_time)
        )

    def promote_entries(self, key: str, epoch: int) -> tuple[list[ExportedEntry], int]:
        """Materialize ``key``'s state at ``epoch`` (tail replayed)."""
        standby = self._standbys.get(key)
        if standby is None or not standby.bootstrapped:
            raise SnapshotCorruptError(
                f"no bootstrapped standby for {key}"
                + (f": {standby.invalid_reason}" if standby is not None else "")
            )
        entries, tail = standby.promote(epoch, self.env)
        self.promotions += 1
        return entries, tail

    def seed_source(self) -> "StandbySeedSource":
        """A read-side view for rescale-by-replica-promotion."""
        return StandbySeedSource(self)


class StandbySeedSource:
    """Seed-source protocol over warm replicas (rescale ``promote`` mode).

    Duck-typed like :class:`repro.recovery.CheckpointSeedSource`: a moved
    key-group that is *clean* since the last epoch cut can land at its
    destination from the warm replica (plus that group's pending tail)
    instead of being streamed live from the owner — and the bytes travel
    standby → destination, off the owner's hot path.
    """

    def __init__(self, replication: ChangelogReplication) -> None:
        self._rep = replication

    def shard_ref(self, key: str, group: int, max_key_groups: int):
        standby = self._rep.standby_for(key)
        if (
            standby is None
            or not standby.bootstrapped
            or standby.groupspace != max_key_groups
        ):
            return None
        return ("standby", key, group)

    def has_state(self, key: str) -> bool:
        standby = self._rep.standby_for(key)
        return standby is not None and standby.bootstrapped

    def read_entries(self, ref) -> list[ExportedEntry]:
        _tag, key, group = ref
        standby = self._rep.standby_for(key)
        if standby is None or not standby.bootstrapped:
            raise SnapshotCorruptError(f"standby for {key} vanished mid-rescale")
        return standby.read_group(group, self._rep.env)

    def charge_delivery(self, ref, destination_node: int | None, n_bytes: int) -> None:
        """Seeded bytes travel standby → destination over the network."""
        _tag, key, group = ref
        standby = self._rep.standby_for(key)
        if standby is None or destination_node is None:
            return
        charge_link(
            self._rep.env, self._rep.cluster.network, standby.standby_node,
            destination_node, n_bytes,
            f"{NET_SEGMENT_PREFIX}seed/{key}/g{group:05d}", self._rep.faults,
        )
