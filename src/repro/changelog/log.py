"""Changelog records, per-instance writers, and CRC-framed segments.

A changelog record is one semantic mutation as seen at the store
boundary — the faust table changelog is the exemplar: what gets logged
is the *effect* on a cell (append/put/remove/trim/merge with serialized
payloads), not the physical I/O that implemented it, so compaction and
spills ship zero bytes.

Records buffer in memory at the owner, partitioned by key-group, and
are sealed into one segment per dirty group at every checkpoint-epoch
cut (:meth:`ChangelogWriter.seal`).  Each record carries a per-group
sequence number (``seq``), contiguous from 1; the standby's
``persisted_offset`` for a group is the highest seq it has applied, and
a gap means a lost segment — the replica invalidates itself rather than
silently diverge.

Segment wire format: ``crc32(payload).to_bytes(4) || payload`` where
payload is the pickled row list.  A torn or bit-flipped segment fails
the CRC at the standby and raises :class:`SnapshotCorruptError`.
"""

from __future__ import annotations

import pickle
import zlib

from repro.errors import SnapshotCorruptError

# Row layout: (seq, op, key, window, kind, values) — op is one of the
# LOG_* tags in repro.kvstores.api; window is a repro.model.Window (or
# None for trims); values is a tuple of serialized payloads (empty for
# removes, the single cut timestamp for trims).


def pack_segment(rows: list[tuple]) -> bytes:
    """Frame one group's epoch rows for the wire (CRC32 header)."""
    payload = pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
    return zlib.crc32(payload).to_bytes(4, "big") + payload


def unpack_segment(data: bytes) -> list[tuple]:
    """Inverse of :func:`pack_segment`; CRC-verified."""
    if len(data) < 4:
        raise SnapshotCorruptError("changelog segment truncated")
    expected = int.from_bytes(data[:4], "big")
    payload = data[4:]
    if zlib.crc32(payload) != expected:
        raise SnapshotCorruptError("changelog segment failed CRC check")
    return pickle.loads(payload)


class ChangelogWriter:
    """Buffers one instance's changelog records between epoch cuts.

    Attached to the instance backend's
    :class:`~repro.kvstores.api.KeyGroupDirtyTracker` (its ``changelog``
    attribute); the tracker's ``log_*`` methods call :meth:`record`.
    Sequence numbers are per key-group and survive sealing — they are
    the standby's ``persisted_offset`` coordinate system.
    """

    def __init__(self, key: str, groupspace: int) -> None:
        self.key = key
        self.groupspace = groupspace
        self._rows: dict[int, list[tuple]] = {}
        self._seq: dict[int, int] = {}
        self.records_logged = 0
        self.bytes_logged = 0

    def record(self, group: int, op: str, key: bytes, window, kind: str, values) -> None:
        seq = self._seq.get(group, 0) + 1
        self._seq[group] = seq
        values = tuple(values)
        self._rows.setdefault(group, []).append((seq, op, key, window, kind, values))
        self.records_logged += 1
        for value in values:
            if isinstance(value, (bytes, bytearray)):
                self.bytes_logged += len(value)

    @property
    def has_records(self) -> bool:
        return bool(self._rows)

    def sequences(self) -> dict[int, int]:
        """Current per-group sequence high-water marks."""
        return dict(self._seq)

    def seal(self) -> dict[int, list[tuple]]:
        """Hand over the buffered rows per group and start a new epoch.

        Sequence counters persist across seals; only the buffers clear.
        """
        rows = self._rows
        self._rows = {}
        return rows

    def clear(self) -> None:
        """Drop buffered rows without shipping (no standby placed)."""
        self._rows.clear()
