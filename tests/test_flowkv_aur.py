"""Unit tests for the Append and Unaligned Read store (§4.2).

Covers the Stat table, predictive batch read, misprediction eviction,
read amplification accounting, the on-disk index log, and integrated
compaction with MSA.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aur import AurStore
from repro.core.ett import CountWindowPredictor, SessionGapPredictor
from repro.errors import StoreClosedError
from repro.model import Window
from repro.simenv import SimEnv
from repro.storage import SimFileSystem

GAP = 10.0


def make_store(
    env=None,
    fs=None,
    write_buffer=512,
    ratio=0.5,
    msa=1.5,
    predictor=None,
    **kwargs,
):
    env = env or SimEnv()
    fs = fs or SimFileSystem(env)
    store = AurStore(
        env,
        fs,
        predictor or SessionGapPredictor(GAP),
        "aur",
        write_buffer_bytes=write_buffer,
        read_batch_ratio=ratio,
        max_space_amplification=msa,
        data_segment_bytes=2048,
        prefetch_buffer_bytes=1 << 20,
        **kwargs,
    )
    return env, fs, store


def session_window(start: float) -> Window:
    return Window(start, start + GAP)


class TestAppendGet:
    def test_buffer_only(self):
        _env, _fs, store = make_store(write_buffer=1 << 20)
        w = session_window(0.0)
        store.append(b"k", b"v1", w, 0.0)
        store.append(b"k", b"v2", w, 1.0)
        assert store.get(b"k", w) == [b"v1", b"v2"]
        assert store.get(b"k", w) == []  # fetch & remove

    def test_spilled_values_combined_with_buffered(self):
        _env, _fs, store = make_store(write_buffer=256)
        w = session_window(0.0)
        for i in range(50):
            store.append(b"k", f"v{i:03d}".encode(), w, float(i) / 10)
        assert store.get(b"k", w) == [f"v{i:03d}".encode() for i in range(50)]

    def test_keys_and_windows_isolated(self):
        _env, _fs, store = make_store(write_buffer=256)
        w1, w2 = session_window(0.0), session_window(100.0)
        for i in range(30):
            store.append(b"a", b"A1", w1, 0.0)
            store.append(b"a", b"A2", w2, 100.0)
            store.append(b"b", b"B1", w1, 0.0)
        assert store.get(b"a", w1) == [b"A1"] * 30
        assert store.get(b"a", w2) == [b"A2"] * 30
        assert store.get(b"b", w1) == [b"B1"] * 30

    def test_missing_window(self):
        _env, _fs, store = make_store()
        assert store.get(b"k", session_window(5.0)) == []

    def test_closed_rejects(self):
        _env, _fs, store = make_store()
        store.close()
        with pytest.raises(StoreClosedError):
            store.append(b"k", b"v", session_window(0.0), 0.0)


class TestStatTable:
    def test_ett_tracked_per_key_window(self):
        _env, _fs, store = make_store()
        w = session_window(0.0)
        store.append(b"k", b"v", w, 3.0)
        assert store._stat[(b"k", w)].ett == pytest.approx(3.0 + GAP)
        store.append(b"k", b"v", w, 7.0)
        assert store._stat[(b"k", w)].ett == pytest.approx(7.0 + GAP)

    def test_stat_removed_on_get(self):
        _env, _fs, store = make_store()
        w = session_window(0.0)
        store.append(b"k", b"v", w, 0.0)
        store.get(b"k", w)
        assert (b"k", w) not in store._stat


class TestPredictiveBatchRead:
    def _spill_many_windows(self, store, n_keys=20, values_per_key=10):
        for i in range(n_keys):
            w = session_window(float(i))
            for j in range(values_per_key):
                store.append(f"k{i:02d}".encode(), f"v{j}".encode(), w, float(i) + j * 0.1)
        store.flush()

    def test_prefetch_loads_soon_windows(self):
        _env, _fs, store = make_store(write_buffer=1 << 20, ratio=0.5)
        self._spill_many_windows(store)
        w0 = session_window(0.0)
        store.get(b"k00", w0)  # miss: triggers a batch read
        assert store.prefetch_stats.index_scans == 1
        assert store.prefetch_stats.loads > 0
        # The next-soonest windows should now hit the prefetch buffer.
        store.get(b"k01", session_window(1.0))
        assert store.prefetch_stats.hits >= 1

    def test_prefetch_amortizes_scans(self):
        _env, _fs, store = make_store(write_buffer=1 << 20, ratio=1.0)
        self._spill_many_windows(store, n_keys=20)
        for i in range(20):
            store.get(f"k{i:02d}".encode(), session_window(float(i)))
        # With ratio 1.0 a single scan serves (almost) every trigger.
        assert store.prefetch_stats.index_scans <= 2
        assert store.prefetch_stats.hit_ratio > 0.8

    def test_ratio_zero_scans_every_trigger(self):
        _env, _fs, store = make_store(write_buffer=1 << 20, ratio=0.0)
        self._spill_many_windows(store, n_keys=10)
        for i in range(10):
            store.get(f"k{i:02d}".encode(), session_window(float(i)))
        assert store.prefetch_stats.index_scans == 10
        assert store.prefetch_stats.loads == 0
        assert store.prefetch_stats.direct_reads == 10

    def test_eviction_on_misprediction(self):
        """A new tuple arriving for a prefetched window evicts it (§4.2:
        the session was extended, the prediction was wrong)."""
        _env, _fs, store = make_store(write_buffer=1 << 20, ratio=1.0)
        self._spill_many_windows(store, n_keys=5)
        store.get(b"k00", session_window(0.0))  # prefetches the rest
        assert (b"k01", session_window(1.0)) in store._prefetch
        store.append(b"k01", b"late", session_window(1.0), 50.0)
        assert (b"k01", session_window(1.0)) not in store._prefetch
        assert store.prefetch_stats.evictions == 1
        # The evicted window is re-read correctly later.
        values = store.get(b"k01", session_window(1.0))
        assert values == [f"v{j}".encode() for j in range(10)] + [b"late"]

    def test_eviction_on_flush_of_prefetched_window(self):
        _env, _fs, store = make_store(write_buffer=1 << 20, ratio=1.0)
        self._spill_many_windows(store, n_keys=5)
        w1 = session_window(1.0)
        store.get(b"k00", session_window(0.0))
        assert (b"k01", w1) in store._prefetch
        # New value buffered for the prefetched window, then flushed:
        store.append(b"k01", b"tail", w1, 60.0)
        store.flush()
        values = store.get(b"k01", w1)
        assert values[-1] == b"tail"
        assert len(values) == 11

    def test_unpredictable_windows_never_prefetched(self):
        env, fs, store = make_store(
            write_buffer=1 << 20, ratio=1.0, predictor=CountWindowPredictor()
        )
        self._spill_many_windows(store, n_keys=5)
        store.get(b"k00", session_window(0.0))
        assert store.prefetch_stats.loads == 0

    def test_values_preserved_across_batch_read(self):
        _env, _fs, store = make_store(write_buffer=256, ratio=0.5)
        windows = {}
        for i in range(15):
            w = session_window(float(i * 3))
            key = f"k{i:02d}".encode()
            windows[key] = w
            for j in range(8):
                store.append(key, f"{i}-{j}".encode(), w, float(i * 3))
        for key, w in windows.items():
            i = int(key[1:])
            assert store.get(key, w) == [f"{i}-{j}".encode() for j in range(8)]


class TestIndexLogAndCompaction:
    def test_index_log_on_disk(self):
        _env, fs, store = make_store(write_buffer=256)
        for i in range(50):
            store.append(b"k", b"v" * 20, session_window(0.0), 0.0)
        index_files = [f for f in fs.list_files("aur/") if "index" in f]
        assert len(index_files) == 1
        assert fs.size(index_files[0]) > 0

    def test_compaction_triggers_at_msa(self):
        _env, fs, store = make_store(write_buffer=256, msa=1.2, ratio=0.5)
        for round_idx in range(30):
            w = session_window(float(round_idx))
            key = f"k{round_idx:02d}".encode()
            for j in range(20):
                store.append(key, b"v" * 30, w, float(round_idx))
            store.get(key, w)  # consume: creates dead bytes
        assert store.compaction_count > 0

    def test_compaction_reclaims_disk_space(self):
        _env, fs, store = make_store(write_buffer=256, msa=1.2, ratio=0.5)
        for round_idx in range(40):
            w = session_window(float(round_idx))
            key = f"k{round_idx:02d}".encode()
            for j in range(20):
                store.append(key, b"v" * 30, w, float(round_idx))
            store.get(key, w)
        # Disk usage bounded: at most MSA x live plus one active segment.
        assert store.disk_bytes < 40 * 20 * 32  # far less than total written

    def test_data_survives_compaction(self):
        _env, _fs, store = make_store(write_buffer=256, msa=1.1, ratio=0.5)
        survivors = {}
        for round_idx in range(40):
            w = session_window(float(round_idx))
            key = f"k{round_idx:02d}".encode()
            for j in range(10):
                store.append(key, f"{round_idx}-{j}".encode(), w, float(round_idx))
            if round_idx % 2 == 0:
                store.get(key, w)  # consume half to build garbage
            else:
                survivors[key] = w
        assert store.compaction_count > 0
        for key, w in survivors.items():
            round_idx = int(key[1:])
            assert store.get(key, w) == [
                f"{round_idx}-{j}".encode() for j in range(10)
            ]

    def test_space_amplification_metric(self):
        _env, _fs, store = make_store(write_buffer=128, msa=100.0)
        assert store.space_amplification == 1.0
        w = session_window(0.0)
        for j in range(30):
            store.append(b"k", b"v" * 30, w, 0.0)
        store.flush()
        assert store.space_amplification == pytest.approx(1.0)
        store.get(b"k", w)
        assert store.space_amplification == float("inf")  # all dead

    def test_drop_window_marks_dead(self):
        _env, _fs, store = make_store(write_buffer=128, msa=100.0)
        w = session_window(0.0)
        for j in range(30):
            store.append(b"k", b"v" * 30, w, 0.0)
        store.flush()
        store.drop_window(b"k", w)
        assert store.get(b"k", w) == []
        assert store.space_amplification == float("inf")


class TestReadAmplificationEquation:
    def test_read_amplification_inverse_of_hit_ratio(self):
        """Equation 1: expected reads per tuple = 1/r.  With eviction and
        re-read, a tuple read after one eviction was loaded twice."""
        _env, _fs, store = make_store(write_buffer=1 << 20, ratio=1.0)
        w = session_window(0.0)
        for j in range(10):
            store.append(b"a", b"v", w, 0.0)
        store.append(b"b", b"x", session_window(1.0), 1.0)
        store.flush()
        store.get(b"b", session_window(1.0))  # prefetches (a, w)
        store.append(b"a", b"late", w, 5.0)  # evict: misprediction
        store.flush()
        store.get(b"a", w)  # re-read from disk
        assert store.prefetch_stats.evictions == 1
        # loads counts (a,w) twice? No: once prefetched, once direct via
        # the requested path — the requested window is not a "load".
        assert store.prefetch_stats.loads >= 1


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 4), st.binary(min_size=1, max_size=30)),
        min_size=1,
        max_size=150,
    ),
    st.sampled_from([0.0, 0.2, 1.0]),
)
def test_aur_round_trip_property(entries, ratio):
    """All appended values come back exactly once per (key, window),
    in order, regardless of flush/prefetch/compaction interleaving."""
    env = SimEnv()
    fs = SimFileSystem(env)
    store = AurStore(
        env, fs, SessionGapPredictor(GAP), "aur",
        write_buffer_bytes=256, read_batch_ratio=ratio,
        max_space_amplification=1.2, data_segment_bytes=512,
    )
    windows = [session_window(float(i * 20)) for i in range(5)]
    expected: dict[tuple[bytes, Window], list[bytes]] = {}
    for key_idx, window_idx, value in entries:
        key = f"k{key_idx}".encode()
        window = windows[window_idx]
        store.append(key, value, window, window.start)
        expected.setdefault((key, window), []).append(value)
    for (key, window), values in expected.items():
        assert store.get(key, window) == values
        assert store.get(key, window) == []
