"""Checkpointing tests (§8, Fault Tolerance).

For every backend: build state, snapshot, simulate a crash (fresh store
instance on a fresh simulated disk), restore, and verify all reads —
including paths that need the on-disk files (spilled data, SSTables,
hybrid-log reads, AUR index scans).
"""

from __future__ import annotations

import pytest

from repro.core import FlowKVComposite, FlowKVConfig, StorePattern
from repro.core.aar import AarStore
from repro.core.aur import AurStore
from repro.core.ett import SessionGapPredictor
from repro.core.rmw import RmwStore
from repro.engine.state import GenericKVBackend
from repro.errors import StoreOOMError
from repro.kvstores.hashkv import FasterConfig, FasterStore
from repro.kvstores.lsm import LsmConfig, LsmStore
from repro.kvstores.lsm.format import unpack_list_value
from repro.kvstores.memory import HeapWindowBackend
from repro.model import Window
from repro.simenv import SimEnv
from repro.storage import SimFileSystem

W1 = Window(0.0, 100.0)


def fresh():
    env = SimEnv()
    return env, SimFileSystem(env)


class TestAarSnapshot:
    def test_round_trip_with_spilled_state(self):
        env, fs = fresh()
        store = AarStore(env, fs, "aar", write_buffer_bytes=512)
        for i in range(100):
            store.append(f"k{i % 5}".encode(), f"v{i:03d}".encode(), W1)
        snapshot = store.snapshot()

        env2, fs2 = fresh()
        recovered = AarStore(env2, fs2, "aar", write_buffer_bytes=512)
        recovered.restore(snapshot)
        grouped: dict[bytes, list[bytes]] = {}
        for key, values in recovered.get_window(W1):
            grouped.setdefault(key, []).extend(values)
        assert grouped[b"k0"] == [f"v{i:03d}".encode() for i in range(0, 100, 5)]
        assert sum(len(v) for v in grouped.values()) == 100

    def test_snapshot_flushes_buffer_first(self):
        env, fs = fresh()
        store = AarStore(env, fs, "aar", write_buffer_bytes=1 << 20)
        store.append(b"k", b"buffered", W1)
        snapshot = store.snapshot()
        assert store.memory_bytes == 0  # flushed
        assert any(snapshot.files)  # the flush produced a file


class TestAurSnapshot:
    def test_round_trip_with_index_and_stat(self):
        env, fs = fresh()
        store = AurStore(env, fs, SessionGapPredictor(10.0), "aur",
                         write_buffer_bytes=256, read_batch_ratio=0.5)
        windows = {}
        for i in range(12):
            window = Window(float(i * 20), float(i * 20) + 10.0)
            key = f"k{i:02d}".encode()
            windows[key] = window
            for j in range(8):
                store.append(key, f"{i}-{j}".encode(), window, window.start)
        snapshot = store.snapshot()

        env2, fs2 = fresh()
        recovered = AurStore(env2, fs2, SessionGapPredictor(10.0), "aur",
                             write_buffer_bytes=256, read_batch_ratio=0.5)
        recovered.restore(snapshot)
        for key, window in windows.items():
            i = int(key[1:])
            assert recovered.get(key, window) == [
                f"{i}-{j}".encode() for j in range(8)
            ]

    def test_ett_survives_recovery(self):
        env, fs = fresh()
        store = AurStore(env, fs, SessionGapPredictor(10.0), "aur",
                         write_buffer_bytes=1 << 20)
        store.append(b"k", b"v", Window(0.0, 10.0), 7.0)
        snapshot = store.snapshot()
        env2, fs2 = fresh()
        recovered = AurStore(env2, fs2, SessionGapPredictor(10.0), "aur",
                             write_buffer_bytes=1 << 20)
        recovered.restore(snapshot)
        assert recovered._stat[(b"k", Window(0.0, 10.0))].ett == pytest.approx(17.0)

    def test_consumed_windows_stay_consumed(self):
        env, fs = fresh()
        store = AurStore(env, fs, SessionGapPredictor(10.0), "aur",
                         write_buffer_bytes=128, max_space_amplification=100.0)
        w = Window(0.0, 10.0)
        for j in range(20):
            store.append(b"k", b"v" * 20, w, 0.0)
        store.get(b"k", w)  # consume
        snapshot = store.snapshot()
        env2, fs2 = fresh()
        recovered = AurStore(env2, fs2, SessionGapPredictor(10.0), "aur",
                             write_buffer_bytes=128, max_space_amplification=100.0)
        recovered.restore(snapshot)
        assert recovered.get(b"k", w) == []


class TestRmwSnapshot:
    def test_round_trip_spills_hot_aggregates(self):
        env, fs = fresh()
        store = RmwStore(env, fs, "rmw", write_buffer_bytes=512)
        for i in range(100):
            store.put(f"k{i:03d}".encode(), W1, f"agg{i}".encode())
        snapshot = store.snapshot()
        assert len(store._buffer) == 0  # every hot aggregate spilled

        env2, fs2 = fresh()
        recovered = RmwStore(env2, fs2, "rmw", write_buffer_bytes=512)
        recovered.restore(snapshot)
        for i in range(100):
            assert recovered.get(f"k{i:03d}".encode(), W1) == f"agg{i}".encode()

    def test_updates_after_recovery(self):
        env, fs = fresh()
        store = RmwStore(env, fs, "rmw", write_buffer_bytes=512)
        store.put(b"k", W1, b"before")
        snapshot = store.snapshot()
        env2, fs2 = fresh()
        recovered = RmwStore(env2, fs2, "rmw", write_buffer_bytes=512)
        recovered.restore(snapshot)
        recovered.put(b"k", W1, b"after!")
        assert recovered.remove(b"k", W1) == b"after!"


class TestCompositeSnapshot:
    def test_all_instances_captured(self):
        env, fs = fresh()
        config = FlowKVConfig(num_instances=3, write_buffer_bytes=512)
        composite = FlowKVComposite(env, fs, StorePattern.RMW, config, name="c")
        for i in range(60):
            composite.rmw_put(f"key{i}".encode(), W1, i)
        snapshot = composite.snapshot()

        env2, fs2 = fresh()
        recovered = FlowKVComposite(env2, fs2, StorePattern.RMW, config, name="c")
        recovered.restore(snapshot)
        for i in range(60):
            assert recovered.rmw_get(f"key{i}".encode(), W1) == i

    def test_instance_count_mismatch_rejected(self):
        env, fs = fresh()
        composite = FlowKVComposite(
            env, fs, StorePattern.RMW, FlowKVConfig(num_instances=2), name="c"
        )
        snapshot = composite.snapshot()
        env2, fs2 = fresh()
        other = FlowKVComposite(
            env2, fs2, StorePattern.RMW, FlowKVConfig(num_instances=4), name="c"
        )
        with pytest.raises(ValueError):
            other.restore(snapshot)

    def test_aur_composite_round_trip(self):
        env, fs = fresh()
        config = FlowKVConfig(num_instances=2, write_buffer_bytes=256)
        composite = FlowKVComposite(
            env, fs, StorePattern.AUR, config,
            predictor=SessionGapPredictor(10.0), name="c",
        )
        for i in range(30):
            window = Window(float(i), float(i) + 10.0)
            composite.append(f"k{i}".encode(), window, ("payload", i), float(i))
        snapshot = composite.snapshot()

        env2, fs2 = fresh()
        recovered = FlowKVComposite(
            env2, fs2, StorePattern.AUR, config,
            predictor=SessionGapPredictor(10.0), name="c",
        )
        recovered.restore(snapshot)
        for i in range(30):
            window = Window(float(i), float(i) + 10.0)
            assert recovered.read_key_window(f"k{i}".encode(), window) == [("payload", i)]


class TestHeapSnapshot:
    def test_round_trip(self):
        env, fs = fresh()
        backend = HeapWindowBackend(env, capacity_bytes=1 << 20)
        backend.append(b"k", W1, ("v", 1), 0.0)
        backend.rmw_put(b"agg", W1, 42)
        snapshot = backend.snapshot()

        env2, _ = fresh()
        recovered = HeapWindowBackend(env2, capacity_bytes=1 << 20)
        recovered.restore(snapshot)
        assert recovered.read_key_window(b"k", W1) == [("v", 1)]
        assert recovered.rmw_get(b"agg", W1) == 42

    def test_restore_into_smaller_heap_ooms(self):
        env, fs = fresh()
        backend = HeapWindowBackend(env, capacity_bytes=1 << 20)
        for i in range(100):
            backend.append(b"k", W1, b"x" * 100, 0.0)
        snapshot = backend.snapshot()
        env2, _ = fresh()
        small = HeapWindowBackend(env2, capacity_bytes=1024)
        with pytest.raises(StoreOOMError):
            small.restore(snapshot)


class TestBaselineStoreSnapshots:
    def test_lsm_round_trip_with_levels(self):
        env, fs = fresh()
        config = LsmConfig(write_buffer_bytes=1024, level1_bytes=4096, max_file_bytes=2048)
        store = LsmStore(env, fs, "lsm", config)
        for i in range(800):
            store.put(f"key{i % 80:03d}".encode(), f"value{i:05d}".encode())
        for i in range(10):
            store.append(f"lst{i}".encode(), f"e{i}".encode())
        snapshot = store.snapshot()

        env2, fs2 = fresh()
        recovered = LsmStore(env2, fs2, "lsm", config)
        recovered.restore(snapshot)
        for j in range(80):
            i = 720 + j
            assert recovered.get(f"key{j:03d}".encode()) == f"value{i:05d}".encode()
        assert unpack_list_value(recovered.get(b"lst3")) == [b"e3"]
        # Writes continue after recovery with consistent sequence numbers.
        recovered.put(b"key000", b"new")
        assert recovered.get(b"key000") == b"new"

    def test_faster_round_trip_with_spill(self):
        env, fs = fresh()
        config = FasterConfig(memory_log_bytes=2048, spill_chunk_bytes=512)
        store = FasterStore(env, fs, "f", config)
        for i in range(300):
            store.put(f"k{i:03d}".encode(), f"value-{i:04d}".encode())
        snapshot = store.snapshot()

        env2, fs2 = fresh()
        recovered = FasterStore(env2, fs2, "f", config)
        recovered.restore(snapshot)
        for i in range(300):
            assert recovered.get(f"k{i:03d}".encode()) == f"value-{i:04d}".encode()

    def test_generic_backend_delegates(self):
        env, fs = fresh()
        store = LsmStore(env, fs, "lsm", LsmConfig(write_buffer_bytes=1024))
        backend = GenericKVBackend(env, store)
        backend.rmw_put(b"k", W1, {"n": 9})
        snapshot = backend.snapshot()

        env2, fs2 = fresh()
        recovered = GenericKVBackend(
            env2, LsmStore(env2, fs2, "lsm", LsmConfig(write_buffer_bytes=1024))
        )
        recovered.restore(snapshot)
        assert recovered.rmw_get(b"k", W1) == {"n": 9}


class TestSnapshotCosts:
    def test_snapshot_charges_simulated_time(self):
        env, fs = fresh()
        store = AarStore(env, fs, "aar", write_buffer_bytes=512)
        for i in range(200):
            store.append(b"k", b"v" * 50, W1)
        before = env.now
        snapshot = store.snapshot()
        assert env.now > before
        assert snapshot.total_bytes > 0
