"""Unit tests for the Read-Modify-Write store (§4.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rmw import RmwStore
from repro.errors import StoreClosedError
from repro.model import Window
from repro.simenv import CAT_SYNC, SimEnv
from repro.storage import SimFileSystem

W1 = Window(0.0, 100.0)
W2 = Window(100.0, 200.0)


def make_store(write_buffer=512, msa=1.5, segment=1024):
    env = SimEnv()
    fs = SimFileSystem(env)
    store = RmwStore(
        env, fs, "rmw",
        write_buffer_bytes=write_buffer,
        max_space_amplification=msa,
        data_segment_bytes=segment,
    )
    return env, fs, store


class TestGetPutRemove:
    def test_basic_cycle(self):
        _env, _fs, store = make_store()
        assert store.get(b"k", W1) is None
        store.put(b"k", W1, b"agg1")
        assert store.get(b"k", W1) == b"agg1"
        store.put(b"k", W1, b"agg2")
        assert store.get(b"k", W1) == b"agg2"
        assert store.remove(b"k", W1) == b"agg2"
        assert store.get(b"k", W1) is None

    def test_remove_missing(self):
        _env, _fs, store = make_store()
        assert store.remove(b"nope", W1) is None

    def test_windows_are_namespaces(self):
        _env, _fs, store = make_store()
        store.put(b"k", W1, b"one")
        store.put(b"k", W2, b"two")
        assert store.get(b"k", W1) == b"one"
        assert store.get(b"k", W2) == b"two"

    def test_closed_rejects(self):
        _env, _fs, store = make_store()
        store.close()
        with pytest.raises(StoreClosedError):
            store.get(b"k", W1)


class TestSpillAndReload:
    def test_values_survive_spill(self):
        _env, _fs, store = make_store(write_buffer=512)
        for i in range(200):
            store.put(f"k{i:03d}".encode(), W1, f"agg{i:04d}".encode())
        assert store.disk_bytes > 0
        for i in range(200):
            assert store.get(f"k{i:03d}".encode(), W1) == f"agg{i:04d}".encode()

    def test_update_after_spill(self):
        _env, _fs, store = make_store(write_buffer=512)
        for i in range(200):
            store.put(f"k{i:03d}".encode(), W1, b"old")
        store.put(b"k000", W1, b"new")
        # Fill again so k000 may spill with the new value.
        for i in range(200, 400):
            store.put(f"k{i:03d}".encode(), W1, b"x")
        assert store.get(b"k000", W1) == b"new"

    def test_remove_after_spill(self):
        _env, _fs, store = make_store(write_buffer=512)
        for i in range(200):
            store.put(f"k{i:03d}".encode(), W1, f"agg{i}".encode())
        assert store.remove(b"k000", W1) == b"agg0"
        assert store.get(b"k000", W1) is None

    def test_spilled_read_promotes_to_buffer(self):
        env, _fs, store = make_store(write_buffer=512)
        for i in range(200):
            store.put(f"k{i:03d}".encode(), W1, b"agg")
        reads_before = env.ledger.read_requests
        store.get(b"k000", W1)
        first_read = env.ledger.read_requests - reads_before
        reads_before = env.ledger.read_requests
        store.get(b"k000", W1)
        second_read = env.ledger.read_requests - reads_before
        assert first_read > 0
        assert second_read == 0  # now hot in the write buffer


class TestNoSynchronization:
    def test_rmw_store_never_charges_sync(self):
        """Single-threaded by design: unlike Faster, no epoch charges."""
        env, _fs, store = make_store()
        for i in range(100):
            store.put(f"k{i}".encode(), W1, b"agg")
            store.get(f"k{i}".encode(), W1)
        assert env.ledger.cpu_seconds[CAT_SYNC] == 0.0


class TestCompaction:
    def test_compaction_triggered_by_msa(self):
        _env, _fs, store = make_store(write_buffer=256, msa=1.3, segment=512)
        for i in range(1000):
            store.put(f"k{i % 20:03d}".encode(), W1, f"agg{i:05d}".encode())
        assert store.compaction_count > 0
        for j in range(20):
            i = 980 + j
            assert store.get(f"k{j:03d}".encode(), W1) == f"agg{i:05d}".encode()

    def test_disk_bounded_after_churn(self):
        _env, _fs, store = make_store(write_buffer=256, msa=1.3, segment=512)
        for i in range(2000):
            store.put(f"k{i % 10:02d}".encode(), W1, f"agg{i:06d}".encode())
        live_estimate = 10 * 40
        assert store.disk_bytes < live_estimate * 20

    def test_removes_create_garbage_collected_space(self):
        _env, _fs, store = make_store(write_buffer=256, msa=1.3, segment=512)
        for i in range(500):
            key = f"k{i:03d}".encode()
            store.put(key, W1, b"agg" * 10)
        for i in range(400):
            store.remove(f"k{i:03d}".encode(), W1)
        for i in range(400, 500):
            assert store.get(f"k{i:03d}".encode(), W1) == b"agg" * 10


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "remove"]),
            st.integers(0, 20),
            st.binary(min_size=1, max_size=30),
        ),
        min_size=1,
        max_size=300,
    )
)
def test_rmw_matches_reference_model(ops):
    _env, _fs, store = make_store(write_buffer=384, msa=1.3, segment=512)
    keys = [f"key{i:02d}".encode() for i in range(21)]
    reference: dict[bytes, bytes] = {}
    for op, key_idx, value in ops:
        key = keys[key_idx]
        if op == "put":
            store.put(key, W1, value)
            reference[key] = value
        elif op == "get":
            assert store.get(key, W1) == reference.get(key)
        else:
            assert store.remove(key, W1) == reference.pop(key, None)
    for key in keys:
        assert store.get(key, W1) == reference.get(key)
