"""Regression soak for AUR value ordering across compaction relocation.

Found by randomized testing: segment-selective compaction moves live
ranges into new (higher-id) segments, so device order no longer matches
logical write order; reads must reassemble values by entry sequence.
Also covers window-identity reuse after consumption (the epoch
mechanism) under heavy churn.
"""

from __future__ import annotations

import random

import pytest

from repro.core.aur import AurStore
from repro.core.ett import SessionGapPredictor
from repro.model import Window
from repro.simenv import SimEnv
from repro.storage import SimFileSystem


@pytest.mark.parametrize("seed", [0, 1, 2, 5])
def test_aur_order_preserved_under_churn(seed):
    rng = random.Random(seed)
    env = SimEnv()
    fs = SimFileSystem(env)
    store = AurStore(
        env, fs, SessionGapPredictor(10.0), "aur",
        write_buffer_bytes=200, read_batch_ratio=0.5,
        max_space_amplification=1.2, data_segment_bytes=400,
    )
    model: dict[tuple[bytes, Window], list[bytes]] = {}
    windows = [Window(float(i * 20), float(i * 20) + 10) for i in range(4)]
    keys = [f"k{i}".encode() for i in range(4)]
    for step in range(4000):
        op = rng.random()
        key = rng.choice(keys)
        window = rng.choice(windows)
        if op < 0.6:
            value = f"v{step}".encode()
            store.append(key, value, window, window.start)
            model.setdefault((key, window), []).append(value)
        elif op < 0.9:
            assert store.get(key, window) == model.pop((key, window), [])
        else:
            store.flush()
    for (key, window), values in list(model.items()):
        assert store.get(key, window) == values
    assert store.compaction_count > 0  # the churn actually compacted
