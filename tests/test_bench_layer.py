"""Unit tests for the benchmark layer: profiles, harness, reporting."""

from __future__ import annotations

import pytest

from repro.bench.harness import RunRecord, run_latency, run_matrix, run_query
from repro.bench.profiles import (
    BACKEND_NAMES,
    DEFAULT_PROFILE,
    QUICK_PROFILE,
    TINY_PROFILE,
    active_profile,
)
from repro.bench.report import (
    breakdown_rows,
    format_cell,
    format_table,
    latency_rows,
    throughput_rows,
)


class TestProfiles:
    def test_all_backends_constructible(self):
        for backend in BACKEND_NAMES:
            factory = TINY_PROFILE.backend_factory(backend)
            assert callable(factory)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            TINY_PROFILE.backend_factory("leveldb")

    def test_flowkv_overrides_apply(self):
        config = TINY_PROFILE.flowkv_config(read_batch_ratio=0.07)
        assert config.read_batch_ratio == 0.07
        assert config.write_buffer_bytes == TINY_PROFILE.flowkv_write_buffer

    def test_generator_overrides(self):
        generator = TINY_PROFILE.generator(seed=5, duration=10.0, events_per_second=7.0)
        assert generator.seed == 5
        assert generator.duration == 10.0
        assert generator.events_per_second == 7.0

    def test_with_workers(self):
        scaled = TINY_PROFILE.with_workers(4)
        assert scaled.workers == 4
        assert scaled.events_per_second == TINY_PROFILE.events_per_second

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "tiny")
        assert active_profile() is TINY_PROFILE
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "default")
        assert active_profile() is DEFAULT_PROFILE
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "bogus")
        assert active_profile() is QUICK_PROFILE

    def test_profiles_preserve_paper_ratios(self):
        """Window labels map to the paper's 500/1000/2000 s axis."""
        for profile in (TINY_PROFILE, QUICK_PROFILE, DEFAULT_PROFILE):
            assert len(profile.window_sizes) == 3
            assert profile.paper_window_labels == ("500s", "1000s", "2000s")
            ratios = [b / a for a, b in zip(profile.window_sizes, profile.window_sizes[1:])]
            assert all(r == pytest.approx(2.0) for r in ratios)


class TestHarness:
    def test_run_query_produces_record(self):
        record = run_query(TINY_PROFILE, "q11", "flowkv", TINY_PROFILE.window_sizes[0])
        assert record.ok
        assert record.throughput > 0
        assert record.input_records > 0
        assert record.results > 0
        assert record.metrics is not None
        assert record.n_instances == TINY_PROFILE.parallelism

    def test_run_query_oom_failure_captured(self):
        record = run_query(TINY_PROFILE, "q7", "memory", TINY_PROFILE.window_sizes[-1])
        assert record.failure == "oom"
        assert not record.ok

    def test_run_query_timeout_captured(self):
        record = run_query(
            TINY_PROFILE, "q11", "rocksdb", TINY_PROFILE.window_sizes[0],
            sim_timeout=1e-9,
        )
        assert record.failure == "timeout"

    def test_run_matrix_shape(self):
        records = run_matrix(
            TINY_PROFILE, ["q11"], ["flowkv", "rocksdb"],
            window_sizes=[TINY_PROFILE.window_sizes[0]],
        )
        assert len(records) == 2
        assert {r.backend for r in records} == {"flowkv", "rocksdb"}

    def test_run_latency_collects_p95(self):
        records = run_latency(TINY_PROFILE, "q11", ["flowkv"], rates=[10.0])
        (record,) = records
        assert record.arrival_rate == 10.0
        if record.ok:
            assert record.p95_latency is not None

    def test_stat_sum(self):
        record = RunRecord(
            "q", "b", 1.0,
            operator_stats={"a": {"x": 2}, "b": {"x": 3}, "c": {}},
        )
        assert record.stat_sum("x") == 5
        assert record.stat_sum("absent") == 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["col", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_format_cell_failures(self):
        record = RunRecord("q", "b", 1.0, failure="oom")
        assert "OOM" in format_cell(record)
        record = RunRecord("q", "b", 1.0, failure="timeout")
        assert "DNF" in format_cell(record)

    def test_format_cell_normalized(self):
        record = RunRecord("q", "b", 1.0, throughput=500.0)
        assert format_cell(record, normalize_to=250.0) == "2.00x"

    def test_throughput_rows_include_gain(self):
        flow = RunRecord("q11", "flowkv", 1.0, throughput=100.0, job_seconds=1.0)
        rock = RunRecord("q11", "rocksdb", 1.0, throughput=50.0, job_seconds=2.0)
        rows = throughput_rows([flow, rock], ["q11"], ["flowkv", "rocksdb"], [1.0])
        assert rows[0][-1] == "2.00x"

    def test_breakdown_rows_handle_failures(self):
        rows = breakdown_rows([RunRecord("q", "b", 1.0, failure="timeout")])
        assert "DNF" in rows[0][2]

    def test_latency_rows(self):
        record = RunRecord("q", "b", 1.0, arrival_rate=10.0, p95_latency=0.5)
        rows = latency_rows([record])
        assert rows[0][-1] == "500.0 ms"


class TestBenchSmoke:
    """The CI wall-clock regression gate (repro.bench.smoke)."""

    def test_clean_pass(self):
        from repro.bench.smoke import compare

        failures, report = compare(
            {"fig4": 1.0, "fig8": 2.0}, {"fig4": 1.0, "fig8": 2.0}
        )
        assert failures == []
        assert len(report) == 2

    def test_single_figure_regression_fails(self):
        from repro.bench.smoke import compare

        failures, _ = compare(
            {"fig4": 1.0, "fig8": 2.0, "fig9": 5.0},
            {"fig4": 1.0, "fig8": 2.0, "fig9": 3.0},
            threshold=0.25,
        )
        assert len(failures) == 1
        assert failures[0].startswith("fig9:")

    def test_uniformly_slower_machine_passes_normalized(self):
        from repro.bench.smoke import compare

        # Everything 2x slower: a different machine, not a regression.
        failures, _ = compare(
            {"fig4": 2.0, "fig8": 4.0, "fig9": 6.0},
            {"fig4": 1.0, "fig8": 2.0, "fig9": 3.0},
        )
        assert failures == []

    def test_uniformly_slower_machine_fails_absolute(self):
        from repro.bench.smoke import compare

        failures, _ = compare(
            {"fig4": 2.0, "fig8": 4.0}, {"fig4": 1.0, "fig8": 2.0},
            absolute=True,
        )
        assert len(failures) == 2

    def test_new_and_missing_figures_reported_not_failed(self):
        from repro.bench.smoke import compare

        failures, report = compare({"new_fig": 1.0}, {"old_fig": 1.0})
        assert failures == []
        assert any("new figure" in line for line in report)
        assert any("missing" in line for line in report)

    def test_elapsed_extraction_skips_untimed_figures(self):
        from repro.bench.smoke import elapsed_by_figure

        summary = {"figures": {
            "fig4": {"elapsed_seconds": 1.5, "rows": []},
            "untimed": {"rows": []},
        }}
        assert elapsed_by_figure(summary) == {"fig4": 1.5}
