"""Unit tests for the simulation environment (clock, costs, ledger, env)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simenv import (
    CAT_COMPACTION,
    CAT_QUERY,
    CAT_STORE_READ,
    CAT_STORE_WRITE,
    CPU_CATEGORIES,
    CpuCostModel,
    MetricsLedger,
    SimClock,
    SimEnv,
    SsdCostModel,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == 4.0

    def test_advance_returns_new_time(self):
        clock = SimClock(1.0)
        assert clock.advance(2.0) == 3.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_reset(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.reset()
        assert clock.now == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    def test_advance_is_sum(self, deltas):
        clock = SimClock()
        for delta in deltas:
            clock.advance(delta)
        assert clock.now == pytest.approx(sum(deltas))


class TestCpuCostModel:
    def test_sorted_search_grows_logarithmically(self):
        model = CpuCostModel()
        assert model.sorted_search(1) == model.key_compare
        assert model.sorted_search(1024) == pytest.approx(11 * model.key_compare)
        assert model.sorted_search(2048) > model.sorted_search(1024)

    def test_serde_linear_in_bytes(self):
        model = CpuCostModel()
        small = model.serde(100)
        large = model.serde(1000)
        assert large > small
        assert large - small == pytest.approx(900 * model.serde_per_byte)

    def test_serde_per_record_overhead(self):
        model = CpuCostModel()
        assert model.serde(0, n_records=3) == pytest.approx(3 * model.serde_per_record)

    def test_all_costs_positive(self):
        model = CpuCostModel()
        for field in (
            "hash_probe", "key_compare", "branch_step", "bloom_check",
            "copy_per_byte", "serde_per_byte", "merge_per_entry", "sync_op",
            "function_call", "syscall", "allocation",
        ):
            assert getattr(model, field) > 0


class TestSsdCostModel:
    def test_read_time_has_latency_floor(self):
        ssd = SsdCostModel()
        assert ssd.read_time(0) == pytest.approx(ssd.request_latency)

    def test_read_time_scales_with_bytes(self):
        ssd = SsdCostModel()
        one_mb = ssd.read_time(1 << 20)
        two_mb = ssd.read_time(2 << 20)
        assert two_mb - one_mb == pytest.approx((1 << 20) / ssd.read_bandwidth)

    def test_write_slower_than_read(self):
        ssd = SsdCostModel()
        assert ssd.write_time(1 << 20) > ssd.read_time(1 << 20)

    def test_multiple_requests_multiply_latency(self):
        ssd = SsdCostModel()
        assert ssd.read_time(4096, n_requests=10) == pytest.approx(
            10 * ssd.request_latency + 4096 / ssd.read_bandwidth
        )

    def test_negative_rejected(self):
        ssd = SsdCostModel()
        with pytest.raises(ValueError):
            ssd.read_time(-1)
        with pytest.raises(ValueError):
            ssd.write_time(10, n_requests=-1)


class TestMetricsLedger:
    def test_cpu_accumulates_per_category(self):
        ledger = MetricsLedger()
        ledger.add_cpu(CAT_QUERY, 1.0)
        ledger.add_cpu(CAT_QUERY, 0.5)
        ledger.add_cpu(CAT_STORE_WRITE, 2.0)
        assert ledger.cpu_seconds[CAT_QUERY] == pytest.approx(1.5)
        assert ledger.cpu_seconds[CAT_STORE_WRITE] == pytest.approx(2.0)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            MetricsLedger().add_cpu(CAT_QUERY, -1.0)

    def test_io_accounting(self):
        ledger = MetricsLedger()
        ledger.add_read(1000, 0.1, n_requests=2)
        ledger.add_write(500, 0.05)
        assert ledger.bytes_read == 1000
        assert ledger.bytes_written == 500
        assert ledger.read_requests == 2
        assert ledger.write_requests == 1
        assert ledger.io_wait_seconds == pytest.approx(0.15)

    def test_counters(self):
        ledger = MetricsLedger()
        ledger.bump("compactions")
        ledger.bump("compactions", 2)
        assert ledger.counters["compactions"] == 3

    def test_snapshot_is_independent_copy(self):
        ledger = MetricsLedger()
        ledger.add_cpu(CAT_QUERY, 1.0)
        snapshot = ledger.snapshot()
        ledger.add_cpu(CAT_QUERY, 1.0)
        assert snapshot.cpu_seconds[CAT_QUERY] == pytest.approx(1.0)

    def test_snapshot_totals(self):
        ledger = MetricsLedger()
        ledger.add_cpu(CAT_STORE_READ, 1.0)
        ledger.add_cpu(CAT_COMPACTION, 2.0)
        ledger.add_read(10, 0.5)
        snapshot = ledger.snapshot()
        assert snapshot.store_cpu_seconds == pytest.approx(3.0)
        assert snapshot.total_cpu_seconds == pytest.approx(3.0)
        assert snapshot.total_seconds == pytest.approx(3.5)

    def test_merge(self):
        a = MetricsLedger()
        b = MetricsLedger()
        a.add_cpu(CAT_QUERY, 1.0)
        b.add_cpu(CAT_QUERY, 2.0)
        b.add_read(100, 0.1)
        b.bump("x")
        a.merge(b)
        assert a.cpu_seconds[CAT_QUERY] == pytest.approx(3.0)
        assert a.bytes_read == 100
        assert a.counters["x"] == 1

    def test_reset(self):
        ledger = MetricsLedger()
        ledger.add_cpu(CAT_QUERY, 1.0)
        ledger.add_write(10, 0.1)
        ledger.reset()
        assert ledger.cpu_seconds[CAT_QUERY] == 0.0
        assert ledger.bytes_written == 0
        assert all(ledger.cpu_seconds[c] == 0.0 for c in CPU_CATEGORIES)


class TestSimEnv:
    def test_charge_cpu_advances_clock_and_books(self):
        env = SimEnv()
        env.charge_cpu(CAT_QUERY, 0.25)
        assert env.now == pytest.approx(0.25)
        assert env.ledger.cpu_seconds[CAT_QUERY] == pytest.approx(0.25)

    def test_zero_charge_is_free(self):
        env = SimEnv()
        env.charge_cpu(CAT_QUERY, 0.0)
        assert env.now == 0.0

    def test_charge_read_uses_ssd_model(self):
        env = SimEnv()
        env.charge_read(1 << 20)
        expected = env.ssd.read_time(1 << 20)
        assert env.now == pytest.approx(expected)
        assert env.ledger.bytes_read == 1 << 20

    def test_charge_write_uses_ssd_model(self):
        env = SimEnv()
        env.charge_write(1 << 20, n_requests=2)
        assert env.now == pytest.approx(env.ssd.write_time(1 << 20, 2))

    def test_fork_shares_models_but_not_state(self):
        env = SimEnv()
        env.charge_cpu(CAT_QUERY, 1.0)
        child = env.fork()
        assert child.now == 0.0
        assert child.cpu is env.cpu
        assert child.ssd is env.ssd
        child.charge_cpu(CAT_QUERY, 0.5)
        assert env.ledger.cpu_seconds[CAT_QUERY] == pytest.approx(1.0)

    def test_bump_counter(self):
        env = SimEnv()
        env.bump("things", 4)
        assert env.ledger.counters["things"] == 4
