"""Unit tests for user functions and the generic-KV state glue."""

from __future__ import annotations

import pytest

from repro.engine.functions import (
    CollectProcessFunction,
    CountAggregate,
    MaxAggregate,
    MaxProcessFunction,
    MedianProcessFunction,
    SumAggregate,
)
from repro.engine.state import GenericKVBackend, OperatorInfo
from repro.core.patterns import StorePattern, WindowKind
from repro.kvstores.hashkv import FasterConfig, FasterStore
from repro.kvstores.lsm import LsmConfig, LsmStore
from repro.model import Window
from repro.simenv import SimEnv
from repro.storage import SimFileSystem

W1 = Window(0.0, 10.0)
W2 = Window(10.0, 20.0)


class TestAggregateFunctions:
    def test_count(self):
        fn = CountAggregate()
        acc = fn.create_accumulator()
        for _ in range(5):
            acc = fn.add(object(), acc)
        assert fn.get_result(acc) == 5
        assert fn.merge(3, 4) == 7

    def test_sum(self):
        fn = SumAggregate(extract=lambda v: v[1])
        acc = fn.create_accumulator()
        for i in range(4):
            acc = fn.add(("x", i), acc)
        assert fn.get_result(acc) == 6
        assert fn.merge(2, 5) == 7

    def test_max_argmax(self):
        fn = MaxAggregate(extract=lambda v: v["price"])
        acc = fn.create_accumulator()
        acc = fn.add({"price": 5, "id": "a"}, acc)
        acc = fn.add({"price": 9, "id": "b"}, acc)
        acc = fn.add({"price": 2, "id": "c"}, acc)
        metric, value = fn.get_result(acc)
        assert metric == 9
        assert value["id"] == "b"

    def test_max_merge(self):
        fn = MaxAggregate()
        assert fn.merge(None, (3, "x")) == (3, "x")
        assert fn.merge((5, "y"), (3, "x")) == (5, "y")
        assert fn.merge(None, None) is None


class TestProcessFunctions:
    def test_median_odd(self):
        fn = MedianProcessFunction()
        assert list(fn.process(b"k", W1, [5, 1, 3])) == [3]

    def test_median_even(self):
        fn = MedianProcessFunction()
        assert list(fn.process(b"k", W1, [4, 1, 3, 2])) == [2.5]

    def test_median_empty(self):
        assert list(MedianProcessFunction().process(b"k", W1, [])) == []

    def test_max_process(self):
        fn = MaxProcessFunction(extract=lambda v: v[0])
        assert list(fn.process(b"k", W1, [(3, "a"), (9, "b"), (5, "c")])) == [(9, (9, "b"))]

    def test_collect(self):
        fn = CollectProcessFunction()
        ((key, window, values),) = list(fn.process(b"k", W1, [1, 2]))
        assert key == b"k" and window == W1 and values == [1, 2]


class TestOperatorInfo:
    def test_pattern_derivation(self):
        assert OperatorInfo("x", True, WindowKind.SESSION).pattern is StorePattern.RMW
        assert OperatorInfo("x", False, WindowKind.FIXED).pattern is StorePattern.AAR
        assert OperatorInfo("x", False, WindowKind.SESSION).pattern is StorePattern.AUR


@pytest.fixture(params=["lsm", "faster"])
def generic_backend(request):
    env = SimEnv()
    fs = SimFileSystem(env)
    if request.param == "lsm":
        store = LsmStore(env, fs, "s", LsmConfig(write_buffer_bytes=1024))
    else:
        store = FasterStore(env, fs, "s", FasterConfig(memory_log_bytes=2048))
    return GenericKVBackend(env, store)


class TestGenericKVBackend:
    def test_append_and_read_key_window(self, generic_backend):
        for i in range(20):
            generic_backend.append(b"k", W1, ("v", i), 0.5)
        values = generic_backend.read_key_window(b"k", W1)
        assert values == [("v", i) for i in range(20)]
        assert generic_backend.read_key_window(b"k", W1) == []

    def test_read_window_scans_all_keys(self, generic_backend):
        for i in range(30):
            generic_backend.append(f"key{i:02d}".encode(), W1, i, 0.0)
        generic_backend.append(b"other", W2, 99, 10.0)
        grouped = dict(generic_backend.read_window(W1))
        assert len(grouped) == 30
        assert grouped[b"key07"] == [7]
        # W1 consumed, W2 untouched.
        assert dict(generic_backend.read_window(W1)) == {}
        assert dict(generic_backend.read_window(W2)) == {b"other": [99]}

    def test_rmw_cycle(self, generic_backend):
        assert generic_backend.rmw_get(b"k", W1) is None
        generic_backend.rmw_put(b"k", W1, 10)
        assert generic_backend.rmw_get(b"k", W1) == 10
        generic_backend.rmw_put(b"k", W1, 11)
        assert generic_backend.rmw_remove(b"k", W1) == 11
        assert generic_backend.rmw_get(b"k", W1) is None

    def test_window_key_isolation(self, generic_backend):
        generic_backend.rmw_put(b"k", W1, 1)
        generic_backend.rmw_put(b"k", W2, 2)
        assert generic_backend.rmw_get(b"k", W1) == 1
        assert generic_backend.rmw_get(b"k", W2) == 2

    def test_memory_bytes_delegates(self, generic_backend):
        generic_backend.rmw_put(b"k", W1, 1)
        assert generic_backend.memory_bytes >= 0

    def test_flush_and_reread(self, generic_backend):
        for i in range(10):
            generic_backend.append(b"k", W1, i, 0.0)
        generic_backend.flush()
        assert generic_backend.read_key_window(b"k", W1) == list(range(10))
