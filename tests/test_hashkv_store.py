"""Unit, integration and property tests for the Faster-style hash store."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreClosedError
from repro.kvstores.hashkv import FasterConfig, FasterStore
from repro.kvstores.lsm.format import unpack_list_value
from repro.simenv import CAT_SYNC, SimEnv
from repro.storage import SimFileSystem

SMALL = FasterConfig(memory_log_bytes=4096, spill_chunk_bytes=1024)


@pytest.fixture()
def store(env, fs):
    return FasterStore(env, fs, "f", SMALL)


class TestBasicOperations:
    def test_put_get(self, store):
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_get_missing(self, store):
        assert store.get(b"missing") is None

    def test_overwrite(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete(self, store):
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None

    def test_append_builds_list(self, store):
        for i in range(10):
            store.append(b"k", f"e{i}".encode())
        assert unpack_list_value(store.get(b"k")) == [f"e{i}".encode() for i in range(10)]

    def test_closed_store_rejects(self, store):
        store.close()
        with pytest.raises(StoreClosedError):
            store.put(b"k", b"v")


class TestHybridLog:
    def test_spill_preserves_reads(self, env, fs):
        store = FasterStore(env, fs, "f", SMALL)
        for i in range(300):
            store.put(f"k{i:04d}".encode(), f"value-{i:06d}".encode())
        assert store.disk_bytes > 0  # spilled
        for i in range(300):
            assert store.get(f"k{i:04d}".encode()) == f"value-{i:06d}".encode()

    def test_spilled_read_charges_device(self, env, fs):
        store = FasterStore(env, fs, "f", SMALL)
        for i in range(300):
            store.put(f"k{i:04d}".encode(), b"v" * 20)
        reads_before = env.ledger.read_requests
        store.get(b"k0000")  # oldest record: on disk
        assert env.ledger.read_requests > reads_before

    def test_in_place_update_does_not_grow_log(self, env, fs):
        store = FasterStore(env, fs, "f", FasterConfig(memory_log_bytes=1 << 20))
        store.put(b"k", b"12345678")
        tail_before = store._tail
        for _ in range(100):
            store.put(b"k", b"87654321")  # same length: in-place
        assert store._tail == tail_before

    def test_different_length_update_appends(self, env, fs):
        store = FasterStore(env, fs, "f", FasterConfig(memory_log_bytes=1 << 20))
        store.put(b"k", b"12345678")
        tail_before = store._tail
        store.put(b"k", b"123")
        assert store._tail > tail_before
        assert store.get(b"k") == b"123"


class TestSyncOverhead:
    def test_every_operation_pays_sync(self, env, fs):
        store = FasterStore(env, fs, "f", SMALL)
        store.put(b"k", b"v")
        store.get(b"k")
        store.append(b"k2", b"v")
        store.delete(b"k")
        expected = 4 * env.cpu.sync_op
        assert env.ledger.cpu_seconds[CAT_SYNC] == pytest.approx(expected)


class TestAppendAmplification:
    def test_append_cost_grows_with_list_size(self, env, fs):
        """Faster's RCU appends re-copy the whole list: per-append cost
        grows linearly, total cost quadratically (the paper's DNF cause)."""
        store = FasterStore(env, fs, "f", FasterConfig(memory_log_bytes=1 << 20))
        costs = []
        for i in range(200):
            before = env.now
            store.append(b"k", b"x" * 50)
            costs.append(env.now - before)
        early = sum(costs[:20])
        late = sum(costs[-20:])
        assert late > early * 3


class TestCompaction:
    def test_compaction_reclaims_space(self, env, fs):
        store = FasterStore(env, fs, "f", SMALL)
        # Varying value lengths force RCU appends (no in-place updates),
        # growing the log with dead versions until compaction fires.
        for i in range(2000):
            store.put(f"k{i % 20:03d}".encode(), b"v" * (10 + i % 7))
        assert store.compaction_count > 0
        for j in range(20):
            i = 1980 + j
            expected = b"v" * (10 + i % 7)
            assert store.get(f"k{j:03d}".encode()) == expected

    def test_log_bounded_by_msa(self, env, fs):
        config = FasterConfig(
            memory_log_bytes=4096, spill_chunk_bytes=1024, max_space_amplification=2.0
        )
        store = FasterStore(env, fs, "f", config)
        for i in range(5000):
            store.put(f"k{i % 10}".encode(), b"v" * 30)
        # Total log (disk + memory) stays within a small multiple of live.
        assert store._tail <= max(config.memory_log_bytes,
                                  config.max_space_amplification * store._live_bytes) * 1.5


class TestScanPrefix:
    def test_scan_filters_and_sorts(self, store):
        for i in range(50):
            store.put(f"a{i:02d}".encode(), b"v")
            store.put(f"b{i:02d}".encode(), b"v")
        results = list(store.scan_prefix(b"a"))
        assert [k for k, _v in results] == [f"a{i:02d}".encode() for i in range(50)]

    def test_scan_cost_proportional_to_all_keys(self, env, fs):
        """Unsorted store: a prefix scan probes the entire index."""
        store = FasterStore(env, fs, "f", FasterConfig(memory_log_bytes=1 << 20))
        for i in range(1000):
            store.put(f"other{i:04d}".encode(), b"v")
        store.put(b"target", b"v")
        before = env.now
        list(store.scan_prefix(b"target"))
        cost_with_many = env.now - before
        assert cost_with_many > 1000 * env.cpu.key_compare


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "delete"]),
            st.integers(min_value=0, max_value=25),
            st.binary(min_size=1, max_size=30),
        ),
        min_size=1,
        max_size=300,
    )
)
def test_faster_matches_reference_model(ops):
    env = SimEnv()
    fs = SimFileSystem(env)
    store = FasterStore(env, fs, "f", SMALL)
    keys = [f"key{i:02d}".encode() for i in range(26)]
    reference: dict[bytes, bytes] = {}
    for op, k, v in ops:
        key = keys[k]
        if op == "put":
            store.put(key, v)
            reference[key] = v
        elif op == "get":
            assert store.get(key) == reference.get(key)
        else:
            store.delete(key)
            reference.pop(key, None)
    for key in keys:
        assert store.get(key) == reference.get(key)


def test_faster_soak_with_appends():
    rng = random.Random(7)
    env = SimEnv()
    fs = SimFileSystem(env)
    store = FasterStore(env, fs, "f", SMALL)
    reference: dict[bytes, list[bytes]] = {}
    for i in range(1500):
        key = f"k{rng.randrange(40):02d}".encode()
        roll = rng.random()
        if roll < 0.5:
            value = f"v{i}".encode()
            store.put(key, value)
            reference[key] = [value]
        elif roll < 0.8:
            value = f"a{i}".encode()
            store.append(key, value)
            reference.setdefault(key, []).append(value)
        else:
            store.delete(key)
            reference.pop(key, None)
    for key, elements in reference.items():
        value = store.get(key)
        if len(elements) == 1:
            assert value == elements[0] or unpack_list_value(value) == elements
        else:
            # put base then appends: base is raw, appends framed
            if value is not None and not value.startswith(elements[0]):
                assert unpack_list_value(value) == elements
