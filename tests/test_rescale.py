"""Unit tests for the rescale subsystem: key-groups, policies, routing."""

from __future__ import annotations

import pytest

from repro.backends import memory_backend
from repro.core.composite import FlowKVComposite
from repro.core.config import FlowKVConfig
from repro.core.patterns import StorePattern
from repro.engine import StreamEnvironment
from repro.errors import PlanError
from repro.kvstores.api import composite_key, split_composite_key
from repro.model import Window
from repro.rescale import (
    DEFAULT_MAX_KEY_GROUPS,
    LoadObservation,
    RescaleController,
    ScheduledRescale,
    groups_owned,
    key_group_of,
    key_group_range,
    moved_key_groups,
    owner_of,
    validate_parallelism,
)


class TestKeyGroups:
    def test_hash_is_deterministic_and_in_range(self):
        for key in (b"", b"a", b"user42", b"\x00\xff" * 7):
            group = key_group_of(key, DEFAULT_MAX_KEY_GROUPS)
            assert 0 <= group < DEFAULT_MAX_KEY_GROUPS
            assert group == key_group_of(key, DEFAULT_MAX_KEY_GROUPS)

    @pytest.mark.parametrize("parallelism", [1, 2, 3, 4, 7, 128])
    def test_ranges_partition_the_group_space(self, parallelism):
        seen = []
        for index in range(parallelism):
            owned = key_group_range(index, 128, parallelism)
            assert len(owned) >= 1  # every instance owns at least one group
            seen.extend(owned)
            for group in owned:
                assert owner_of(group, 128, parallelism) == index
        assert seen == list(range(128))

    def test_groups_owned_matches_range(self):
        owned = groups_owned(range(4), 128, 4)
        for index in range(4):
            assert owned[index] == list(key_group_range(index, 128, 4))

    def test_validate_parallelism(self):
        validate_parallelism(1, 128)
        validate_parallelism(128, 128)
        with pytest.raises(PlanError):
            validate_parallelism(0, 128)
        with pytest.raises(PlanError):
            validate_parallelism(129, 128)

    def test_range_index_out_of_bounds(self):
        with pytest.raises(PlanError):
            key_group_range(4, 128, 4)
        with pytest.raises(PlanError):
            key_group_range(-1, 128, 4)

    def test_identity_move_plan_is_empty(self):
        for parallelism in (1, 2, 4, 8):
            assert moved_key_groups(128, parallelism, parallelism) == {}

    @pytest.mark.parametrize("old,new", [(2, 4), (4, 2), (3, 5), (1, 8)])
    def test_move_plan_is_exactly_the_ownership_diff(self, old, new):
        plan = moved_key_groups(128, old, new)
        moved = set()
        for src, dsts in plan.items():
            for dst, groups in dsts.items():
                for group in groups:
                    assert owner_of(group, 128, old) == src
                    assert owner_of(group, 128, new) == dst
                    assert src != dst
                    moved.add(group)
        expected = {
            group
            for group in range(128)
            if owner_of(group, 128, old) != owner_of(group, 128, new)
        }
        assert moved == expected

    def test_moves_are_contiguous_slices(self):
        # Contiguous ranges (Flink-style) mean every (src, dst) transfer
        # is one sequential slice of the key-group space, not a scatter.
        plan = moved_key_groups(128, 2, 4)
        for dsts in plan.values():
            for groups in dsts.values():
                assert groups == list(range(groups[0], groups[-1] + 1))
        moved = sum(len(g) for dsts in plan.values() for g in dsts.values())
        assert moved == 96  # instance 0 keeps its front quarter; rest moves


class TestCompositeKey:
    def test_round_trip(self):
        window = Window(10.0, 20.0)
        for key in (b"", b"k", b"user\x00binary\xff"):
            window_back, key_back = split_composite_key(composite_key(window, key))
            assert window_back == window
            assert key_back == key

    def test_window_prefix_orders_first(self):
        early = composite_key(Window(0.0, 10.0), b"zzz")
        late = composite_key(Window(10.0, 20.0), b"aaa")
        assert early < late  # sorted stores cluster by window


class TestScheduledRescale:
    def test_fires_once_at_threshold(self):
        policy = ScheduledRescale({10: 4})
        assert policy.decide(LoadObservation(5, 2, None)) is None
        assert policy.decide(LoadObservation(10, 2, None)) == 4
        assert policy.decide(LoadObservation(20, 4, None)) is None

    def test_collapses_missed_thresholds(self):
        policy = ScheduledRescale({10: 4, 20: 8})
        # One observation jumps past both: only the later target applies.
        assert policy.decide(LoadObservation(25, 2, None)) == 8
        assert policy.decide(LoadObservation(30, 8, None)) is None

    def test_identity_target_is_suppressed(self):
        policy = ScheduledRescale({10: 2})
        assert policy.decide(LoadObservation(10, 2, None)) is None


class TestRescaleController:
    def observe(self, controller, utilization, parallelism=2):
        return controller.decide(
            LoadObservation(0, parallelism, utilization)
        )

    def test_patience_before_scale_up(self):
        controller = RescaleController(patience=3, cooldown=0)
        assert self.observe(controller, 0.9) is None
        assert self.observe(controller, 0.9) is None
        assert self.observe(controller, 0.9) == 4  # doubles

    def test_streak_resets_on_normal_load(self):
        controller = RescaleController(patience=2, cooldown=0)
        assert self.observe(controller, 0.9) is None
        assert self.observe(controller, 0.5) is None  # breaks the streak
        assert self.observe(controller, 0.9) is None

    def test_scale_down_halves(self):
        controller = RescaleController(patience=2, cooldown=0)
        assert self.observe(controller, 0.1, parallelism=8) is None
        assert self.observe(controller, 0.1, parallelism=8) == 4

    def test_cooldown_suppresses_decisions(self):
        controller = RescaleController(patience=1, cooldown=2)
        assert self.observe(controller, 0.9) == 4
        assert self.observe(controller, 0.9, parallelism=4) is None
        assert self.observe(controller, 0.9, parallelism=4) is None
        assert self.observe(controller, 0.9, parallelism=4) == 8

    def test_clamped_at_bounds(self):
        controller = RescaleController(
            min_parallelism=2, max_parallelism=4, patience=1, cooldown=0
        )
        assert self.observe(controller, 0.9, parallelism=4) is None  # at max
        assert self.observe(controller, 0.1, parallelism=2) is None  # at min

    def test_abstains_without_utilization(self):
        controller = RescaleController(patience=1, cooldown=0)
        assert self.observe(controller, None) is None

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            RescaleController(high_watermark=0.3, low_watermark=0.8)
        with pytest.raises(ValueError):
            RescaleController(min_parallelism=0)


class TestBacklogSignal:
    """The backlog watermarks make the autoscaler work in throughput
    mode, where observations carry ``utilization=None``."""

    def observe(self, controller, backlog, utilization=None, parallelism=2):
        return controller.decide(
            LoadObservation(0, parallelism, utilization,
                            backlog_seconds=backlog)
        )

    def controller(self, **kwargs):
        kwargs.setdefault("backlog_high_seconds", 2.0)
        kwargs.setdefault("backlog_low_seconds", 0.5)
        kwargs.setdefault("cooldown", 0)
        return RescaleController(**kwargs)

    def test_patience_applies_to_backlog_too(self):
        controller = self.controller(patience=3)
        assert self.observe(controller, 5.0) is None
        assert self.observe(controller, 5.0) is None
        assert self.observe(controller, 5.0) == 4  # doubles

    def test_mid_band_backlog_resets_the_streak(self):
        controller = self.controller(patience=2)
        assert self.observe(controller, 5.0) is None
        assert self.observe(controller, 1.0) is None  # between thresholds
        assert self.observe(controller, 5.0) is None  # streak restarted
        assert self.observe(controller, 5.0) == 4

    def test_sustained_calm_scales_down(self):
        controller = self.controller(patience=2)
        assert self.observe(controller, 0.0, parallelism=8) is None
        assert self.observe(controller, 0.0, parallelism=8) == 4  # halves

    def test_cooldown_applies_to_backlog_decisions(self):
        controller = self.controller(patience=1, cooldown=2)
        assert self.observe(controller, 5.0) == 4
        assert self.observe(controller, 5.0, parallelism=4) is None
        assert self.observe(controller, 5.0, parallelism=4) is None
        assert self.observe(controller, 5.0, parallelism=4) == 8

    def test_utilization_vetoes_low_backlog_scale_down(self):
        # With a utilization reading available, zero backlog alone must
        # not drive a scale-down: busy workers with an empty queue are
        # exactly the steady state.
        controller = self.controller(patience=1)
        assert self.observe(controller, 0.0, utilization=0.6,
                            parallelism=8) is None

    def test_high_backlog_counts_even_with_mid_utilization(self):
        # Backlog growth means the job is falling behind even when the
        # utilization sample sits between the watermarks.
        controller = self.controller(patience=1)
        assert self.observe(controller, 5.0, utilization=0.6) == 4

    def test_without_thresholds_throughput_mode_abstains(self):
        controller = RescaleController(patience=1, cooldown=0)
        assert self.observe(controller, 50.0) is None  # backlog ignored

    def test_invalid_backlog_thresholds(self):
        with pytest.raises(ValueError):
            RescaleController(backlog_high_seconds=0.5,
                              backlog_low_seconds=2.0)


class TestCompositeRouting:
    def make(self, env, fs, m=3, name="flowkv"):
        return FlowKVComposite(
            env, fs, StorePattern.AUR, FlowKVConfig(num_instances=m), name=name
        )

    def test_store_slot_depends_only_on_key_group(self, env, fs):
        # The store index is kg % m — decorrelated from the engine's
        # contiguous ranges and stable across any engine rescale.
        store = self.make(env, fs)
        config = FlowKVConfig(num_instances=3)
        for i in range(50):
            key = f"user{i}".encode()
            routed = store._route(key)
            expected = key_group_of(key, config.max_key_groups) % 3
            assert store._instances.index(routed) == expected

    def test_migrated_keys_land_in_the_same_slot(self, env, fs):
        # Export moved key-groups from one composite, import into a fresh
        # one: every entry must land in the slot with its kg residue, and
        # reads must return the migrated values.
        window = Window(0.0, 10.0)
        source = self.make(env, fs, name="src")
        keys = [f"user{i}".encode() for i in range(20)]
        for key in keys:
            source.append(key, window, f"v-{key.decode()}", 5.0)
        source.flush()
        config = FlowKVConfig(num_instances=3)
        groups = {key_group_of(k, config.max_key_groups) for k in keys}

        def kg(key: bytes) -> int:
            return key_group_of(key, config.max_key_groups)

        export = source.export_state(groups, kg)
        assert len(export) == len(keys)
        destination = self.make(env, fs, name="dst")
        destination.import_state(export)
        for key in keys:
            assert destination.read_key_window(key, window) == [f"v-{key.decode()}"]
            routed = destination._route(key)
            assert destination._instances.index(routed) == kg(key) % 3
        # Source no longer holds the moved keys.
        for key in keys:
            assert source.read_key_window(key, window) == []


class TestIntervalJoinRescale:
    # Join state is first-class in the key-group machinery: a plan with
    # an interval join rescales mid-stream (no guard, no PlanError) and
    # produces exactly the outputs of the unrescaled run.
    def build(self, parallelism=2):
        env = StreamEnvironment(parallelism=parallelism,
                                backend_factory=memory_backend())
        left = env.from_source(
            [((f"u{i % 3}", i), float(i)) for i in range(40)]
        ).key_by(lambda v: v[0].encode())
        right = env.from_source(
            [((f"u{i % 3}", -i), float(i) + 0.5) for i in range(40)]
        ).key_by(lambda v: v[0].encode())
        left.interval_join(right, -1.0, 1.0, lambda a, b: (a, b)).sink("out")
        return env

    def test_rescale_with_interval_join_supported(self):
        baseline = self.build().execute(watermark_interval=5.0)
        rescaled = self.build().execute(
            watermark_interval=5.0,
            rescale_policy=ScheduledRescale({10: 4}),
        )
        assert len(rescaled.rescales) == 1
        event = rescaled.rescales[0]
        assert not event.aborted
        assert event.moved_groups > 0
        assert sorted(map(repr, rescaled.sink_outputs["out"])) == sorted(
            map(repr, baseline.sink_outputs["out"])
        )
