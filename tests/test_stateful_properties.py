"""Hypothesis stateful (model-based) tests for the persistent stores.

Each machine drives a store through random operation sequences while
maintaining a reference model, checking observable state after every
step — across flushes, spills, compactions, prefetches and snapshots.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.aur import AurStore
from repro.core.ett import SessionGapPredictor
from repro.core.rmw import RmwStore
from repro.kvstores.hashkv import FasterConfig, FasterStore
from repro.kvstores.lsm import LsmConfig, LsmStore
from repro.kvstores.lsm.format import unpack_list_value
from repro.model import Window
from repro.simenv import SimEnv
from repro.storage import SimFileSystem

KEYS = [f"key{i:02d}".encode() for i in range(12)]
VALUES = st.binary(min_size=1, max_size=24)


class LsmMachine(RuleBasedStateMachine):
    """LSM store vs dict model under put/append/delete/flush/snapshot."""

    @initialize()
    def setup(self):
        self.env = SimEnv()
        self.fs = SimFileSystem(self.env)
        self.store = LsmStore(
            self.env, self.fs, "lsm",
            LsmConfig(write_buffer_bytes=768, block_bytes=128,
                      block_cache_bytes=1024, l0_compaction_trigger=2,
                      level1_bytes=2048, max_file_bytes=1024),
        )
        self.model: dict[bytes, tuple[bytes | None, list[bytes]]] = {}

    @rule(key=st.sampled_from(KEYS), value=VALUES)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = (value, [])

    @rule(key=st.sampled_from(KEYS), value=VALUES)
    def append(self, key, value):
        self.store.append(key, value)
        base, operands = self.model.get(key, (None, []))
        self.model[key] = (base, operands + [value])

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.store.flush()

    @rule(key=st.sampled_from(KEYS))
    def check_get(self, key):
        self._check_key(key)

    @rule()
    def snapshot_restore(self):
        snapshot = self.store.snapshot()
        env2 = SimEnv()
        fs2 = SimFileSystem(env2)
        restored = LsmStore(
            env2, fs2, "lsm",
            LsmConfig(write_buffer_bytes=768, block_bytes=128,
                      block_cache_bytes=1024, l0_compaction_trigger=2,
                      level1_bytes=2048, max_file_bytes=1024),
        )
        restored.restore(snapshot)
        self.env, self.fs, self.store = env2, fs2, restored

    def _check_key(self, key):
        value = self.store.get(key)
        if key not in self.model:
            assert value is None
            return
        base, operands = self.model[key]
        assert value is not None
        if base is None:
            assert unpack_list_value(value) == operands
        else:
            assert value.startswith(base)
            assert unpack_list_value(value[len(base):]) == operands

    @invariant()
    def scan_matches_model(self):
        live = {k for k, _v in self.store.scan_prefix(b"key")}
        assert live == set(self.model)


class FasterMachine(RuleBasedStateMachine):
    """Hash store vs dict model under put/get/delete/snapshot."""

    @initialize()
    def setup(self):
        self.env = SimEnv()
        self.fs = SimFileSystem(self.env)
        self.config = FasterConfig(memory_log_bytes=1024, spill_chunk_bytes=256)
        self.store = FasterStore(self.env, self.fs, "f", self.config)
        self.model: dict[bytes, bytes] = {}

    @rule(key=st.sampled_from(KEYS), value=VALUES)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @rule(key=st.sampled_from(KEYS))
    def check_get(self, key):
        assert self.store.get(key) == self.model.get(key)

    @rule()
    def snapshot_restore(self):
        snapshot = self.store.snapshot()
        env2 = SimEnv()
        fs2 = SimFileSystem(env2)
        restored = FasterStore(env2, fs2, "f", self.config)
        restored.restore(snapshot)
        self.env, self.fs, self.store = env2, fs2, restored

    @invariant()
    def live_accounting_sane(self):
        assert self.store._live_bytes >= 0


class AurMachine(RuleBasedStateMachine):
    """AUR store vs model: per-(key, window) value lists in order.

    Exercises buffer flushes, predictive batch reads, evictions and
    integrated compaction under random interleavings.
    """

    windows = [Window(float(i * 30), float(i * 30) + 10.0) for i in range(6)]

    @initialize()
    def setup(self):
        self.env = SimEnv()
        self.fs = SimFileSystem(self.env)
        self.store = AurStore(
            self.env, self.fs, SessionGapPredictor(10.0), "aur",
            write_buffer_bytes=384, read_batch_ratio=0.5,
            max_space_amplification=1.2, data_segment_bytes=512,
        )
        self.model: dict[tuple[bytes, Window], list[bytes]] = {}

    @rule(key=st.sampled_from(KEYS), window=st.sampled_from(windows), value=VALUES)
    def append(self, key, window, value):
        self.store.append(key, value, window, window.start)
        self.model.setdefault((key, window), []).append(value)

    @rule(key=st.sampled_from(KEYS), window=st.sampled_from(windows))
    def get(self, key, window):
        values = self.store.get(key, window)
        assert values == self.model.pop((key, window), [])

    @rule()
    def flush(self):
        self.store.flush()

    @rule(key=st.sampled_from(KEYS), window=st.sampled_from(windows))
    def drop(self, key, window):
        self.store.drop_window(key, window)
        self.model.pop((key, window), None)

    @rule()
    def snapshot_restore(self):
        snapshot = self.store.snapshot()
        env2 = SimEnv()
        fs2 = SimFileSystem(env2)
        restored = AurStore(
            env2, fs2, SessionGapPredictor(10.0), "aur",
            write_buffer_bytes=384, read_batch_ratio=0.5,
            max_space_amplification=1.2, data_segment_bytes=512,
        )
        restored.restore(snapshot)
        self.env, self.fs, self.store = env2, fs2, restored

    @invariant()
    def space_accounting_sane(self):
        assert self.store._live_data_bytes >= 0
        assert self.store._total_data_bytes >= 0


class RmwMachine(RuleBasedStateMachine):
    """RMW store vs dict model under put/get/remove across spills."""

    window = Window(0.0, 1000.0)

    @initialize()
    def setup(self):
        self.env = SimEnv()
        self.fs = SimFileSystem(self.env)
        self.store = RmwStore(
            self.env, self.fs, "rmw",
            write_buffer_bytes=384, max_space_amplification=1.2,
            data_segment_bytes=512,
        )
        self.model: dict[bytes, bytes] = {}

    @rule(key=st.sampled_from(KEYS), value=VALUES)
    def put(self, key, value):
        self.store.put(key, self.window, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def get(self, key):
        assert self.store.get(key, self.window) == self.model.get(key)

    @rule(key=st.sampled_from(KEYS))
    def remove(self, key):
        assert self.store.remove(key, self.window) == self.model.pop(key, None)

    @rule()
    def snapshot_restore(self):
        snapshot = self.store.snapshot()
        env2 = SimEnv()
        fs2 = SimFileSystem(env2)
        restored = RmwStore(
            env2, fs2, "rmw",
            write_buffer_bytes=384, max_space_amplification=1.2,
            data_segment_bytes=512,
        )
        restored.restore(snapshot)
        self.env, self.fs, self.store = env2, fs2, restored


_settings = settings(max_examples=20, stateful_step_count=40, deadline=None)

TestLsmMachine = LsmMachine.TestCase
TestLsmMachine.settings = _settings
TestFasterMachine = FasterMachine.TestCase
TestFasterMachine.settings = _settings
TestAurMachine = AurMachine.TestCase
TestAurMachine.settings = _settings
TestRmwMachine = RmwMachine.TestCase
TestRmwMachine.settings = _settings
