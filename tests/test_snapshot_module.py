"""Direct unit tests for the snapshot helper module."""

from __future__ import annotations


from repro.simenv import CAT_SERDE, SimEnv
from repro.snapshot import (
    StoreSnapshot,
    copy_files_in,
    copy_files_out,
    pack_meta,
    unpack_meta,
)
from repro.storage import SimFileSystem


class TestMetaCodec:
    def test_round_trip(self, env):
        state = {"a": [1, 2], "b": {b"k": (1.5, None)}}
        assert unpack_meta(env, pack_meta(env, state)) == state

    def test_charges_serde(self, env):
        before = env.ledger.cpu_seconds[CAT_SERDE]
        pack_meta(env, list(range(1000)))
        assert env.ledger.cpu_seconds[CAT_SERDE] > before


class TestFileCopy:
    def test_out_and_in_round_trip(self, env, fs):
        fs.append("store/a.log", b"alpha")
        fs.append("store/b.log", b"beta")
        fs.append("other/c.log", b"gamma")
        files = copy_files_out(env, fs, "store/")
        assert set(files) == {"store/a.log", "store/b.log"}

        env2 = SimEnv()
        fs2 = SimFileSystem(env2)
        copy_files_in(env2, fs2, files)
        assert fs2.read("store/a.log") == b"alpha"
        assert fs2.read("store/b.log") == b"beta"

    def test_copy_in_overwrites_existing(self, env, fs):
        fs.append("store/a.log", b"old")
        copy_files_in(env, fs, {"store/a.log": b"new"})
        assert fs.read("store/a.log") == b"new"

    def test_copy_out_charges_reads(self, env, fs):
        fs.append("store/a.log", b"x" * 4096)
        before = env.ledger.bytes_read
        copy_files_out(env, fs, "store/")
        assert env.ledger.bytes_read - before == 4096

    def test_async_copy_charges_uploader_not_store(self, env, fs):
        fs.append("store/a.log", b"x" * 4096)
        uploader = SimEnv()
        store_clock_before = env.now
        files = copy_files_out(env, fs, "store/", upload_env=uploader)
        assert files["store/a.log"] == b"x" * 4096
        assert env.now == store_clock_before  # store clock untouched
        assert uploader.ledger.bytes_read == 4096


class TestStoreSnapshot:
    def test_total_bytes(self):
        snapshot = StoreSnapshot("kind", b"12345", {"f": b"abc", "g": b"de"})
        assert snapshot.total_bytes == 10

    def test_empty_files_default(self):
        snapshot = StoreSnapshot("kind", b"m")
        assert snapshot.files == {}
        assert snapshot.total_bytes == 1
