"""Per-key-group load accounting invariants.

The tracker increments its group, instance and node axes at the same
call sites, so each axis must sum to the same totals — exactly for the
integer counters, to float-sum precision for busy seconds — on every
backend, with batching, across a live migration, and through recovery.
And because the tracker is pure-Python bookkeeping, a run with it (it
is always on) charges the simulated ledgers *exactly* what the pre-skew
build charged: pinned here to the digit.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.bench.harness import run_query
from repro.bench.profiles import TINY_PROFILE
from repro.cluster import ClusterTopology
from repro.rescale import GroupLoadTracker, SkewController

WINDOW = TINY_PROFILE.window_sizes[0]
BACKENDS = ("memory", "flowkv", "rocksdb", "faster")

# One cell of the evaluation matrix, pinned from the build that
# introduced the tracker (identical to the build before it): the
# always-on accounting must never shift a simulated charge.
PINNED_OUTPUT = "d7e5c0b7a7dedead20011530c5e98225b4025fd79fe92fa0d7b3743cc2803b75"
PINNED_INPUT_RECORDS = 6019
PINNED_RESULTS = 767
PINNED_JOB_SECONDS = 0.008350109999999692
PINNED_CPU = {
    "engine": 0.001004880000000029,
    "query": 0.0014860399999999997,
    "serde": 0.003178320000000296,
    "store_read": 0.001023854999999999,
    "store_write": 0.001098544999999933,
}


def profile_for(backend: str):
    if backend == "memory":
        return replace(TINY_PROFILE, heap_total_bytes=8 << 20)
    return TINY_PROFILE


def assert_axes_consistent(group_load: dict) -> None:
    groups = group_load["groups"].values()
    instances = group_load["instances"].values()
    nodes = group_load["nodes"].values()
    for key in ("records", "bytes"):
        by_group = sum(entry[key] for entry in groups)
        by_instance = sum(entry[key] for entry in instances)
        by_node = sum(entry[key] for entry in nodes)
        assert by_group == by_instance == by_node > 0, key
    busy_group = math.fsum(e["busy_seconds"] for e in groups)
    busy_instance = math.fsum(e["busy_seconds"] for e in instances)
    busy_node = math.fsum(e["busy_seconds"] for e in nodes)
    assert busy_group == pytest.approx(busy_instance, rel=1e-12)
    assert busy_group == pytest.approx(busy_node, rel=1e-12)
    assert busy_group > 0.0


class TestChargeIdentity:
    def test_tracked_run_charges_identically(self):
        """The tracker is pure bookkeeping: same digest, same simulated
        time, same per-category CPU as the pre-tracker build."""
        record = run_query(TINY_PROFILE, "q7", "flowkv", WINDOW)
        assert record.ok
        assert record.output_hash == PINNED_OUTPUT
        assert record.input_records == PINNED_INPUT_RECORDS
        assert record.results == PINNED_RESULTS
        assert record.job_seconds == PINNED_JOB_SECONDS
        observed = {k: v for k, v in record.metrics.cpu_seconds.items() if v}
        assert observed == PINNED_CPU


@pytest.mark.parametrize("backend", BACKENDS)
class TestAxisInvariants:
    def test_axes_sum_exactly(self, backend):
        record = run_query(profile_for(backend), "q7", backend, WINDOW)
        assert record.ok
        assert_axes_consistent(record.group_load)

    def test_axes_sum_exactly_batched(self, backend):
        """The batched path splits one service charge across groups with
        an exact float remainder — sums must still match."""
        record = run_query(
            profile_for(backend), "q7", backend, WINDOW, batch_records=16
        )
        assert record.ok
        assert_axes_consistent(record.group_load)

    def test_axes_survive_live_migration(self, backend):
        """Counters are global per group: a mid-stream split re-places
        groups without resetting or double-counting anything."""
        record = run_query(
            profile_for(backend), "q7", backend, WINDOW, parallelism=4,
            generator_overrides={"bidder_zipf": 1.5},
            rescale_policy=SkewController(
                imbalance_threshold=1.5, patience=3, cooldown=10
            ),
        )
        assert record.ok
        assert any(e.reason == "skew-split" for e in record.rescales)
        assert_axes_consistent(record.group_load)
        plain = run_query(
            profile_for(backend), "q7", backend, WINDOW, parallelism=4,
            generator_overrides={"bidder_zipf": 1.5},
        )
        # Same stream, same keyed work: the group axis is placement-
        # independent, so its totals match the unsplit run exactly.
        split_groups = record.group_load["groups"]
        plain_groups = plain.group_load["groups"]
        assert set(split_groups) == set(plain_groups)
        for group, entry in plain_groups.items():
            assert split_groups[group]["records"] == entry["records"], group
            assert split_groups[group]["bytes"] == entry["bytes"], group


class TestClusterAxis:
    def test_node_stats_mirror_tracker(self):
        record = run_query(
            TINY_PROFILE, "q7", "flowkv", WINDOW, parallelism=4,
            cluster=ClusterTopology.uniform(2),
        )
        assert record.ok
        assert_axes_consistent(record.group_load)
        nodes = record.group_load["nodes"]
        assert len(nodes) == 2
        # node_stats carries the same keyed counters, keyed by name.
        for node_id, entry in nodes.items():
            stats = record.node_stats[f"node{node_id}"]
            assert stats["keyed_records"] == entry["records"]
            assert stats["keyed_busy_seconds"] == entry["busy_seconds"]


class TestRecoveryResets:
    def test_axes_consistent_after_restore(self):
        """Recovery builds a fresh executor (and tracker): the surfaced
        counters describe the final attempt only, and still balance."""
        from repro.faults import CRASH_RUNTIME_RECORD, FaultPlan

        baseline = run_query(TINY_PROFILE, "q7", "flowkv", WINDOW)
        interval = max(1, baseline.input_records // 4)
        crash_at = max(2, baseline.input_records // 2)
        plan = FaultPlan(seed=7).crash(CRASH_RUNTIME_RECORD, on_hit=crash_at)
        record = run_query(
            TINY_PROFILE, "q7", "flowkv", WINDOW,
            fault_plan=plan, checkpoint_interval=interval,
        )
        assert record.ok
        assert record.output_hash == baseline.output_hash
        assert any(e.kind == "restore" for e in record.recoveries)
        assert_axes_consistent(record.group_load)
        # Reset-on-restore, not carry-over: the final attempt replayed
        # from the last checkpoint, so it saw fewer records than the
        # crash-free run processed in total plus the replay.
        total = sum(e["records"] for e in record.group_load["groups"].values())
        crash_free = sum(
            e["records"] for e in baseline.group_load["groups"].values()
        )
        assert 0 < total <= crash_free


class TestTrackerUnit:
    def test_record_updates_all_axes(self):
        tracker = GroupLoadTracker(8)
        tracker.record(3, 1, 0, 2, 100, 0.5)
        tracker.record(3, 1, 0, 1, 50, 0.25)
        tracker.record(5, 0, 1, 4, 10, 1.0)
        assert tracker.group_records[3] == 3
        assert tracker.group_bytes[3] == 150
        assert tracker.group_busy[3] == 0.75
        assert tracker.instance_records == {1: 3, 0: 4}
        assert tracker.node_busy == {0: 0.75, 1: 1.0}

    def test_record_many_busy_shares_sum_exactly(self):
        tracker = GroupLoadTracker(8)
        busy = 0.1  # not representable: remainder logic must absorb it
        rows = [(0, 1, 10), (1, 2, 20), (2, 4, 40)]
        tracker.record_many(0, 0, rows, busy)
        assert math.fsum(tracker.group_busy) == busy
        assert tracker.instance_busy[0] == busy
        assert tracker.node_busy[0] == busy
        assert sum(tracker.group_records) == tracker.instance_records[0] == 7

    def test_summary_is_sparse(self):
        tracker = GroupLoadTracker(128)
        tracker.record(7, 0, 0, 1, 8, 0.1)
        summary = tracker.summary()
        assert list(summary["groups"]) == [7]
        assert list(summary["instances"]) == [0]
        assert list(summary["nodes"]) == [0]
