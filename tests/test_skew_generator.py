"""Property suite for the generator's skew axis.

Three knob families — Zipf-skewed bidders/sellers, the flash-crowd
burst, the late-data storm — plus the contract that matters most: with
every knob off the stream is byte-identical to the pre-skew generator
(pinned by hash), so the skew axis can never silently perturb the
existing evaluation.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nexmark import Bid, GeneratorConfig, Person, generate_events

# sha256 over ``repr((event, timestamp))`` in generation order: any
# change to content, order, or timestamps shows up.
PINNED_DEFAULT = "b921eea5714812e13b0c0675bb26fa16bb42b7b8c1ad2fbddea2d6b3e03d24d5"
PINNED_TINYISH = "8225295033e1ff774cda4632f2e99a549074830091f082f5eb843f9668b477dd"


def stream_hash(config: GeneratorConfig) -> str:
    digest = hashlib.sha256()
    for event, ts in generate_events(config):
        digest.update(repr((event, ts)).encode())
    return digest.hexdigest()


class TestKnobsOffRegression:
    def test_default_stream_pinned(self):
        assert stream_hash(GeneratorConfig()) == PINNED_DEFAULT

    def test_tiny_scale_stream_pinned(self):
        config = GeneratorConfig(events_per_second=30.0, duration=200.0, seed=7)
        assert stream_hash(config) == PINNED_TINYISH

    def test_explicit_off_values_identical(self):
        """Spelling the defaults out must not consume extra RNG draws."""
        explicit = GeneratorConfig(
            bidder_zipf=None, seller_zipf=None, flash_start=None,
            late_storm_start=None,
        )
        assert stream_hash(explicit) == PINNED_DEFAULT

    def test_zero_delay_storm_identical(self):
        """A storm that shifts by 0 s touches no timestamp and no draw."""
        config = GeneratorConfig(
            late_storm_start=100.0, late_storm_duration=200.0,
            late_storm_delay=0.0,
        )
        assert stream_hash(config) == PINNED_DEFAULT


class TestValidation:
    @pytest.mark.parametrize("knob", ["bidder_zipf", "seller_zipf"])
    @pytest.mark.parametrize("value", [0.0, -1.5])
    def test_zipf_exponent_must_be_positive(self, knob, value):
        with pytest.raises(ValueError, match=knob):
            GeneratorConfig(**{knob: value})

    def test_flash_intensity_bounded(self):
        with pytest.raises(ValueError, match="flash_intensity"):
            GeneratorConfig(flash_intensity=1.5)

    def test_negative_durations_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(flash_start=10.0, flash_duration=-1.0)
        with pytest.raises(ValueError):
            GeneratorConfig(late_storm_start=10.0, late_storm_duration=-1.0)
        with pytest.raises(ValueError, match="late_storm_delay"):
            GeneratorConfig(late_storm_start=10.0, late_storm_delay=-2.0)


def zipf_expected(exponent: float, n: int) -> list[float]:
    weights = [(rank + 1) ** -exponent for rank in range(n)]
    total = sum(weights)
    return [w / total for w in weights]


class TestZipfSkew:
    @settings(max_examples=15, deadline=None)
    @given(
        exponent=st.floats(min_value=1.2, max_value=2.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_bidder_rank_frequency_tracks_zipf(self, exponent, seed):
        """With a frozen population the empirical bid shares must sit in
        a tolerance band around the Zipf pmf, rank 0 = ``people[0]``."""
        config = GeneratorConfig(
            events_per_second=100.0, duration=60.0, seed=seed,
            person_ratio=0.0, auction_ratio=0.06,  # freeze the 8 seeds
            bidder_zipf=exponent,
        )
        counts: dict[int, int] = {}
        bids = 0
        for event, _ts in generate_events(config):
            if isinstance(event, Bid):
                counts[event.bidder] = counts.get(event.bidder, 0) + 1
                bids += 1
        assert bids > 2000
        expected = zipf_expected(exponent, 8)
        # Population is exactly the 8 pre-seeded people, ids 0..7 in
        # rank order (no Person events are ever generated).
        assert set(counts) <= set(range(8))
        top_share = counts.get(0, 0) / bids
        assert abs(top_share - expected[0]) < 0.12
        # Monotone in rank for the ranks with enough mass to measure.
        assert counts.get(0, 0) > counts.get(1, 0) > counts.get(3, 0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_seller_zipf_concentrates_auctions(self, seed):
        config = GeneratorConfig(
            events_per_second=100.0, duration=60.0, seed=seed,
            person_ratio=0.0, seller_zipf=1.5,
        )
        sellers = [
            e.seller for e, _ts in generate_events(config)
            if not isinstance(e, (Person, Bid))
        ]
        assert sellers, "no auctions generated"
        top = max(set(sellers), key=sellers.count)
        assert top == 0  # rank 0 is the oldest pre-seeded person
        assert sellers.count(0) / len(sellers) > 0.35  # ~0.52 expected

    def test_zipf_preserves_the_event_mix(self):
        """Skewing the picks must not disturb the 2/6/92 event mix."""
        skew = list(generate_events(GeneratorConfig(duration=200.0,
                                                    bidder_zipf=1.5)))
        bids = sum(1 for e, _ts in skew if isinstance(e, Bid))
        persons = sum(1 for e, _ts in skew if isinstance(e, Person))
        assert 0.88 < bids / len(skew) < 0.96
        assert 0.005 < persons / len(skew) < 0.04


class TestFlashCrowd:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        start=st.floats(min_value=20.0, max_value=60.0),
    )
    def test_flash_window_contains_the_burst(self, seed, start):
        duration = 30.0
        config = GeneratorConfig(
            events_per_second=100.0, duration=120.0, seed=seed,
            flash_start=start, flash_duration=duration, flash_intensity=0.9,
        )
        inside: list[int] = []
        outside: list[int] = []
        for event, ts in generate_events(config):
            if isinstance(event, Bid):
                (inside if start <= ts < start + duration else outside).append(
                    event.auction
                )
        assert inside, "flash window saw no bids"
        target = max(set(inside), key=inside.count)
        # Inside the burst one latched auction dominates at roughly the
        # configured intensity; outside it stays a background target.
        assert inside.count(target) / len(inside) > 0.75
        if outside:
            assert outside.count(target) / len(outside) < 0.5

    def test_no_flash_before_start(self):
        config = GeneratorConfig(
            events_per_second=100.0, duration=60.0, seed=5,
            flash_start=50.0, flash_duration=10.0, flash_intensity=1.0,
        )
        pre = [e.auction for e, ts in generate_events(config)
               if isinstance(e, Bid) and ts < 50.0]
        # The pre-window stream keeps the background spread: no single
        # auction takes the near-total share the latch would produce.
        assert max(pre.count(a) for a in set(pre)) / len(pre) < 0.6


class TestLateStorm:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        delay=st.floats(min_value=1.0, max_value=50.0),
    )
    def test_storm_shifts_only_storm_bids(self, seed, delay):
        start, span = 40.0, 20.0
        base_cfg = GeneratorConfig(events_per_second=100.0, duration=100.0,
                                   seed=seed)
        storm_cfg = GeneratorConfig(
            events_per_second=100.0, duration=100.0, seed=seed,
            late_storm_start=start, late_storm_duration=span,
            late_storm_delay=delay,
        )
        base = list(generate_events(base_cfg))
        storm = list(generate_events(storm_cfg))
        assert len(base) == len(storm)
        shifted = 0
        for (b_ev, b_ts), (s_ev, s_ts) in zip(base, storm):
            assert b_ev == s_ev  # identical draws: same events, same order
            if isinstance(b_ev, Bid) and start <= b_ts < start + span:
                assert s_ts == max(0.0, b_ts - delay)
                shifted += 1
            else:
                assert s_ts == b_ts
        assert shifted > 0


class TestSeedDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_same_seed_same_stream_with_knobs(self, seed):
        config = GeneratorConfig(
            events_per_second=60.0, duration=60.0, seed=seed,
            bidder_zipf=1.4, seller_zipf=1.2,
            flash_start=20.0, flash_duration=10.0,
            late_storm_start=40.0, late_storm_duration=10.0,
            late_storm_delay=5.0,
        )
        assert stream_hash(config) == stream_hash(config)

    def test_different_seeds_differ(self):
        a = GeneratorConfig(duration=50.0, seed=1, bidder_zipf=1.5)
        b = GeneratorConfig(duration=50.0, seed=2, bidder_zipf=1.5)
        assert stream_hash(a) != stream_hash(b)
