"""Statistical checks on the NEXMark generator beyond the basic mix."""

from __future__ import annotations

import statistics

from repro.nexmark import Auction, Bid, GeneratorConfig, Person, generate_events

CONFIG = GeneratorConfig(events_per_second=80.0, duration=600.0, seed=31,
                         active_people=100, active_auctions=40)


def events():
    return list(generate_events(CONFIG))


class TestArrivalProcess:
    def test_inter_arrival_mean_matches_rate(self):
        timestamps = [ts for _e, ts in events()]
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        mean_gap = statistics.fmean(gaps)
        assert abs(mean_gap - 1.0 / CONFIG.events_per_second) < 0.15 / CONFIG.events_per_second

    def test_inter_arrivals_are_exponential_ish(self):
        """CV of exponential inter-arrivals is ~1 (not a regular clock)."""
        timestamps = [ts for _e, ts in events()]
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        cv = statistics.pstdev(gaps) / statistics.fmean(gaps)
        assert 0.8 < cv < 1.2


class TestPopularitySkew:
    def test_hot_auctions_get_more_bids(self):
        bids = [e for e, _ts in events() if isinstance(e, Bid)]
        counts: dict[int, int] = {}
        for bid in bids:
            counts[bid.auction] = counts.get(bid.auction, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        top_decile = sum(ordered[: max(1, len(ordered) // 10)])
        # Hotness is temporal (the newest quartile of a sliding 40-slot
        # window), so globally the top 10% of all auctions seen over the
        # run should still take noticeably more than 10% of bids.
        assert top_decile / len(bids) > 0.13

    def test_bidders_drawn_from_active_window(self):
        stream = events()
        alive: set[int] = set(range(8))  # seed population
        max_window = 8
        for event, _ts in stream:
            if isinstance(event, Person):
                alive.add(event.person_id)
                max_window = max(max_window, len(alive))
            elif isinstance(event, Bid):
                assert event.bidder in alive or event.bidder < max(alive) + 1


class TestIdAssignment:
    def test_person_ids_sequential(self):
        ids = [e.person_id for e, _ts in events() if isinstance(e, Person)]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_auction_ids_sequential(self):
        ids = [e.auction_id for e, _ts in events() if isinstance(e, Auction)]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_sellers_are_people(self):
        stream = events()
        people = set(range(8))
        for event, _ts in stream:
            if isinstance(event, Person):
                people.add(event.person_id)
            elif isinstance(event, Auction):
                assert event.seller in people

    def test_prices_positive_and_bounded(self):
        prices = [e.price for e, _ts in events() if isinstance(e, Bid)]
        assert all(100 <= p < 10_100 for p in prices)
