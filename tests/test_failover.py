"""Hot-standby failover: promotion, degradation, and charge identity.

End-to-end invariants of the changelog-replication lane
(:mod:`repro.changelog` driven by ``RecoveryManager(mode="standby")``):

* promoting a warm standby after a node kill lands on the exact digest
  of an uninterrupted run (exactly-once) and takes strictly less
  downtime than restoring the same failure from checkpoints;
* every way the standby can be unusable — lagging tail (slow link),
  torn segment, dropped link, a crash during promotion itself —
  degrades to checkpoint restore, which still lands on the digest;
* single-node jobs never construct the replication machinery: a
  standby-mode run is charge- and digest-identical to restore mode;
* rescale ``promote`` mode seeds moved key-groups from warm replicas.

``FAULT_SEED`` (env var) varies the fault plans exactly as in
``test_recovery.py`` so the CI fault matrix covers this file too.
"""

from __future__ import annotations

import os

from repro.bench.harness import run_query
from repro.bench.profiles import TINY_PROFILE
from repro.cluster import ClusterTopology
from repro.faults import CRASH_STANDBY_PROMOTE, FaultPlan

FAULT_SEED = int(os.environ.get("FAULT_SEED", "7"))

WINDOW = TINY_PROFILE.window_sizes[0]
QUERY = "q11-median"
N_NODES = 4
DEAD_NODE = 2


def run(cluster_nodes=N_NODES, **kwargs):
    cluster = ClusterTopology.uniform(cluster_nodes) if cluster_nodes else None
    return run_query(TINY_PROFILE, QUERY, "flowkv", WINDOW,
                     parallelism=N_NODES, workers=1, cluster=cluster, **kwargs)


def baseline():
    return run()


def cut_points(base):
    interval = max(1, base.input_records // 4)
    kill_at = max(2, (7 * base.input_records) // 10)
    return interval, kill_at


def kill_plan(kill_at, **extra):
    plan = FaultPlan(seed=FAULT_SEED).kill_node(DEAD_NODE, on_hit=kill_at)
    for method, kwargs in extra.items():
        getattr(plan, method)(**kwargs)
    return plan


class TestPromotion:
    def test_promotion_is_exactly_once(self):
        base = baseline()
        interval, kill_at = cut_points(base)
        promoted = run(fault_plan=kill_plan(kill_at),
                       checkpoint_interval=interval, recovery_mode="standby")
        assert promoted.output_hash == base.output_hash
        kinds = [e.kind for e in promoted.recoveries]
        assert "node_failure" in kinds
        assert "promote" in kinds
        assert "degraded" not in kinds
        assert "restore" not in kinds

    def test_promotion_beats_checkpoint_restore(self):
        base = baseline()
        interval, kill_at = cut_points(base)
        restored = run(fault_plan=kill_plan(kill_at),
                       checkpoint_interval=interval)
        promoted = run(fault_plan=kill_plan(kill_at),
                       checkpoint_interval=interval, recovery_mode="standby")
        assert restored.output_hash == base.output_hash
        assert promoted.output_hash == base.output_hash
        assert promoted.recovery_downtime < restored.recovery_downtime

    def test_promotion_repoints_the_dead_nodes_instances(self):
        base = baseline()
        interval, kill_at = cut_points(base)
        promoted = run(fault_plan=kill_plan(kill_at),
                       checkpoint_interval=interval, recovery_mode="standby")
        promote = next(e for e in promoted.recoveries if e.kind == "promote")
        # Consecutive-peer placement: node 2's standby lives on node 3.
        assert f"node {DEAD_NODE} -> standby {(DEAD_NODE + 1) % N_NODES}" \
            in promote.detail

    def test_replication_pays_the_network(self):
        base = baseline()
        interval, kill_at = cut_points(base)
        restored = run(fault_plan=kill_plan(kill_at),
                       checkpoint_interval=interval)
        promoted = run(fault_plan=kill_plan(kill_at),
                       checkpoint_interval=interval, recovery_mode="standby")
        # Tailing segments to standbys is extra traffic over plain
        # checkpoint replication — the cost of the faster failover.
        assert promoted.network_bytes > restored.network_bytes


class TestDegradation:
    def degraded_run(self, **extra):
        base = baseline()
        interval, kill_at = cut_points(base)
        record = run(fault_plan=kill_plan(kill_at, **extra),
                     checkpoint_interval=interval, recovery_mode="standby")
        return base, record

    def assert_degraded_but_exact(self, base, record):
        kinds = [e.kind for e in record.recoveries]
        assert "degraded" in kinds
        assert "restore" in kinds  # the fallback lane recovered the job
        assert "promote" not in kinds
        assert record.output_hash == base.output_hash

    def test_lagging_standby_slow_link(self):
        base, record = self.degraded_run(
            slow_link=dict(factor=1e9, at_time=0.0,
                           path_prefix="net/clog/", times=10**6))
        self.assert_degraded_but_exact(base, record)

    def test_torn_changelog_segment(self):
        base, record = self.degraded_run(
            torn_write=dict(at_time=0.0, path_prefix="clog/", times=10**6))
        self.assert_degraded_but_exact(base, record)

    def test_dropped_replication_link(self):
        base, record = self.degraded_run(
            drop_link=dict(at_time=0.0, path_prefix="net/clog/", times=10**6))
        self.assert_degraded_but_exact(base, record)

    def test_crash_during_promotion(self):
        base, record = self.degraded_run(
            crash=dict(site=CRASH_STANDBY_PROMOTE, on_hit=1))
        self.assert_degraded_but_exact(base, record)


class TestSingleNodeIdentity:
    def test_standby_mode_is_inert_without_a_cluster(self):
        base = run(cluster_nodes=None)
        interval = max(1, base.input_records // 4)
        restore = run(cluster_nodes=None, checkpoint_interval=interval)
        standby = run(cluster_nodes=None, checkpoint_interval=interval,
                      recovery_mode="standby")
        assert standby.output_hash == restore.output_hash == base.output_hash
        # Charge identity: no replication machinery means not one extra
        # simulated nanosecond or byte in any ledger category.
        assert standby.metrics.cpu_seconds == restore.metrics.cpu_seconds
        assert standby.network_bytes == restore.network_bytes
        assert standby.job_seconds == restore.job_seconds


class TestPromoteModeRescale:
    def test_rescale_seeds_from_warm_replicas(self):
        base = baseline()
        interval = max(1, base.input_records // 4)
        rescale_at = max(2, base.input_records // 2)
        rescaled = run(checkpoint_interval=interval, recovery_mode="standby",
                       rescale_schedule={rescale_at: 2},
                       rescale_mode="promote")
        assert rescaled.failure is None
        assert rescaled.rescales and rescaled.rescales[0].new_parallelism == 2
        assert not rescaled.rescales[0].aborted
        # Warm replicas, not live streaming, carried most moved groups.
        assert rescaled.rescales[0].seeded_groups > 0
        assert rescaled.output_hash == base.output_hash
