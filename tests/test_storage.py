"""Unit tests for the simulated filesystem and framed logs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FileExistsInStoreError,
    FileNotFoundInStoreError,
    FileSystemError,
)
from repro.simenv import SimEnv
from repro.storage import LogReader, LogWriter, SimFileSystem


class TestFileSystemNamespace:
    def test_create_and_exists(self, fs):
        fs.create("a.log")
        assert fs.exists("a.log")
        assert not fs.exists("b.log")

    def test_create_duplicate_fails(self, fs):
        fs.create("a.log")
        with pytest.raises(FileExistsInStoreError):
            fs.create("a.log")

    def test_delete(self, fs):
        fs.create("a.log")
        fs.delete("a.log")
        assert not fs.exists("a.log")

    def test_delete_missing_fails(self, fs):
        with pytest.raises(FileNotFoundInStoreError):
            fs.delete("nope")

    def test_rename(self, fs):
        fs.append("a.log", b"hello")
        fs.rename("a.log", "b.log")
        assert not fs.exists("a.log")
        assert fs.read("b.log") == b"hello"

    def test_rename_atomically_replaces_existing(self, fs):
        # POSIX rename(2): the target is replaced in one step, which is
        # what the write-temp-then-rename checkpoint commit relies on.
        fs.append("manifest.tmp", b"new manifest")
        fs.append("manifest", b"old manifest")
        fs.rename("manifest.tmp", "manifest")
        assert not fs.exists("manifest.tmp")
        assert fs.read("manifest") == b"new manifest"

    def test_rename_missing_source_fails(self, fs):
        fs.create("b.log")
        with pytest.raises(FileNotFoundInStoreError):
            fs.rename("nope", "b.log")

    def test_corrupt_and_truncate_helpers(self, fs):
        fs.append("f", b"\x00\x01\x02\x03")
        fs.corrupt("f", 1, 0xFF)
        assert fs.read("f") == b"\x00\xfe\x02\x03"
        fs.truncate("f", 2)
        assert fs.read("f") == b"\x00\xfe"
        with pytest.raises(FileNotFoundInStoreError):
            fs.corrupt("missing", 0)
        with pytest.raises(FileSystemError):
            fs.corrupt("f", 99)

    def test_list_files_prefix(self, fs):
        fs.create("x/a")
        fs.create("x/b")
        fs.create("y/c")
        assert fs.list_files("x/") == ["x/a", "x/b"]

    def test_total_bytes(self, fs):
        fs.append("x/a", b"12345")
        fs.append("y/b", b"123")
        assert fs.total_bytes() == 8
        assert fs.total_bytes("x/") == 5


class TestFileSystemData:
    def test_append_returns_offsets(self, fs):
        assert fs.append("a", b"123") == 0
        assert fs.append("a", b"4567") == 3
        assert fs.size("a") == 7

    def test_append_creates_lazily(self, fs):
        fs.append("lazy", b"x")
        assert fs.exists("lazy")

    def test_read_range(self, fs):
        fs.append("a", b"0123456789")
        assert fs.read("a", 2, 4) == b"2345"
        assert fs.read("a") == b"0123456789"
        assert fs.read("a", 8, 100) == b"89"  # clamped at EOF

    def test_read_bad_offset(self, fs):
        fs.append("a", b"xy")
        with pytest.raises(FileSystemError):
            fs.read("a", 5, 1)

    def test_read_missing_file(self, fs):
        with pytest.raises(FileNotFoundInStoreError):
            fs.read("missing")

    def test_size_missing_file(self, fs):
        with pytest.raises(FileNotFoundInStoreError):
            fs.size("missing")

    def test_io_charges_clock(self, env, fs):
        before = env.now
        fs.append("a", b"x" * 4096)
        after_write = env.now
        assert after_write > before
        fs.read("a")
        assert env.now > after_write
        assert env.ledger.bytes_written == 4096
        assert env.ledger.bytes_read == 4096

    def test_zero_copy_transfer(self, env, fs):
        fs.append("src", b"abcdefghij")
        offset = fs.zero_copy_transfer("src", 2, 5, "dst")
        assert offset == 0
        assert fs.read("dst") == b"cdefg"
        # A second transfer appends.
        fs.zero_copy_transfer("src", 0, 2, "dst")
        assert fs.read("dst") == b"cdefgab"

    def test_zero_copy_out_of_range(self, fs):
        fs.append("src", b"abc")
        with pytest.raises(FileSystemError):
            fs.zero_copy_transfer("src", 1, 5, "dst")

    def test_zero_copy_missing_source(self, fs):
        with pytest.raises(FileNotFoundInStoreError):
            fs.zero_copy_transfer("nope", 0, 1, "dst")

    def test_zero_copy_charges_no_user_copy_cpu(self, env, fs):
        """Zero-copy must charge strictly less CPU than a read+append."""
        fs.append("src", b"z" * (1 << 16))
        cpu_before = sum(env.ledger.cpu_seconds.values())
        fs.zero_copy_transfer("src", 0, 1 << 16, "dst1")
        zero_copy_cpu = sum(env.ledger.cpu_seconds.values()) - cpu_before
        cpu_before = sum(env.ledger.cpu_seconds.values())
        data = fs.read("src", 0, 1 << 16)
        fs.append("dst2", data)
        copy_cpu = sum(env.ledger.cpu_seconds.values()) - cpu_before
        assert zero_copy_cpu < copy_cpu


class TestLogWriterReader:
    def test_round_trip(self, env, fs):
        writer = LogWriter(fs, "log")
        offsets = [writer.append_record(f"rec{i}".encode()) for i in range(100)]
        writer.flush()
        reader = LogReader(fs, "log")
        records = list(reader.iter_records())
        assert [payload for _off, payload in records] == [
            f"rec{i}".encode() for i in range(100)
        ]
        assert [off for off, _payload in records] == offsets

    def test_read_record_at_offset(self, env, fs):
        writer = LogWriter(fs, "log")
        offsets = [writer.append_record(bytes([i]) * (i + 1)) for i in range(20)]
        writer.flush()
        reader = LogReader(fs, "log")
        for i, offset in enumerate(offsets):
            assert reader.read_record_at(offset) == bytes([i]) * (i + 1)

    def test_flush_is_single_request(self, env, fs):
        writer = LogWriter(fs, "log")
        for i in range(50):
            writer.append_record(b"x" * 100)
        requests_before = env.ledger.write_requests
        writer.flush()
        assert env.ledger.write_requests == requests_before + 1

    def test_empty_flush_noop(self, env, fs):
        writer = LogWriter(fs, "log")
        writer.flush()
        assert not fs.exists("log")

    def test_buffered_bytes_tracking(self, fs):
        writer = LogWriter(fs, "log")
        assert writer.buffered_bytes == 0
        writer.append_record(b"abc")
        assert writer.buffered_bytes > 3  # payload + frame header
        writer.flush()
        assert writer.buffered_bytes == 0
        assert writer.total_bytes == fs.size("log")

    def test_record_larger_than_chunk(self, env, fs):
        writer = LogWriter(fs, "log")
        big = b"B" * 5000
        writer.append_record(b"small")
        writer.append_record(big)
        writer.append_record(b"tail")
        writer.flush()
        reader = LogReader(fs, "log")
        payloads = [p for _o, p in reader.iter_records(chunk_bytes=512)]
        assert payloads == [b"small", big, b"tail"]

    def test_iter_from_offset(self, env, fs):
        writer = LogWriter(fs, "log")
        offsets = [writer.append_record(f"{i}".encode()) for i in range(10)]
        writer.flush()
        reader = LogReader(fs, "log")
        payloads = [p for _o, p in reader.iter_records(start=offsets[5])]
        assert payloads == [f"{i}".encode() for i in range(5, 10)]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=300), min_size=1, max_size=60))
    def test_round_trip_property(self, payloads):
        env = SimEnv()
        fs = SimFileSystem(env)
        writer = LogWriter(fs, "log")
        for payload in payloads:
            writer.append_record(payload)
        writer.flush()
        reader = LogReader(fs, "log")
        assert [p for _o, p in reader.iter_records(chunk_bytes=64)] == payloads
