"""Key-group ownership properties, exhaustively over small spaces.

Ownership is load-bearing for everything above it — routing, rescale
planning, checkpoint sharding, cluster placement — so the invariants are
checked for *every* ``(max_key_groups, parallelism)`` pair up to 16
rather than a handful of spot values.  The uneven cases
(``max_key_groups % parallelism != 0``) are exactly where an off-by-one
in the ceil-divided range arithmetic would hide.
"""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.rescale.keygroups import (
    contiguous_owner_table,
    key_group_range,
    moved_key_groups,
    owner_of,
)

LIMIT = 16
PAIRS = [
    (groups, parallelism)
    for groups in range(1, LIMIT + 1)
    for parallelism in range(1, groups + 1)
]
UNEVEN = [(g, p) for g, p in PAIRS if g % p != 0]


@pytest.mark.parametrize("groups,parallelism", PAIRS)
def test_every_group_owned_exactly_once(groups, parallelism):
    table = contiguous_owner_table(groups, parallelism)
    assert len(table) == groups
    # The table agrees with owner_of, and every owner index is in range.
    assert table == [owner_of(g, groups, parallelism) for g in range(groups)]
    assert all(0 <= owner < parallelism for owner in table)
    # The per-instance ranges partition [0, groups): disjoint, complete.
    seen: list[int] = []
    for index in range(parallelism):
        seen.extend(key_group_range(index, groups, parallelism))
    assert seen == list(range(groups))


@pytest.mark.parametrize("groups,parallelism", PAIRS)
def test_every_instance_owns_at_least_one_group(groups, parallelism):
    table = contiguous_owner_table(groups, parallelism)
    assert set(table) == set(range(parallelism))


@pytest.mark.parametrize("groups,parallelism", PAIRS)
def test_ownership_is_contiguous_and_monotone(groups, parallelism):
    table = contiguous_owner_table(groups, parallelism)
    assert table == sorted(table)


@pytest.mark.parametrize("groups,parallelism", UNEVEN)
def test_uneven_split_balanced_within_one(groups, parallelism):
    table = contiguous_owner_table(groups, parallelism)
    counts = [table.count(owner) for owner in range(parallelism)]
    assert max(counts) - min(counts) <= 1
    assert sum(counts) == groups


@pytest.mark.parametrize("groups", range(1, LIMIT + 1))
def test_identity_rescale_moves_nothing(groups):
    for parallelism in range(1, groups + 1):
        assert moved_key_groups(groups, parallelism, parallelism) == {}


def test_owner_table_rejects_unsatisfiable_parallelism():
    # Direct callers used to bypass plan-level validation: P > G would
    # silently produce owners while some instances owned zero groups.
    with pytest.raises(PlanError):
        contiguous_owner_table(8, 9)
    with pytest.raises(PlanError):
        contiguous_owner_table(8, 0)
