"""Unit tests for the fault-injection layer (repro.faults).

The injector's contract is determinism: the same :class:`FaultPlan`
replayed against the same I/O sequence fires the same faults, with the
same data-dependent choices (tear lengths, flipped bits), recorded in
identical ``FaultRecord`` sequences.
"""

from __future__ import annotations

import pytest

from repro.errors import DiskIOError, InjectedCrashError
from repro.faults import (
    CRASH_MIGRATE_IMPORT,
    CRASH_RUNTIME_RECORD,
    CRASH_SNAPSHOT_FILE,
    FaultPlan,
    with_retries,
)
from repro.simenv import SimEnv
from repro.storage import SimFileSystem


def faulty_fs(plan: FaultPlan) -> tuple[SimEnv, SimFileSystem]:
    env = SimEnv(faults=plan.build())
    return env, SimFileSystem(env)


class TestPlanValidation:
    def test_unknown_crash_site_rejected(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            FaultPlan().crash("no.such.site", on_hit=1)

    def test_crash_needs_a_trigger(self):
        with pytest.raises(ValueError, match="on_hit or at_time"):
            FaultPlan().crash(CRASH_RUNTIME_RECORD)


class TestDiskFaults:
    def test_write_error_raises_before_data_lands(self):
        env, fs = faulty_fs(FaultPlan(seed=1).fail_io(op="write", on_io=1))
        with pytest.raises(DiskIOError):
            fs.append("f", b"payload")
        assert not fs.exists("f")
        # The fault is spent: the retry succeeds.
        fs.append("f", b"payload")
        assert fs.read("f") == b"payload"

    def test_read_error(self):
        env, fs = faulty_fs(FaultPlan(seed=1).fail_io(op="read", on_io=2))
        fs.append("f", b"payload")  # io 1
        with pytest.raises(DiskIOError):
            fs.read("f")  # io 2
        assert fs.read("f") == b"payload"  # io 3: fault spent

    def test_torn_write_silently_keeps_a_prefix(self):
        env, fs = faulty_fs(FaultPlan(seed=3).torn_write(on_io=1))
        data = bytes(range(64))
        fs.append("f", data)  # no error: tears are silent
        torn = fs.read("f")
        assert len(torn) < len(data)
        assert data.startswith(torn)
        [record] = env.faults.fired
        assert record.kind == "torn"
        assert record.target == "f"

    def test_bit_flip_changes_exactly_one_bit(self):
        env, fs = faulty_fs(FaultPlan(seed=3).bit_flip(on_io=1))
        data = bytes(64)
        fs.append("f", data)
        flipped = fs.read("f")
        assert len(flipped) == len(data)
        diff = [(a ^ b) for a, b in zip(data, flipped)]
        changed = [d for d in diff if d]
        assert len(changed) == 1
        assert bin(changed[0]).count("1") == 1

    def test_path_prefix_scopes_the_fault(self):
        env, fs = faulty_fs(
            FaultPlan(seed=1).fail_io(op="write", at_time=0.0, path_prefix="chk/")
        )
        fs.append("data/log", b"x")  # prefix mismatch: untouched
        with pytest.raises(DiskIOError):
            fs.append("chk/000001/meta", b"x")

    def test_times_widens_the_ordinal_window(self):
        env, fs = faulty_fs(FaultPlan(seed=1).fail_io(op="write", on_io=2, times=2))
        fs.append("a", b"x")  # io 1: before the window
        for _ in range(2):  # io 2 and 3: both fail
            with pytest.raises(DiskIOError):
                fs.append("b", b"x")
        fs.append("c", b"x")  # io 4: window exhausted

    def test_at_time_triggers_on_the_clock(self):
        env, fs = faulty_fs(FaultPlan(seed=1).fail_io(op="write", at_time=1.0))
        fs.append("early", b"x")  # clock still ~0
        env.charge_cpu("store_write", 2.0)
        with pytest.raises(DiskIOError):
            fs.append("late", b"x")


class TestCrashPoints:
    def test_on_hit_fires_on_the_nth_passage_once(self):
        injector = FaultPlan().crash(CRASH_RUNTIME_RECORD, on_hit=3).build()
        injector.crash_point(CRASH_RUNTIME_RECORD)
        injector.crash_point(CRASH_RUNTIME_RECORD)
        with pytest.raises(InjectedCrashError) as excinfo:
            injector.crash_point(CRASH_RUNTIME_RECORD)
        assert excinfo.value.site == CRASH_RUNTIME_RECORD
        # A replay passing the same site again must not re-die.
        for _ in range(5):
            injector.crash_point(CRASH_RUNTIME_RECORD)

    def test_sites_are_independent(self):
        injector = FaultPlan().crash(CRASH_SNAPSHOT_FILE, on_hit=1).build()
        injector.crash_point(CRASH_RUNTIME_RECORD)  # different site: no fire
        with pytest.raises(InjectedCrashError):
            injector.crash_point(CRASH_SNAPSHOT_FILE)

    def test_at_time_uses_the_lazy_clock(self):
        injector = FaultPlan().crash(CRASH_MIGRATE_IMPORT, at_time=5.0).build()
        injector.crash_point(CRASH_MIGRATE_IMPORT, now_fn=lambda: 1.0)
        with pytest.raises(InjectedCrashError) as excinfo:
            injector.crash_point(CRASH_MIGRATE_IMPORT, now_fn=lambda: 7.5)
        assert excinfo.value.now == 7.5


class TestDeterminism:
    def drive(self, plan: FaultPlan):
        env = SimEnv(faults=plan.build())
        fs = SimFileSystem(env)
        for i in range(20):
            try:
                fs.append(f"chk/{i:02d}", bytes(range(48)))
            except DiskIOError:
                pass
        out = []
        for i in range(20):
            name = f"chk/{i:02d}"
            if fs.exists(name):
                try:
                    out.append(fs.read(name))
                except DiskIOError:
                    out.append(b"<read-error>")
        return out, env.faults.fired

    def plan(self) -> FaultPlan:
        return (
            FaultPlan(seed=42)
            .torn_write(on_io=3)
            .bit_flip(on_io=7)
            .fail_io(op="write", on_io=11, times=2)
            .fail_io(op="read", on_io=25)
        )

    def test_same_plan_same_faults_same_data(self):
        out1, fired1 = self.drive(self.plan())
        out2, fired2 = self.drive(self.plan())
        assert fired1 == fired2  # FaultRecord is frozen -> value equality
        assert out1 == out2
        kinds = [record.kind for record in fired1]
        assert kinds == ["torn", "bitflip", "error", "error", "error"]

    def test_different_seed_different_tear(self):
        def tear(seed: int) -> bytes:
            env, fs = faulty_fs(FaultPlan(seed=seed).torn_write(on_io=1))
            fs.append("f", bytes(range(200)))
            return fs.read("f")

        assert len({len(tear(seed)) for seed in range(8)}) > 1


class TestWithRetries:
    def test_transient_fault_is_retried_and_charged(self):
        env = SimEnv(faults=FaultPlan(seed=1).fail_io(op="write", on_io=1, times=2).build())
        fs = SimFileSystem(env)
        before = env.now

        with_retries(env, lambda: fs.append("f", b"x"))
        assert fs.exists("f")
        # Two failed attempts -> two backoff charges on the recovery lane.
        assert env.ledger.snapshot().cpu_seconds.get("recovery", 0.0) > 0
        assert env.now > before

    def test_persistent_fault_escalates(self):
        env = SimEnv(faults=FaultPlan(seed=1).fail_io(op="write", on_io=1, times=99).build())
        fs = SimFileSystem(env)
        attempts = 0

        def attempt():
            nonlocal attempts
            attempts += 1
            fs.append("f", b"x")

        with pytest.raises(DiskIOError):
            with_retries(env, attempt, attempts=4)
        assert attempts == 4

    def test_backoff_is_deterministic(self):
        def elapsed() -> float:
            env = SimEnv(
                faults=FaultPlan(seed=1).fail_io(op="write", on_io=1, times=3).build()
            )
            fs = SimFileSystem(env)
            with_retries(env, lambda: fs.append("f", b"x"))
            return env.now

        assert elapsed() == elapsed()
